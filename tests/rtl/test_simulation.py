"""Unit tests for logic simulation and stuck-at fault simulation."""

import pytest

from repro.rtl.faults import StuckAtFault, enumerate_faults
from repro.rtl.gates import GateType
from repro.rtl.netlist import Netlist
from repro.rtl.simulation import (
    FaultSimulator,
    LogicSimulator,
    ScanPattern,
)


@pytest.fixture
def and_or_netlist():
    """y = (a AND b) OR c, with one flip-flop sampling y."""
    netlist = Netlist("and_or")
    for name in ("a", "b", "c"):
        netlist.add_primary_input(name)
    netlist.add_gate("g_and", GateType.AND, ["a", "b"], "ab")
    netlist.add_gate("g_or", GateType.OR, ["ab", "c"], "y")
    netlist.add_primary_output("y")
    netlist.add_flip_flop("ff", data_in="y", data_out="ff_q")
    return netlist


class TestLogicSimulator:
    def test_truth_table(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        cases = [
            ({"a": 0, "b": 0, "c": 0}, 0),
            ({"a": 1, "b": 1, "c": 0}, 1),
            ({"a": 1, "b": 0, "c": 0}, 0),
            ({"a": 0, "b": 0, "c": 1}, 1),
        ]
        for inputs, expected in cases:
            values = simulator.evaluate(inputs, {"ff": 0}, mask=1)
            assert values["y"] == expected

    def test_bit_parallel_evaluation(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        # Four patterns in parallel: a=0011, b=0101, c=0000 -> y = a&b = 0001.
        values = simulator.evaluate({"a": 0b0011, "b": 0b0101, "c": 0},
                                    {"ff": 0}, mask=0b1111)
        assert values["y"] == 0b0001

    def test_capture_takes_flip_flop_input(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        values = simulator.evaluate({"a": 1, "b": 1, "c": 0}, {"ff": 0}, mask=1)
        state = simulator.capture(values, mask=1)
        assert state == {"ff": 1}

    def test_run_cycles_counts(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        simulator.run_cycles(10)
        assert simulator.simulated_cycles == 10
        assert simulator.gate_evaluations == 10 * and_or_netlist.gate_count

    def test_fault_injection_changes_output(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        inputs = {"a": 1, "b": 1, "c": 0}
        good = simulator.evaluate(inputs, {"ff": 0}, mask=1)
        faulty = simulator.evaluate(inputs, {"ff": 0}, mask=1,
                                    fault=StuckAtFault("ab", 0))
        assert good["y"] == 1
        assert faulty["y"] == 0

    def test_fault_on_primary_input(self, and_or_netlist):
        simulator = LogicSimulator(and_or_netlist)
        faulty = simulator.evaluate({"a": 0, "b": 1, "c": 0}, {"ff": 0}, mask=1,
                                    fault=StuckAtFault("a", 1))
        assert faulty["y"] == 1

    def test_apply_scan_pattern(self, and_or_netlist, small_scan_config):
        simulator = LogicSimulator(and_or_netlist)
        pattern = ScanPattern(flip_flop_values={"ff": 0},
                              primary_input_values={"a": 1, "b": 1, "c": 0})
        response = simulator.apply_scan_pattern(pattern)
        assert response.primary_output_values["y"] == 1
        assert response.flip_flop_values["ff"] == 1


class TestFaultEnumeration:
    def test_two_faults_per_net(self, and_or_netlist):
        faults = enumerate_faults(and_or_netlist)
        assert len(faults) == 2 * len(and_or_netlist.nets)
        assert len(set(faults)) == len(faults)

    def test_sampling_is_reproducible(self, small_netlist):
        first = enumerate_faults(small_netlist, sample=50, seed=3)
        second = enumerate_faults(small_netlist, sample=50, seed=3)
        assert first == second
        assert len(first) == 50

    def test_invalid_stuck_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault("net", 2)

    def test_str(self):
        assert str(StuckAtFault("n1", 1)) == "n1/SA1"


class TestFaultSimulator:
    def test_detected_faults_subset(self, and_or_netlist):
        simulator = FaultSimulator(and_or_netlist)
        patterns = [
            ScanPattern({"ff": 0}, {"a": 1, "b": 1, "c": 0}),
            ScanPattern({"ff": 0}, {"a": 0, "b": 0, "c": 1}),
            ScanPattern({"ff": 0}, {"a": 0, "b": 0, "c": 0}),
        ]
        faults = enumerate_faults(and_or_netlist)
        detected = simulator.detected_faults(patterns, faults)
        assert set(detected) <= set(faults)
        # The three patterns exercise y=0 and y=1, so output stuck-ats are caught.
        assert StuckAtFault("y", 0) in detected
        assert StuckAtFault("y", 1) in detected

    def test_coverage_increases_with_patterns(self, small_netlist, small_scan_config):
        from repro.rtl.lfsr import LFSR

        simulator = FaultSimulator(small_netlist, small_scan_config)
        faults = enumerate_faults(small_netlist, sample=120, seed=1)
        lfsr = LFSR(32, seed=99)
        flip_flops = sorted(small_netlist.flip_flops)
        inputs = list(small_netlist.primary_inputs)

        def make_patterns(count):
            patterns = []
            for _ in range(count):
                patterns.append(ScanPattern(
                    {name: lfsr.step() for name in flip_flops},
                    {name: lfsr.step() for name in inputs},
                ))
            return patterns

        few = simulator.fault_coverage(make_patterns(4), faults)
        many = simulator.fault_coverage(make_patterns(96), faults)
        assert 0.0 <= few <= 1.0
        assert many >= few
        # Random synthetic netlists contain unobservable nets, so coverage
        # saturates well below 100 %; it must still clearly beat 4 patterns.
        assert many > 0.35

    def test_no_faults_means_full_coverage(self, and_or_netlist):
        simulator = FaultSimulator(and_or_netlist)
        assert simulator.fault_coverage([], []) == 1.0

    def test_no_patterns_detect_nothing(self, and_or_netlist):
        simulator = FaultSimulator(and_or_netlist)
        faults = enumerate_faults(and_or_netlist)
        assert simulator.detected_faults([], faults) == []
