"""Unit tests for synthetic core generation and scan insertion."""

import pytest

from repro.rtl.generate import SyntheticCoreSpec, generate_netlist
from repro.rtl.scan import ScanConfiguration, insert_scan


class TestSyntheticCoreSpec:
    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            SyntheticCoreSpec(name="x", flip_flops=0, gates=10)
        with pytest.raises(ValueError):
            SyntheticCoreSpec(name="x", flip_flops=10, gates=5)
        with pytest.raises(ValueError):
            SyntheticCoreSpec(name="x", flip_flops=4, gates=8, primary_inputs=0)
        with pytest.raises(ValueError):
            SyntheticCoreSpec(name="x", flip_flops=4, gates=8, max_fanin=1)


class TestGenerateNetlist:
    def test_requested_sizes(self):
        spec = SyntheticCoreSpec(name="core", flip_flops=32, gates=160, seed=4)
        netlist = generate_netlist(spec)
        assert netlist.flip_flop_count == 32
        assert netlist.gate_count == 160
        assert len(netlist.primary_inputs) == spec.primary_inputs
        assert len(netlist.primary_outputs) >= 1

    def test_deterministic_for_same_seed(self):
        spec = SyntheticCoreSpec(name="core", flip_flops=16, gates=64, seed=7)
        first = generate_netlist(spec)
        second = generate_netlist(spec)
        assert [g.name for g in first.topological_gates()] == \
            [g.name for g in second.topological_gates()]
        assert {g.name: g.inputs for g in first.gates.values()} == \
            {g.name: g.inputs for g in second.gates.values()}

    def test_different_seeds_differ(self):
        base = SyntheticCoreSpec(name="core", flip_flops=16, gates=64, seed=1)
        other = SyntheticCoreSpec(name="core", flip_flops=16, gates=64, seed=2)
        first = generate_netlist(base)
        second = generate_netlist(other)
        assert {g.name: tuple(g.inputs) for g in first.gates.values()} != \
            {g.name: tuple(g.inputs) for g in second.gates.values()}

    def test_generated_netlist_is_acyclic(self, small_netlist):
        small_netlist.validate()  # would raise on a combinational cycle


class TestScanInsertion:
    def test_balanced_partition(self, small_netlist):
        config = insert_scan(small_netlist, 4)
        assert config.chain_count == 4
        assert config.total_cells == small_netlist.flip_flop_count
        lengths = [chain.length for chain in config.chains]
        assert max(lengths) - min(lengths) <= 1
        assert config.max_chain_length == max(lengths)

    def test_each_flip_flop_in_exactly_one_chain(self, small_netlist):
        config = insert_scan(small_netlist, 3)
        names = [cell.name for chain in config.chains for cell in chain]
        assert sorted(names) == sorted(small_netlist.flip_flops)

    def test_invalid_chain_counts(self, small_netlist):
        with pytest.raises(ValueError):
            insert_scan(small_netlist, 0)
        with pytest.raises(ValueError):
            insert_scan(small_netlist, small_netlist.flip_flop_count + 1)

    def test_describe_without_netlist(self):
        config = ScanConfiguration.describe("cpu", chain_count=32,
                                            total_cells=32 * 1450)
        assert config.chain_count == 32
        assert config.total_cells == 32 * 1450
        assert config.max_chain_length == 1450

    def test_describe_uneven_distribution(self):
        config = ScanConfiguration.describe("c", chain_count=3, total_cells=10)
        lengths = sorted(chain.length for chain in config.chains)
        assert lengths == [3, 3, 4]

    def test_describe_invalid_parameters(self):
        with pytest.raises(ValueError):
            ScanConfiguration.describe("c", chain_count=0, total_cells=10)
        with pytest.raises(ValueError):
            ScanConfiguration.describe("c", chain_count=5, total_cells=3)

    def test_shift_and_pattern_cycle_accounting(self):
        config = ScanConfiguration.describe("c", chain_count=4, total_cells=400)
        assert config.shift_cycles_per_pattern() == 100
        # n patterns: (shift + capture) per pattern plus the final unload.
        assert config.cycles_for_patterns(10) == 10 * 101 + 100
        assert config.cycles_for_patterns(0) == 0
