"""Unit tests for the LFSR and MISR primitives."""

import pytest

from repro.rtl.lfsr import LFSR, MISR, STANDARD_POLYNOMIALS


class TestLfsr:
    def test_standard_polynomial_lookup(self):
        for width in (8, 16, 32):
            lfsr = LFSR(width, seed=1)
            assert lfsr.width == width
            assert lfsr.taps == tuple(STANDARD_POLYNOMIALS[width])

    def test_unknown_width_needs_taps(self):
        with pytest.raises(ValueError):
            LFSR(13, seed=1)
        lfsr = LFSR(13, seed=1, taps=(13, 4, 3, 1))
        assert lfsr.width == 13

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(16, seed=0)
        with pytest.raises(ValueError):
            LFSR(8, seed=256)  # 256 mod 2**8 == 0

    def test_invalid_taps_rejected(self):
        with pytest.raises(ValueError):
            LFSR(8, seed=1, taps=(9,))
        with pytest.raises(ValueError):
            LFSR(8, seed=1, taps=(0,))

    def test_sequence_is_deterministic(self):
        first = LFSR(16, seed=0xACE1)
        second = LFSR(16, seed=0xACE1)
        assert [first.step() for _ in range(64)] == [second.step() for _ in range(64)]

    def test_state_never_sticks_at_zero(self):
        lfsr = LFSR(8, seed=1)
        states = {lfsr.state}
        for _ in range(255):
            lfsr.step()
            states.add(lfsr.state)
        assert 0 not in states

    def test_maximal_length_for_primitive_polynomial(self):
        """The width-8 standard polynomial is primitive: period 2**8 - 1."""
        lfsr = LFSR(8, seed=1)
        initial = lfsr.state
        period = 0
        for _ in range(1 << 9):
            lfsr.step()
            period += 1
            if lfsr.state == initial:
                break
        assert period == (1 << 8) - 1

    def test_next_word_bit_count(self):
        lfsr = LFSR(32, seed=5)
        word = lfsr.next_word(20)
        assert 0 <= word < (1 << 20)

    def test_next_pattern_length_and_values(self):
        lfsr = LFSR(16, seed=3)
        pattern = lfsr.next_pattern(40)
        assert len(pattern) == 40
        assert set(pattern) <= {0, 1}

    def test_randomness_is_roughly_balanced(self):
        lfsr = LFSR(32, seed=0xDEADBEEF)
        bits = lfsr.next_pattern(4000)
        ones = sum(bits)
        assert 1700 < ones < 2300


class TestMisr:
    def test_signature_depends_on_order(self):
        first = MISR(32)
        second = MISR(32)
        first.compact_sequence([1, 2, 3])
        second.compact_sequence([3, 2, 1])
        assert first.signature != second.signature

    def test_signature_is_deterministic(self):
        first = MISR(32)
        second = MISR(32)
        data = list(range(100))
        assert first.compact_sequence(data) == second.compact_sequence(data)

    def test_signature_detects_single_corruption(self):
        good = MISR(32)
        bad = MISR(32)
        data = list(range(64))
        corrupted = list(data)
        corrupted[17] ^= 0x4
        assert good.compact_sequence(data) != bad.compact_sequence(corrupted)

    def test_signature_width_mask(self):
        misr = MISR(16)
        misr.compact_sequence(range(1000))
        assert 0 <= misr.signature < (1 << 16)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MISR(0)
        with pytest.raises(ValueError):
            MISR(7)
