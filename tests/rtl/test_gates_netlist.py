"""Unit tests for gate evaluation and netlist construction."""

import pytest

from repro.rtl.gates import Gate, GateType, evaluate_gate
from repro.rtl.netlist import Netlist, NetlistError


class TestGateEvaluation:
    MASK = 0b1111

    def test_and(self):
        assert evaluate_gate(GateType.AND, [0b1100, 0b1010], self.MASK) == 0b1000

    def test_or(self):
        assert evaluate_gate(GateType.OR, [0b1100, 0b1010], self.MASK) == 0b1110

    def test_nand(self):
        assert evaluate_gate(GateType.NAND, [0b1100, 0b1010], self.MASK) == 0b0111

    def test_nor(self):
        assert evaluate_gate(GateType.NOR, [0b1100, 0b1010], self.MASK) == 0b0001

    def test_xor(self):
        assert evaluate_gate(GateType.XOR, [0b1100, 0b1010], self.MASK) == 0b0110

    def test_xnor(self):
        assert evaluate_gate(GateType.XNOR, [0b1100, 0b1010], self.MASK) == 0b1001

    def test_not(self):
        assert evaluate_gate(GateType.NOT, [0b1100], self.MASK) == 0b0011

    def test_buf(self):
        assert evaluate_gate(GateType.BUF, [0b1100], self.MASK) == 0b1100

    def test_three_input_and(self):
        assert evaluate_gate(GateType.AND, [0b111, 0b110, 0b011], 0b111) == 0b010

    def test_no_inputs_rejected(self):
        with pytest.raises(ValueError):
            evaluate_gate(GateType.AND, [], 1)

    def test_gate_dataclass_evaluates_from_values(self):
        gate = Gate(name="g", gate_type=GateType.XOR, inputs=["a", "b"], output="y")
        assert gate.evaluate({"a": 1, "b": 1}, 1) == 0
        assert gate.evaluate({"a": 1, "b": 0}, 1) == 1


class TestNetlist:
    def build_half_adder(self):
        netlist = Netlist("half_adder")
        netlist.add_primary_input("a")
        netlist.add_primary_input("b")
        netlist.add_gate("sum_gate", GateType.XOR, ["a", "b"], "sum")
        netlist.add_gate("carry_gate", GateType.AND, ["a", "b"], "carry")
        netlist.add_primary_output("sum")
        netlist.add_primary_output("carry")
        return netlist

    def test_structure_counts(self):
        netlist = self.build_half_adder()
        assert netlist.gate_count == 2
        assert netlist.flip_flop_count == 0
        assert netlist.primary_inputs == ["a", "b"]
        assert sorted(netlist.primary_outputs) == ["carry", "sum"]

    def test_validate_passes_for_well_formed(self):
        self.build_half_adder().validate()

    def test_duplicate_gate_name_rejected(self):
        netlist = self.build_half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("sum_gate", GateType.OR, ["a", "b"], "other")

    def test_multiple_drivers_rejected(self):
        netlist = self.build_half_adder()
        with pytest.raises(NetlistError):
            netlist.add_gate("dup", GateType.OR, ["a", "b"], "sum")

    def test_topological_order_respects_dependencies(self):
        netlist = Netlist("chain")
        netlist.add_primary_input("a")
        netlist.add_gate("g2", GateType.NOT, ["n1"], "n2")
        netlist.add_gate("g1", GateType.NOT, ["a"], "n1")
        netlist.add_gate("g3", GateType.NOT, ["n2"], "n3")
        order = [gate.name for gate in netlist.topological_gates()]
        assert order.index("g1") < order.index("g2") < order.index("g3")

    def test_combinational_cycle_detected(self):
        netlist = Netlist("cycle")
        netlist.add_primary_input("a")
        netlist.add_gate("g1", GateType.AND, ["a", "n2"], "n1")
        netlist.add_gate("g2", GateType.NOT, ["n1"], "n2")
        with pytest.raises(NetlistError):
            netlist.topological_gates()

    def test_flip_flop_breaks_cycle(self):
        netlist = Netlist("sequential")
        netlist.add_primary_input("a")
        netlist.add_gate("g1", GateType.XOR, ["a", "ff_q"], "ff_d")
        netlist.add_flip_flop("ff", data_in="ff_d", data_out="ff_q")
        netlist.validate()
        assert netlist.flip_flop_count == 1

    def test_duplicate_flip_flop_output_driver_rejected(self):
        netlist = Netlist("bad_ff")
        netlist.add_primary_input("a")
        netlist.add_gate("g", GateType.BUF, ["a"], "q")
        with pytest.raises(NetlistError):
            netlist.add_flip_flop("ff", data_in="a", data_out="q")

    def test_repr_mentions_counts(self):
        assert "gates=2" in repr(self.build_half_adder())
