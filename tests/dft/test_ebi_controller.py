"""Unit tests for the EBI streaming model and the on-chip test controller."""

import pytest

from repro.kernel import SimTime
from repro.dft import (
    AteLink,
    Compactor,
    CoreTestDescription,
    Decompressor,
    ExternalBusInterface,
    ExternalTestTiming,
    TamChannel,
    TamPayload,
    generate_wrapper,
)
from repro.dft.controller import TestController as OnChipTestController
from repro.dft.monitor import ActivityLog
from repro.dft.wrapper import WrapperMode
from repro.memory.march import MATS_PLUS
from repro.soc.cores import MemoryCore


@pytest.fixture
def platform(sim, clock, tracer):
    """A minimal TAM + ATE link + EBI + wrapped core platform."""
    tam = TamChannel(sim, "tam", width_bits=32, clock=clock, tracer=tracer)
    ate_link = AteLink(sim, "ate_link", width_bits=16, clock=clock, tracer=tracer)
    description = CoreTestDescription.describe(
        "core", chain_count=8, scan_cells=8 * 100, has_logic_bist=True,
        internal_chain_count=16,
    )
    wrapper = generate_wrapper(sim, description, tracer=tracer)
    tam.bind_slave(wrapper, 0x1000, 0x1000)
    ebi = ExternalBusInterface(sim, "ebi", ate_link=ate_link, tam=tam,
                               buffer_patterns=16)
    return {"tam": tam, "ate_link": ate_link, "wrapper": wrapper, "ebi": ebi,
            "description": description}


class TestExternalTestTiming:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            ExternalTestTiming(ate_bits_per_pattern=-1,
                               ate_response_bits_per_pattern=0,
                               tam_bits_per_pattern=0,
                               shift_cycles_per_pattern=0)


class TestEbiStreaming:
    def stream(self, sim, platform, patterns, timing, **kwargs):
        holder = {}

        def flow():
            platform["wrapper"].set_mode(WrapperMode.INTEST_SCAN)
            platform["ebi"].enable()
            stats = yield from platform["ebi"].stream_patterns(
                initiator="test", address=0x1000, patterns=patterns,
                timing=timing, wrapper=platform["wrapper"], **kwargs,
            )
            holder["stats"] = stats

        sim.spawn(flow())
        sim.run()
        return holder["stats"]

    def test_requires_enabled_ebi(self, sim, platform):
        timing = ExternalTestTiming(800, 32, 800, 101)

        def flow():
            yield from platform["ebi"].stream_patterns(
                initiator="t", address=0x1000, patterns=4, timing=timing,
            )

        sim.spawn(flow())
        with pytest.raises(Exception):
            sim.run()

    def test_pattern_accounting(self, sim, platform):
        timing = ExternalTestTiming(800, 32, 800, 101)
        stats = self.stream(sim, platform, 50, timing)
        assert stats["patterns"] == 50
        assert stats["bursts"] == 4  # 16 + 16 + 16 + 2
        assert platform["wrapper"].patterns_applied == 50
        assert platform["ebi"].patterns_streamed == 50

    def test_period_governed_by_slowest_stage_shift(self, sim, platform, clock):
        # Shift (101 cycles/pattern) is slower than the ATE link (800/16=50)
        # and the TAM (800/32=25), so the total time tracks the shift stage.
        timing = ExternalTestTiming(800, 32, 800, 101)
        self.stream(sim, platform, 32, timing)
        cycles = clock.cycles_between(SimTime(0), sim.now)
        assert 32 * 101 <= cycles <= 32 * 101 + 64

    def test_period_governed_by_ate_link_when_uncompressed(self, sim, platform,
                                                            clock):
        # ATE link: 1600/16 = 100 cycles/pattern dominates shift (51) and TAM (50).
        timing = ExternalTestTiming(1600, 32, 1600, 51)
        self.stream(sim, platform, 32, timing)
        cycles = clock.cycles_between(SimTime(0), sim.now)
        assert 32 * 100 <= cycles <= 32 * 100 + 64

    def test_tam_utilization_reflects_tam_share(self, sim, platform, tracer, clock):
        timing = ExternalTestTiming(1600, 32, 1600, 51)
        self.stream(sim, platform, 32, timing)
        busy = tracer.total_busy_time("tam")
        total = sim.now - SimTime(0)
        utilization = busy.femtoseconds / total.femtoseconds
        assert 0.4 < utilization < 0.65

    def test_decompressor_path_applies_patterns_via_decompressor(self, sim, platform):
        wrapper = platform["wrapper"]
        decompressor = Decompressor(sim, "dec", compression_ratio=50.0,
                                    target_wrapper=wrapper,
                                    internal_chain_count=16)
        decompressor.activate()
        timing = ExternalTestTiming(16, 32, 16 + 800, 51)
        stats = self.stream(sim, platform, 20, timing, decompressor=decompressor)
        assert stats["patterns"] == 20
        assert decompressor.patterns_expanded == 20
        assert wrapper.patterns_applied == 20

    def test_compactor_collects_signature(self, sim, platform):
        compactor = Compactor(sim, "cmp", compaction_ratio=1000.0)
        compactor.activate()
        timing = ExternalTestTiming(800, 32, 800, 101)
        self.stream(sim, platform, 10, timing, compactor=compactor)
        assert compactor.response_bits_in == 10 * 800
        assert compactor.signature != 0

    def test_invalid_pattern_count(self, sim, platform):
        timing = ExternalTestTiming(800, 32, 800, 101)
        # The error is raised inside the streaming process and surfaces as the
        # kernel's wrapped process-failure exception.
        with pytest.raises(RuntimeError, match="pattern count must be positive"):
            self.stream(sim, platform, 0, timing)


class TestTestController:
    def test_requires_enable(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        controller = OnChipTestController(sim, "ctrl", tam=tam)
        description = CoreTestDescription.describe("core", chain_count=4,
                                                    scan_cells=64,
                                                    has_logic_bist=True)
        wrapper = generate_wrapper(sim, description)

        def flow():
            yield from controller.run_logic_bist("s", wrapper, 100)

        sim.spawn(flow())
        with pytest.raises(Exception):
            sim.run()

    def test_logic_bist_duration_and_accounting(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        log = ActivityLog()
        controller = OnChipTestController(sim, "ctrl", tam=tam, activity_log=log)
        controller.enable()
        description = CoreTestDescription.describe("core", chain_count=4,
                                                    scan_cells=4 * 50,
                                                    has_logic_bist=True)
        wrapper = generate_wrapper(sim, description)
        holder = {}

        def flow():
            status = yield from controller.run_logic_bist("bist", wrapper, 1000,
                                                          power=2.0)
            holder["status"] = status

        sim.spawn(flow())
        sim.run()
        status = holder["status"]
        assert status["done"]
        assert wrapper.bist_patterns_applied == 1000
        # 1000 patterns x (50 + 1) cycles.
        assert status["cycles"] == 1000 * 51
        assert len(log.records) == 1
        assert log.records[0].power == 2.0

    def test_status_visible_via_tam_access(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        controller = OnChipTestController(sim, "ctrl", tam=tam)
        controller.enable()
        description = CoreTestDescription.describe("core", chain_count=2,
                                                    scan_cells=8,
                                                    has_logic_bist=True)
        wrapper = generate_wrapper(sim, description)

        def flow():
            yield from controller.run_logic_bist("session_a", wrapper, 10)

        sim.spawn(flow())
        sim.run()
        payload = TamPayload.read(0, response_bits=32, session="session_a")
        controller.tam_access(payload)
        assert payload.response_data["done"]
        all_payload = TamPayload.read(0, response_bits=32)
        controller.tam_access(all_payload)
        assert "session_a" in all_payload.response_data

    def test_memory_bist_operations_and_tam_usage(self, sim, clock, tracer):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock, tracer=tracer)
        controller = OnChipTestController(sim, "ctrl", tam=tam)
        controller.enable()
        memory_core = MemoryCore(sim, "mem", words=4096, word_bits=8)
        holder = {}

        def flow():
            status = yield from controller.run_memory_bist(
                "mbist", memory_core, MATS_PLUS, pattern_backgrounds=2,
                validation_stride=17,
            )
            holder["status"] = status

        sim.spawn(flow())
        sim.run()
        status = holder["status"]
        expected_operations = 5 * 4096 + 2 * 2 * 4096
        assert status["operations_done"] == expected_operations
        assert status["done"]
        assert status["failures"] == 0
        # The march runs at about one operation per cycle over the TAM.
        assert status["cycles"] == pytest.approx(expected_operations * 1.15, rel=0.05)
        busy = tracer.total_busy_time("tam")
        assert busy.femtoseconds > 0

    def test_memory_bist_detects_injected_fault(self, sim, clock):
        from repro.memory import StuckAtCellFault

        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        controller = OnChipTestController(sim, "ctrl", tam=tam)
        controller.enable()
        memory_core = MemoryCore(sim, "mem", words=1024, word_bits=8)
        memory_core.array.inject_fault(StuckAtCellFault(address=0, bit=0, value=1))
        holder = {}

        def flow():
            status = yield from controller.run_memory_bist(
                "mbist", memory_core, MATS_PLUS, validation_stride=1,
            )
            holder["status"] = status

        sim.spawn(flow())
        sim.run()
        assert holder["status"]["failures"] > 0

    def test_invalid_busy_fraction(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        controller = OnChipTestController(sim, "ctrl", tam=tam)
        controller.enable()
        memory_core = MemoryCore(sim, "mem", words=64)

        def flow():
            yield from controller.run_memory_bist("m", memory_core, MATS_PLUS,
                                                  busy_fraction=1.5)

        sim.spawn(flow())
        with pytest.raises(Exception):
            sim.run()
