"""Unit tests for the TAM utilization and power monitors."""

import pytest

from repro.kernel import NS, SimTime, TransactionRecord, TransactionTracer
from repro.kernel.simtime import US
from repro.dft.monitor import ActivityLog, PowerMonitor, TamUtilizationMonitor


def tam_record(start_ns, end_ns, bits=0):
    return TransactionRecord(channel="tam", kind="burst", start=SimTime(start_ns, NS),
                             end=SimTime(end_ns, NS), data_bits=bits)


class TestTamUtilizationMonitor:
    @pytest.fixture
    def monitor(self, clock, tracer):
        return TamUtilizationMonitor(tracer, "tam", clock)

    def test_empty_trace(self, monitor):
        assert monitor.average_utilization() == 0.0
        assert monitor.peak_utilization() == 0.0
        assert monitor.utilization_profile() == []
        assert monitor.busy_time() == SimTime(0)

    def test_average_over_recorded_span(self, monitor, tracer):
        tracer.record(tam_record(0, 500))
        tracer.record(tam_record(500, 1000))
        tracer.record(tam_record(1500, 2000))
        assert monitor.average_utilization() == pytest.approx(0.75)

    def test_average_over_explicit_window(self, monitor, tracer):
        tracer.record(tam_record(0, 1000))
        value = monitor.average_utilization(start=SimTime(0), end=SimTime(4, US))
        assert value == pytest.approx(0.25)

    def test_peak_utilization_windows(self, monitor, tracer):
        # 100 cycles = 1 us windows; first window fully busy, second idle.
        tracer.record(tam_record(0, 1000))
        tracer.record(tam_record(2000, 2100))
        peak = monitor.peak_utilization(window_cycles=100, start=SimTime(0),
                                        end=SimTime(3, US))
        assert peak == pytest.approx(1.0)

    def test_busy_time_and_bits(self, monitor, tracer):
        tracer.record(tam_record(0, 300, bits=320))
        tracer.record(tam_record(100, 400, bits=64))
        assert monitor.busy_time() == SimTime(400, NS)
        assert monitor.transferred_bits() == 384

    def test_profile_length(self, monitor, tracer):
        tracer.record(tam_record(0, 5000))
        profile = monitor.utilization_profile(window_cycles=100,
                                              start=SimTime(0),
                                              end=SimTime(10, US))
        assert len(profile) == 10
        assert profile[0] == pytest.approx(1.0)
        assert profile[-1] == pytest.approx(0.0)


class TestActivityLog:
    def test_record_and_query(self):
        log = ActivityLog()
        log.record("cpu", "bist", SimTime(0), SimTime(100, NS), power=2.0)
        log.record("dct", "scan", SimTime(50, NS), SimTime(150, NS), power=1.0)
        assert len(log) == 2
        assert log.cores() == ["cpu", "dct"]
        log.clear()
        assert len(log) == 0

    def test_invalid_interval_rejected(self):
        log = ActivityLog()
        with pytest.raises(ValueError):
            log.record("cpu", "bist", SimTime(100, NS), SimTime(50, NS), power=1.0)


class TestPowerMonitor:
    @pytest.fixture
    def log(self):
        log = ActivityLog()
        log.record("cpu", "bist", SimTime(0), SimTime(100, NS), power=3.0)
        log.record("dct", "scan", SimTime(50, NS), SimTime(150, NS), power=1.5)
        log.record("mem", "march", SimTime(200, NS), SimTime(300, NS), power=1.0)
        return log

    def test_power_at(self, log):
        monitor = PowerMonitor(log)
        assert monitor.power_at(SimTime(10, NS)) == pytest.approx(3.0)
        assert monitor.power_at(SimTime(75, NS)) == pytest.approx(4.5)
        assert monitor.power_at(SimTime(175, NS)) == pytest.approx(0.0)

    def test_peak_power_is_overlap(self, log):
        assert PowerMonitor(log).peak_power() == pytest.approx(4.5)

    def test_average_power_is_energy_over_makespan(self, log):
        monitor = PowerMonitor(log)
        # Energy = 3*100 + 1.5*100 + 1*100 = 550 power*ns over 300 ns.
        assert monitor.average_power() == pytest.approx(550.0 / 300.0)

    def test_energy_and_per_core_energy(self, log):
        monitor = PowerMonitor(log)
        per_core = monitor.per_core_energy()
        assert per_core["cpu"] == pytest.approx(3.0 * 100e-9)
        assert sum(per_core.values()) == pytest.approx(monitor.energy())

    def test_profile_windows(self, log):
        monitor = PowerMonitor(log)
        profile = monitor.profile(SimTime(100, NS))
        assert len(profile) == 3
        assert profile[0][1] == pytest.approx((3.0 * 100 + 1.5 * 50) / 100)

    def test_empty_log(self):
        monitor = PowerMonitor(ActivityLog())
        assert monitor.peak_power() == 0.0
        assert monitor.average_power() == 0.0
        assert monitor.profile(SimTime(1, US)) == []
