"""Tests for hand-written virtual ATE test programs (beyond schedules).

The paper distinguishes exploration (the ATE modeled by its functional
behaviour) from validation (virtual ATE software executing explicit test
program instructions).  These tests drive the ATE with hand-written programs
containing CONFIGURE, WAIT_CYCLES, READ_STATUS and RUN_TASK steps.
"""

import pytest

from repro.dft.ate import StepKind, TestProgram, TestProgramStep
from repro.dft.wrapper import WrapperMode
from repro.schedule.model import TestKind, TestTask
from repro.soc import JpegSocTlm, SocConfiguration
from repro.soc.testplan import COLOR_CONVERSION, DCT


@pytest.fixture
def soc():
    return JpegSocTlm(SocConfiguration(memory_words=8192, burst_patterns=16))


@pytest.fixture
def tasks():
    return {
        "bist_cc": TestTask(name="bist_cc", kind=TestKind.LOGIC_BIST,
                            core=COLOR_CONVERSION, pattern_count=50, power=1.0),
        "ext_dct": TestTask(name="ext_dct", kind=TestKind.EXTERNAL_SCAN,
                            core=DCT, pattern_count=16, power=1.5),
    }


def run_program(soc, program, tasks):
    holder = {}

    def flow():
        result = yield from soc.ate.run_program(program, tasks)
        holder["result"] = result

    soc.sim.spawn(flow(), name="virtual_ate")
    soc.sim.run()
    return holder["result"]


class TestHandWrittenPrograms:
    def test_configure_step_switches_wrapper_mode(self, soc, tasks):
        wrapper = soc.wrappers[DCT]
        program = TestProgram(name="configure_only", steps=[
            TestProgramStep(kind=StepKind.CONFIGURE,
                            target=wrapper.wir_register.name,
                            value=wrapper.wir.encode(WrapperMode.INTEST_SCAN)),
        ])
        run_program(soc, program, tasks)
        assert wrapper.mode is WrapperMode.INTEST_SCAN

    def test_wait_cycles_step_advances_time(self, soc, tasks):
        program = TestProgram(name="wait_only", steps=[
            TestProgramStep(kind=StepKind.WAIT_CYCLES, cycles=12_345),
        ])
        result = run_program(soc, program, tasks)
        # Controller enable configuration precedes the wait.
        assert result.cycles >= 12_345

    def test_read_status_step_issues_tam_transaction(self, soc, tasks):
        before = soc.bus.transaction_count
        program = TestProgram(name="status_only", steps=[
            TestProgramStep(kind=StepKind.READ_STATUS, target=None),
        ])
        run_program(soc, program, tasks)
        assert soc.bus.transaction_count > before

    def test_mixed_program_runs_tasks_and_waits(self, soc, tasks):
        program = TestProgram(name="mixed", steps=[
            TestProgramStep(kind=StepKind.RUN_TASK, task="bist_cc"),
            TestProgramStep(kind=StepKind.RUN_TASK, task="ext_dct"),
            TestProgramStep(kind=StepKind.BARRIER),
            TestProgramStep(kind=StepKind.WAIT_CYCLES, cycles=1_000),
            TestProgramStep(kind=StepKind.READ_STATUS),
        ])
        result = run_program(soc, program, tasks)
        assert set(result.task_results) == {"bist_cc", "ext_dct"}
        assert soc.wrappers[COLOR_CONVERSION].bist_patterns_applied == 50
        assert soc.wrappers[DCT].external_patterns_applied == 16
        # Concurrent tasks plus the trailing wait dominate the duration.
        longest_task = max(r.cycles for r in result.task_results.values())
        assert result.cycles >= longest_task + 1_000

    def test_program_without_final_barrier_still_waits_for_tasks(self, soc, tasks):
        program = TestProgram(name="no_barrier", steps=[
            TestProgramStep(kind=StepKind.RUN_TASK, task="bist_cc"),
        ])
        result = run_program(soc, program, tasks)
        assert result.task_results["bist_cc"].patterns_applied == 50

    def test_programs_executed_counter(self, soc, tasks):
        program = TestProgram(name="count", steps=[
            TestProgramStep(kind=StepKind.WAIT_CYCLES, cycles=10),
        ])
        run_program(soc, program, tasks)
        assert soc.ate.programs_executed == 1
