"""Unit tests for pattern sources and the decompressor/compactor adaptors."""

import pytest

from repro.dft import (
    Compactor,
    CompressedPatternSource,
    Decompressor,
    DeterministicPatternSource,
    LfsrPatternSource,
    TamPayload,
    TamResponse,
)
from repro.dft.ctl import CoreTestDescription
from repro.dft.ctl import generate_wrapper
from repro.dft.wrapper import WrapperMode


class TestPatternSourceBase:
    def test_volume_accounting(self, sim):
        source = LfsrPatternSource(sim, "lfsr", pattern_count=100,
                                   bits_per_pattern=64)
        assert source.total_bits == 6400
        assert source.remaining_patterns == 100
        assert source.supply(30) == 30
        assert source.supply(90) == 70
        assert source.exhausted
        source.reset()
        assert source.remaining_patterns == 100

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            LfsrPatternSource(sim, "s", pattern_count=0, bits_per_pattern=8)
        with pytest.raises(ValueError):
            LfsrPatternSource(sim, "s", pattern_count=8, bits_per_pattern=0)

    def test_tam_access_supplies_patterns(self, sim):
        source = LfsrPatternSource(sim, "lfsr", pattern_count=10,
                                   bits_per_pattern=32)
        payload = TamPayload.read(0, response_bits=32, patterns=4)
        source.tam_access(payload)
        assert payload.status is TamResponse.OK
        assert payload.response_data == {"patterns": 4, "bits": 128}
        assert source.patterns_supplied == 4


class TestLfsrPatternSource:
    def test_pattern_bits_are_binary_and_sized(self, sim):
        source = LfsrPatternSource(sim, "lfsr", pattern_count=5,
                                   bits_per_pattern=40, seed=3)
        pattern = source.next_pattern_bits()
        assert len(pattern) == 40
        assert set(pattern) <= {0, 1}
        assert source.patterns_supplied == 1

    def test_stream_is_reproducible(self, sim):
        first = LfsrPatternSource(sim, "a", pattern_count=4,
                                  bits_per_pattern=16, seed=9)
        second = LfsrPatternSource(sim, "b", pattern_count=4,
                                   bits_per_pattern=16, seed=9)
        assert list(first.pattern_stream()) == list(second.pattern_stream())


class TestDeterministicPatternSource:
    def test_explicit_patterns(self, sim):
        patterns = [[0, 1], [1, 1], [1, 0]]
        source = DeterministicPatternSource(sim, "det", pattern_count=3,
                                            bits_per_pattern=2,
                                            patterns=patterns)
        assert source.pattern_bits(1) == [1, 1]

    def test_mismatched_pattern_list_rejected(self, sim):
        with pytest.raises(ValueError):
            DeterministicPatternSource(sim, "det", pattern_count=2,
                                       bits_per_pattern=2, patterns=[[0, 1]])

    def test_generated_patterns_are_reproducible(self, sim):
        source = DeterministicPatternSource(sim, "det", pattern_count=4,
                                            bits_per_pattern=16)
        assert source.pattern_bits(2) == source.pattern_bits(2)
        with pytest.raises(IndexError):
            source.pattern_bits(9)


class TestCompressedPatternSource:
    def test_compressed_volume(self, sim):
        source = CompressedPatternSource(sim, "cmp", pattern_count=10,
                                         bits_per_pattern=46_400,
                                         compression_ratio=50.0)
        assert source.compressed_bits_per_pattern() == 928
        assert source.total_compressed_bits == 9280

    def test_ratio_below_one_rejected(self, sim):
        with pytest.raises(ValueError):
            CompressedPatternSource(sim, "cmp", pattern_count=1,
                                    bits_per_pattern=100, compression_ratio=0.5)


class TestDecompressor:
    def test_starts_in_bypass(self, sim):
        decompressor = Decompressor(sim, "dec", compression_ratio=50.0)
        assert decompressor.bypass
        assert decompressor.compressed_bits(1000) == 1000

    def test_activation_via_config_register(self, sim):
        decompressor = Decompressor(sim, "dec", compression_ratio=50.0)
        decompressor.config_register.update(Decompressor.MODE_ACTIVE)
        assert not decompressor.bypass
        decompressor.config_register.update(Decompressor.MODE_BYPASS)
        assert decompressor.bypass

    def test_expand_volumes_and_wrapper_forwarding(self, sim):
        description = CoreTestDescription.describe("cpu", chain_count=4,
                                                    scan_cells=400)
        wrapper = generate_wrapper(sim, description)
        wrapper.set_mode(WrapperMode.INTEST_COMPRESSED)
        decompressor = Decompressor(sim, "dec", compression_ratio=50.0,
                                    target_wrapper=wrapper)
        decompressor.activate()
        expanded = decompressor.expand(compressed_bits=8, patterns=1)
        assert expanded == 400
        assert wrapper.patterns_applied == 1
        assert decompressor.compressed_bits_in == 8
        assert decompressor.expanded_bits_out == 400

    def test_variable_ratio(self, sim):
        decompressor = Decompressor(sim, "dec", compression_ratio=10.0,
                                    ratio_for_pattern=lambda index: 10.0 + index)
        decompressor.activate()
        assert decompressor.ratio(0) == 10.0
        assert decompressor.ratio(5) == 15.0
        assert decompressor.compressed_bits(150, pattern_index=5) == 10

    def test_tam_access_expands_written_stimuli(self, sim):
        decompressor = Decompressor(sim, "dec", compression_ratio=4.0)
        decompressor.activate()
        payload = TamPayload.write(0, data_bits=100, patterns=2)
        decompressor.tam_access(payload)
        assert payload.attributes["expanded_bits"] == 400
        assert decompressor.patterns_expanded == 2

    def test_invalid_ratio_rejected(self, sim):
        with pytest.raises(ValueError):
            Decompressor(sim, "dec", compression_ratio=0.9)
        bad = Decompressor(sim, "dec2", compression_ratio=2.0,
                           ratio_for_pattern=lambda index: 0.1)
        bad.activate()
        with pytest.raises(ValueError):
            bad.expand(10)


class TestCompactor:
    def test_bypass_passes_volume_through(self, sim):
        compactor = Compactor(sim, "cmp", compaction_ratio=1000.0)
        assert compactor.compact(4600) == 4600

    def test_active_mode_compacts(self, sim):
        compactor = Compactor(sim, "cmp", compaction_ratio=1000.0)
        compactor.activate()
        assert compactor.compact(46_400) == 47
        assert compactor.response_bits_in == 46_400
        assert compactor.compacted_bits_out == 47

    def test_signature_changes_with_responses(self, sim):
        compactor = Compactor(sim, "cmp", compaction_ratio=10.0)
        compactor.activate()
        before = compactor.signature
        compactor.compact(128, token=1)
        compactor.compact(128, token=2)
        assert compactor.signature != before

    def test_tam_read_returns_signature(self, sim):
        compactor = Compactor(sim, "cmp", compaction_ratio=10.0)
        compactor.activate()
        compactor.compact(64, token=5)
        payload = TamPayload.read(0, response_bits=32)
        compactor.tam_access(payload)
        assert payload.response_data == compactor.signature

    def test_invalid_ratio(self, sim):
        with pytest.raises(ValueError):
            Compactor(sim, "cmp", compaction_ratio=0.5)
