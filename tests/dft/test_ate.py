"""Unit tests for the ATE model and virtual test programs.

The ATE is exercised on the full JPEG SoC model (its natural habitat) but with
drastically reduced pattern counts so every test stays fast.
"""

import pytest

from repro.dft.ate import StepKind, TestProgram, TestProgramStep
from repro.memory.march import MATS
from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.soc import JpegSocTlm, SocConfiguration
from repro.soc.testplan import COLOR_CONVERSION, DCT, MEMORY, PROCESSOR


@pytest.fixture
def small_tasks():
    """Down-scaled versions of the paper's seven test sequences."""
    return {
        "bist_proc": TestTask(name="bist_proc", kind=TestKind.LOGIC_BIST,
                              core=PROCESSOR, pattern_count=200, power=3.0),
        "ext_proc": TestTask(name="ext_proc", kind=TestKind.EXTERNAL_SCAN,
                             core=PROCESSOR, pattern_count=64, power=2.5),
        "cmp_proc": TestTask(name="cmp_proc",
                             kind=TestKind.EXTERNAL_SCAN_COMPRESSED,
                             core=PROCESSOR, pattern_count=64,
                             compression_ratio=50.0, power=2.5),
        "bist_cc": TestTask(name="bist_cc", kind=TestKind.LOGIC_BIST,
                            core=COLOR_CONVERSION, pattern_count=100, power=1.0),
        "ext_dct": TestTask(name="ext_dct", kind=TestKind.EXTERNAL_SCAN,
                            core=DCT, pattern_count=64, power=1.5),
        "mem_ctrl": TestTask(name="mem_ctrl",
                             kind=TestKind.MEMORY_BIST_CONTROLLER, core=MEMORY,
                             march=MATS, power=1.5),
        "mem_proc": TestTask(name="mem_proc",
                             kind=TestKind.MEMORY_MARCH_PROCESSOR, core=MEMORY,
                             march=MATS, power=2.0,
                             attributes={"processor_core": PROCESSOR}),
    }


@pytest.fixture
def small_soc():
    """A JPEG SoC with a small embedded memory so memory tests are quick."""
    return JpegSocTlm(SocConfiguration(memory_words=16_384, burst_patterns=16))


class TestTestProgram:
    def test_from_schedule_structure(self, small_tasks):
        schedule = TestSchedule(name="demo", phases=[
            ["bist_proc", "ext_dct"], ["mem_ctrl"],
        ])
        program = TestProgram.from_schedule(schedule, small_tasks)
        kinds = [step.kind for step in program.steps]
        assert kinds == [StepKind.RUN_TASK, StepKind.RUN_TASK, StepKind.BARRIER,
                         StepKind.RUN_TASK, StepKind.BARRIER]
        assert len(program) == 5

    def test_from_schedule_validates(self, small_tasks):
        bad = TestSchedule(name="bad", phases=[["missing_task"]])
        with pytest.raises(ValueError):
            TestProgram.from_schedule(bad, small_tasks)


class TestAteExecution:
    def run(self, soc, schedule, tasks):
        return soc.run_test_schedule(schedule, tasks)

    def test_logic_bist_task(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("bist_only", ["bist_proc"])
        metrics = self.run(small_soc, schedule, small_tasks)
        result = metrics.execution.task_results["bist_proc"]
        assert result.patterns_applied == 200
        assert small_soc.wrappers[PROCESSOR].bist_patterns_applied == 200
        assert result.signature == small_soc.wrappers[PROCESSOR].signature
        assert result.details["status_polls"] > 0
        # 200 patterns x 1451 cycles dominate the task duration.
        assert result.cycles >= 200 * 1451

    def test_external_scan_task(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("ext_only", ["ext_dct"])
        metrics = self.run(small_soc, schedule, small_tasks)
        result = metrics.execution.task_results["ext_dct"]
        assert result.patterns_applied == 64
        assert small_soc.wrappers[DCT].external_patterns_applied == 64
        # ATE-limited: 10 400 bits / 16 bits per cycle = 650 cycles/pattern,
        # slower than the 1301-cycle shift, so the shift dominates.
        assert result.cycles >= 64 * 1301

    def test_compressed_scan_task_uses_decompressor(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("cmp_only", ["cmp_proc"])
        metrics = self.run(small_soc, schedule, small_tasks)
        result = metrics.execution.task_results["cmp_proc"]
        assert result.patterns_applied == 64
        assert small_soc.decompressor.patterns_expanded == 64
        assert not small_soc.decompressor.bypass
        assert small_soc.wrappers[PROCESSOR].patterns_applied == 64
        # Compressed test is far shorter per pattern than the uncompressed one.
        assert result.cycles < 64 * 2900

    def test_memory_bist_controller_task(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("mem_only", ["mem_ctrl"])
        metrics = self.run(small_soc, schedule, small_tasks)
        result = metrics.execution.task_results["mem_ctrl"]
        words = small_soc.memory.array.words
        assert result.details["operations"] == 4 * words + 4 * words
        assert result.details["march_passed"]

    def test_memory_march_processor_task(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("mem_proc_only", ["mem_proc"])
        metrics = self.run(small_soc, schedule, small_tasks)
        result = metrics.execution.task_results["mem_proc"]
        assert result.details["march_passed"]
        assert result.details["operations"] == 8 * small_soc.memory.array.words

    def test_processor_march_slower_than_controller(self, small_tasks):
        controller_soc = JpegSocTlm(SocConfiguration(memory_words=16_384))
        processor_soc = JpegSocTlm(SocConfiguration(memory_words=16_384))
        ctrl = controller_soc.run_test_schedule(
            TestSchedule.sequential("a", ["mem_ctrl"]), small_tasks)
        proc = processor_soc.run_test_schedule(
            TestSchedule.sequential("b", ["mem_proc"]), small_tasks)
        assert proc.test_length_cycles > 3 * ctrl.test_length_cycles

    def test_concurrent_phase_is_max_not_sum(self, small_soc, small_tasks):
        concurrent = TestSchedule(name="conc", phases=[["bist_proc", "ext_dct"]])
        metrics = self.run(small_soc, concurrent, small_tasks)
        bist = metrics.execution.task_results["bist_proc"]
        ext = metrics.execution.task_results["ext_dct"]
        total = metrics.test_length_cycles
        assert total < bist.cycles + ext.cycles
        assert total >= max(bist.cycles, ext.cycles)

    def test_sequential_schedule_sums_task_times(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("seq", ["bist_cc", "ext_dct"])
        metrics = self.run(small_soc, schedule, small_tasks)
        task_cycle_sum = sum(r.cycles for r in metrics.execution.task_results.values())
        assert metrics.test_length_cycles >= task_cycle_sum

    def test_signature_check_against_expectation(self, small_tasks):
        soc = JpegSocTlm(SocConfiguration(memory_words=16_384))
        reference = soc.run_test_schedule(
            TestSchedule.sequential("ref", ["bist_cc"]), small_tasks)
        expected = reference.execution.task_results["bist_cc"].signature

        checked_task = TestTask(
            name="bist_cc", kind=TestKind.LOGIC_BIST, core=COLOR_CONVERSION,
            pattern_count=100, power=1.0,
            attributes={"expected_signature": expected},
        )
        soc_ok = JpegSocTlm(SocConfiguration(memory_words=16_384))
        good = soc_ok.run_test_schedule(
            TestSchedule.sequential("chk", ["bist_cc"]), {"bist_cc": checked_task})
        assert good.execution.task_results["bist_cc"].signature_ok is True
        assert good.execution.all_signatures_ok

        wrong_task = TestTask(
            name="bist_cc", kind=TestKind.LOGIC_BIST, core=COLOR_CONVERSION,
            pattern_count=100, power=1.0,
            attributes={"expected_signature": expected ^ 0x1},
        )
        soc_bad = JpegSocTlm(SocConfiguration(memory_words=16_384))
        bad = soc_bad.run_test_schedule(
            TestSchedule.sequential("chk", ["bist_cc"]), {"bist_cc": wrong_task})
        assert bad.execution.task_results["bist_cc"].signature_ok is False
        assert not bad.execution.all_signatures_ok

    def test_unknown_kind_rejected(self, small_soc):
        functional = TestTask(name="f", kind=TestKind.FUNCTIONAL, core=PROCESSOR)
        schedule = TestSchedule.sequential("f_only", ["f"])
        with pytest.raises(Exception):
            small_soc.run_test_schedule(schedule, {"f": functional})

    def test_activity_log_populated(self, small_soc, small_tasks):
        schedule = TestSchedule.sequential("two", ["bist_cc", "ext_dct"])
        self.run(small_soc, schedule, small_tasks)
        cores = small_soc.activity_log.cores()
        assert COLOR_CONVERSION in cores
        assert DCT in cores
