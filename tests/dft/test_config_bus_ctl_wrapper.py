"""Unit tests for the configuration scan bus, CTL descriptions and wrappers."""

import pytest

from repro.kernel import NS, SimTime
from repro.dft import (
    ConfigurationScanBus,
    ConfigurableRegister,
    CoreTestDescription,
    TamCommand,
    TamPayload,
    TamResponse,
    WrapperMode,
    generate_wrapper,
)
from repro.dft.tam import TamSlaveInterface


class TestConfigurableRegister:
    def test_update_masks_and_notifies(self):
        seen = []
        register = ConfigurableRegister("r", width_bits=4, on_update=seen.append)
        register.update(0x1F)
        assert register.value == 0xF
        assert seen == [0xF]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            ConfigurableRegister("r", width_bits=0)


class TestConfigurationScanBus:
    def test_ring_length_is_sum_of_widths(self, sim, clock):
        bus = ConfigurationScanBus(sim, "cfg", clock=clock)
        bus.register(ConfigurableRegister("a", 8))
        bus.register(ConfigurableRegister("b", 4))
        assert bus.ring_length_bits == 12
        assert bus.configuration_cycles() == 12 + bus.protocol_overhead_cycles

    def test_duplicate_register_rejected(self, sim, clock):
        bus = ConfigurationScanBus(sim, "cfg", clock=clock)
        bus.register(ConfigurableRegister("a", 8))
        with pytest.raises(ValueError):
            bus.register(ConfigurableRegister("a", 8))

    def test_configure_sets_value_and_takes_ring_time(self, sim, clock, tracer):
        bus = ConfigurationScanBus(sim, "cfg", clock=clock,
                                   protocol_overhead_cycles=4, tracer=tracer)
        register = ConfigurableRegister("wir", 8)
        bus.register(register)

        def ate():
            yield from bus.configure("wir", 0x2A, initiator="ate")

        sim.spawn(ate())
        end = sim.run()
        assert register.value == 0x2A
        assert end == SimTime((8 + 4) * 10, NS)
        assert tracer.records[0].kind == "configure"

    def test_configure_unknown_target_raises(self, sim, clock):
        bus = ConfigurationScanBus(sim, "cfg", clock=clock)

        def ate():
            yield from bus.configure("missing", 1)

        sim.spawn(ate())
        with pytest.raises(Exception):
            sim.run()

    def test_configure_many_single_shift(self, sim, clock):
        bus = ConfigurationScanBus(sim, "cfg", clock=clock)
        first = ConfigurableRegister("a", 8)
        second = ConfigurableRegister("b", 8)
        bus.register(first)
        bus.register(second)

        def ate():
            yield from bus.configure_many({"a": 1, "b": 2})

        sim.spawn(ate())
        sim.run()
        assert (first.value, second.value) == (1, 2)
        assert bus.configuration_count == 1


class TestCoreTestDescription:
    def test_describe_volumes(self):
        description = CoreTestDescription.describe("cpu", chain_count=32,
                                                    scan_cells=32 * 1450)
        assert description.scan_cells == 46_400
        assert description.chain_count == 32
        assert description.stimulus_bits_per_pattern() == 46_400
        assert description.response_bits_per_pattern() == 46_400

    def test_shift_cycles_uncompressed(self):
        description = CoreTestDescription.describe("cpu", chain_count=32,
                                                    scan_cells=32 * 1450)
        assert description.shift_cycles_per_pattern() == 1451

    def test_shift_cycles_compressed_uses_internal_chains(self):
        description = CoreTestDescription.describe(
            "cpu", chain_count=32, scan_cells=32 * 1450, internal_chain_count=64,
        )
        assert description.shift_cycles_per_pattern(compressed=True) == 726
        # Without internal chains the compressed view falls back to the
        # external chain length.
        plain = CoreTestDescription.describe("cpu", chain_count=32,
                                             scan_cells=32 * 1450)
        assert plain.shift_cycles_per_pattern(compressed=True) == 1451

    def test_bist_cycles_requires_bist(self):
        description = CoreTestDescription.describe("dct", chain_count=8,
                                                    scan_cells=8 * 1300)
        with pytest.raises(ValueError):
            description.bist_cycles(10)
        bist = CoreTestDescription.describe("cpu", chain_count=4, scan_cells=16,
                                            has_logic_bist=True)
        assert bist.bist_cycles(10) == 10 * (4 + 1)

    def test_attach_synthetic_validation(self):
        description = CoreTestDescription.describe("cpu", chain_count=8,
                                                    scan_cells=800)
        description.attach_synthetic_validation(flip_flops=64, gates=320, seed=2,
                                                chain_count=4)
        assert description.validation_netlist is not None
        assert description.validation_netlist.flip_flop_count == 64
        assert description.validation_scan_config.chain_count == 4
        assert description.notes


class TestWrapperParallelPort:
    def make_wrapper(self, sim, parallel_width_bits, chain_lengths=(25, 25, 25, 25)):
        from repro.rtl.scan import ScanCell, ScanChain, ScanConfiguration

        chains = [
            ScanChain(index=i, cells=[
                ScanCell(name=f"ff{i}_{p}", chain_index=i, position=p)
                for p in range(length)
            ])
            for i, length in enumerate(chain_lengths)
        ]
        description = CoreTestDescription(
            core_name="demo",
            scan_config=ScanConfiguration(core_name="demo", chains=chains),
        )
        return generate_wrapper(sim, description,
                                parallel_width_bits=parallel_width_bits)

    def test_unconstrained_port_matches_description(self, sim):
        wrapper = self.make_wrapper(sim, parallel_width_bits=0)
        assert wrapper.scan_lanes == 4
        assert (wrapper.external_shift_cycles_per_pattern()
                == wrapper.description.shift_cycles_per_pattern() == 26)

    def test_narrow_port_serializes_whole_chains(self, sim):
        wrapper = self.make_wrapper(sim, parallel_width_bits=2)
        assert wrapper.scan_lanes == 2
        # Two whole 25-cell chains per lane: 2*25 + 1 capture.
        assert wrapper.external_shift_cycles_per_pattern() == 51

    def test_lanes_concatenate_whole_chains_not_fractions(self, sim):
        # 4 chains on 3 lanes still puts two whole chains on one lane, so a
        # 3-bit port is exactly as slow as a 2-bit port — ceil(100/3)+1 = 35
        # (fractional chain splitting) would be non-physical.
        three = self.make_wrapper(sim, parallel_width_bits=3)
        two = self.make_wrapper(sim, parallel_width_bits=2)
        assert (three.external_shift_cycles_per_pattern()
                == two.external_shift_cycles_per_pattern() == 51)

    def test_narrow_port_never_beats_unbalanced_chains(self, sim):
        # Longest chain 40: the unconstrained shift is 41 cycles; any
        # narrower port must be at least as slow.
        wrapper = self.make_wrapper(sim, parallel_width_bits=3,
                                    chain_lengths=(40, 20, 20, 20))
        assert (wrapper.external_shift_cycles_per_pattern()
                >= 41 == self.make_wrapper(
                    sim, parallel_width_bits=0,
                    chain_lengths=(40, 20, 20, 20),
                ).external_shift_cycles_per_pattern())

    def test_estimator_shares_the_lane_model(self, sim):
        from repro.schedule.estimator import PlatformParameters, TestTimeEstimator

        wrapper = self.make_wrapper(sim, parallel_width_bits=3)
        estimator = TestTimeEstimator(
            {"demo": wrapper.description},
            PlatformParameters(wrapper_parallel_width_bits=3),
        )
        assert (estimator._external_shift_cycles(wrapper.description)
                == wrapper.external_shift_cycles_per_pattern())

    def test_compressed_shift_ignores_the_port(self, sim):
        description = CoreTestDescription.describe(
            "demo", chain_count=4, scan_cells=100, internal_chain_count=16)
        wrapper = generate_wrapper(sim, description, parallel_width_bits=1)
        assert (wrapper.external_shift_cycles_per_pattern(compressed=True)
                == description.shift_cycles_per_pattern(compressed=True))

    def test_compressed_without_decompressor_sees_the_port(self, sim):
        # No internal chains -> no decompressor: a compressed task shifts
        # like plain external scan, so the lane constraint applies and the
        # estimator agrees with the TLM.
        from repro.schedule.estimator import PlatformParameters, TestTimeEstimator
        from repro.schedule.model import TestKind, TestTask

        wrapper = self.make_wrapper(sim, parallel_width_bits=2)
        assert (wrapper.external_shift_cycles_per_pattern(compressed=True)
                == wrapper.external_shift_cycles_per_pattern(compressed=False))
        estimator = TestTimeEstimator(
            {"demo": wrapper.description},
            PlatformParameters(wrapper_parallel_width_bits=2),
        )
        task = TestTask(name="t", kind=TestKind.EXTERNAL_SCAN_COMPRESSED,
                        core="demo", pattern_count=8, compression_ratio=10.0)
        # The per-pattern bound is the lane-constrained shift (51 cycles).
        assert estimator.estimate_task_cycles(task) >= 8 * 51

    def test_negative_width_rejected(self, sim):
        with pytest.raises(ValueError):
            self.make_wrapper(sim, parallel_width_bits=-1)


class TestTestWrapper:
    @pytest.fixture
    def wrapper(self, sim):
        description = CoreTestDescription.describe(
            "demo", chain_count=8, scan_cells=8 * 100, has_logic_bist=True,
            internal_chain_count=16,
        )
        return generate_wrapper(sim, description)

    def test_generate_wrapper_registers_on_config_bus(self, sim, clock):
        description = CoreTestDescription.describe("demo", chain_count=4,
                                                    scan_cells=64)
        config_bus = ConfigurationScanBus(sim, "cfg", clock=clock)
        wrapper = generate_wrapper(sim, description, config_bus=config_bus)
        assert wrapper.wir_register in config_bus.registers

    def test_wrapper_is_tam_slave(self, wrapper):
        assert TamSlaveInterface.is_implemented_by(wrapper)

    def test_default_mode_is_functional(self, wrapper):
        assert wrapper.mode is WrapperMode.FUNCTIONAL

    def test_wir_update_switches_mode(self, wrapper):
        wrapper.wir_register.update(WrapperMode.INTEST_SCAN.value)
        assert wrapper.mode is WrapperMode.INTEST_SCAN
        assert wrapper.mode.is_test_mode

    def test_wir_decode_of_invalid_value_falls_back_to_functional(self, wrapper):
        wrapper.wir_register.update(0x7F)
        assert wrapper.mode is WrapperMode.FUNCTIONAL

    def test_functional_mode_forwards_to_core(self, sim):
        class FakeCore:
            def __init__(self):
                self.payloads = []

            def functional_access(self, payload):
                self.payloads.append(payload)
                return payload.complete(TamResponse.OK)

        core = FakeCore()
        description = CoreTestDescription.describe("demo", chain_count=2,
                                                    scan_cells=16)
        wrapper = generate_wrapper(sim, description, core=core)
        payload = TamPayload.write(0, data_bits=8)
        wrapper.tam_access(payload)
        assert core.payloads == [payload]
        assert wrapper.functional_accesses == 1

    def test_test_mode_accounts_patterns_and_signature(self, wrapper):
        wrapper.set_mode(WrapperMode.INTEST_SCAN)
        payload = TamPayload.write_read(0, data_bits=800, patterns=1)
        wrapper.tam_access(payload)
        assert wrapper.patterns_applied == 1
        assert wrapper.external_patterns_applied == 1
        assert wrapper.stimulus_bits_received == 800
        assert payload.response_data == wrapper.signature
        assert payload.status is TamResponse.OK

    def test_bist_mode_reports_status_on_read(self, wrapper):
        wrapper.set_mode(WrapperMode.INTEST_BIST)
        wrapper.apply_bist_patterns(100)
        payload = TamPayload.read(0, response_bits=64)
        wrapper.tam_access(payload)
        assert payload.response_data["patterns_applied"] == 100

    def test_apply_bist_requires_bist_capable_core(self, sim):
        description = CoreTestDescription.describe("dct", chain_count=2,
                                                    scan_cells=16)
        wrapper = generate_wrapper(sim, description)
        with pytest.raises(ValueError):
            wrapper.apply_bist_patterns(5)

    def test_signature_is_deterministic_and_order_sensitive(self, sim):
        description = CoreTestDescription.describe("demo", chain_count=2,
                                                    scan_cells=16)
        first = generate_wrapper(sim, description)
        second = generate_wrapper(sim, description)
        first.apply_external_patterns(10)
        second.apply_external_patterns(10)
        assert first.signature == second.signature
        second.apply_external_patterns(1)
        assert first.signature != second.signature

    def test_shift_cycles_delegate_to_description(self, wrapper):
        assert wrapper.shift_cycles_per_pattern() == 101
        assert wrapper.shift_cycles_per_pattern(compressed=True) == 51

    def test_untimed_tam_if_view(self, wrapper):
        wrapper.set_mode(WrapperMode.INTEST_SCAN)
        wrapper.write(TamPayload.write(0, data_bits=800, patterns=1))
        wrapper.write_read(TamPayload.write_read(0, data_bits=800, patterns=1))
        response = wrapper.read(TamPayload.read(0, response_bits=32))
        assert wrapper.patterns_applied == 2
        assert response.status is TamResponse.OK

    def test_reset_statistics(self, wrapper):
        wrapper.set_mode(WrapperMode.INTEST_SCAN)
        wrapper.apply_external_patterns(5)
        wrapper.reset_statistics()
        assert wrapper.patterns_applied == 0
        assert wrapper.signature == 0

    def test_validate_patterns_requires_netlist(self, wrapper):
        with pytest.raises(ValueError):
            wrapper.validate_patterns(pattern_count=8)

    def test_validate_patterns_with_netlist(self, sim):
        description = CoreTestDescription.describe(
            "demo", chain_count=4, scan_cells=64, has_logic_bist=True,
        ).attach_synthetic_validation(flip_flops=48, gates=240, seed=5,
                                      chain_count=4)
        wrapper = generate_wrapper(sim, description)
        coverage = wrapper.validate_patterns(pattern_count=64, fault_sample=80)
        assert 0.0 < coverage <= 1.0
