"""Unit tests for the TAM payload and TAM/ATE channel models."""

import pytest

from repro.kernel import NS, SimTime, Timeout
from repro.dft import TamChannel, TamCommand, TamPayload, TamResponse
from repro.dft.tam import AteLink, TamInterface, TamSlaveInterface


class RecordingSlave:
    """Minimal TAM slave used to observe deliveries."""

    def __init__(self):
        self.payloads = []

    def tam_access(self, payload):
        self.payloads.append(payload)
        payload.response_data = "slave_data"
        return payload.complete(TamResponse.OK)


class TestTamPayload:
    def test_write_factory(self):
        payload = TamPayload.write(0x100, data_bits=64, data="stimuli", tag=1)
        assert payload.command is TamCommand.WRITE
        assert payload.total_bits == 64
        assert payload.attributes == {"tag": 1}
        assert payload.status is TamResponse.INCOMPLETE

    def test_read_factory_defaults_response_bits(self):
        payload = TamPayload.read(0x10, response_bits=32)
        assert payload.command is TamCommand.READ
        assert payload.total_bits == 32

    def test_write_read_uses_max_of_directions(self):
        payload = TamPayload.write_read(0x10, data_bits=100, response_bits=40)
        assert payload.total_bits == 100
        symmetric = TamPayload.write_read(0x10, data_bits=100)
        assert symmetric.response_bits == 100

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            TamPayload(TamCommand.WRITE, data_bits=-1)

    def test_complete_sets_status(self):
        payload = TamPayload.write(0, data_bits=8)
        payload.complete()
        assert payload.status is TamResponse.OK


class TestTamChannelStructure:
    def test_implements_tam_interface(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        assert TamInterface.is_implemented_by(tam)

    def test_slave_interface_check_on_bind(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        with pytest.raises(TypeError):
            tam.bind_slave(object(), 0, 0x100)

    def test_overlapping_slave_ranges_rejected(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        tam.bind_slave(RecordingSlave(), 0x0, 0x100)
        with pytest.raises(ValueError):
            tam.bind_slave(RecordingSlave(), 0x80, 0x100)

    def test_decode(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        slave = RecordingSlave()
        tam.bind_slave(slave, 0x1000, 0x100)
        found, offset = tam.decode(0x1010)
        assert found is slave and offset == 0x10
        assert tam.decode(0x5000) == (None, None)

    def test_transfer_cycles(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        assert tam.transfer_cycles(0) == 0
        assert tam.transfer_cycles(32) == 1
        assert tam.transfer_cycles(33) == 2
        assert tam.transfer_cycles(46400) == 1450

    def test_invalid_parameters(self, sim, clock):
        with pytest.raises(ValueError):
            TamChannel(sim, "tam", width_bits=0, clock=clock)
        with pytest.raises(ValueError):
            TamChannel(sim, "tam2", width_bits=8, clock=clock,
                       arbitration_overhead_cycles=-1)


class TestTamChannelTiming:
    def test_write_transaction_timing_and_delivery(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        slave = RecordingSlave()
        tam.bind_slave(slave, 0x0, 0x1000)
        results = {}

        def master():
            payload = TamPayload.write(0x10, data_bits=64, data="hello")
            payload.initiator = "tb"
            result = yield from tam.write(payload)
            results["status"] = result.status
            results["time"] = sim.now

        sim.spawn(master())
        sim.run()
        # 64 bits on a 32-bit TAM -> 2 beats + 1 overhead cycle = 3 cycles.
        assert results["time"] == SimTime(30, NS)
        assert results["status"] is TamResponse.OK
        assert slave.payloads[0].data == "hello"
        assert tam.transaction_count == 1
        assert tam.busy_cycles_total == 3

    def test_read_returns_slave_data(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        tam.bind_slave(RecordingSlave(), 0x0, 0x1000)
        results = {}

        def master():
            payload = TamPayload.read(0x0, response_bits=32)
            result = yield from tam.read(payload)
            results["data"] = result.response_data

        sim.spawn(master())
        sim.run()
        assert results["data"] == "slave_data"

    def test_unmapped_address_reports_error(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        results = {}

        def master():
            payload = TamPayload.write(0x9999, data_bits=8)
            result = yield from tam.write(payload)
            results["status"] = result.status

        sim.spawn(master())
        sim.run()
        assert results["status"] is TamResponse.ADDRESS_ERROR

    def test_arbitration_serialises_masters(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        tam.bind_slave(RecordingSlave(), 0x0, 0x1000)
        completion_times = {}

        def master(tag):
            payload = TamPayload.write(0x0, data_bits=32 * 9)  # 9+1 cycles
            payload.initiator = tag
            yield from tam.write(payload)
            completion_times[tag] = sim.now

        sim.spawn(master("m0"))
        sim.spawn(master("m1"))
        sim.run()
        assert completion_times["m0"] == SimTime(100, NS)
        assert completion_times["m1"] == SimTime(200, NS)
        assert tam.contention_count == 1

    def test_occupy_records_busy_cycles(self, sim, clock, tracer):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock, tracer=tracer)

        def master():
            yield from tam.occupy("tb", busy_cycles=50, kind="burst", data_bits=1600)

        sim.spawn(master())
        sim.run()
        assert len(tracer.records) == 1
        record = tracer.records[0]
        assert record.attributes["busy_cycles"] == 50
        assert record.duration == SimTime(500, NS)
        assert tam.bits_transferred == 1600

    def test_occupy_negative_rejected(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)

        def master():
            yield from tam.occupy("tb", busy_cycles=-1)

        sim.spawn(master())
        with pytest.raises(Exception):
            sim.run()

    def test_write_read_command_normalisation(self, sim, clock):
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)
        slave = RecordingSlave()
        tam.bind_slave(slave, 0x0, 0x1000)

        def master():
            payload = TamPayload(TamCommand.WRITE, address=0, data_bits=8)
            yield from tam.write_read(payload)

        sim.spawn(master())
        sim.run()
        assert slave.payloads[0].command is TamCommand.WRITE_READ


class TestAteLink:
    def test_transfer_cycles_full_duplex(self, sim, clock):
        link = AteLink(sim, "ate", width_bits=16, clock=clock)
        assert link.transfer_cycles(1600, 32) == 100
        assert link.transfer_cycles(32, 1600) == 100
        assert link.transfer_cycles(0, 0) == 0

    def test_transfer_records_and_advances_time(self, sim, clock, tracer):
        link = AteLink(sim, "ate", width_bits=16, clock=clock, tracer=tracer)

        def ate():
            yield from link.transfer("ate", stimulus_bits=160, response_bits=32)

        sim.spawn(ate())
        end = sim.run()
        assert end == SimTime(100, NS)
        assert link.transaction_count == 1
        assert tracer.records[0].channel == "ate"

    def test_link_is_exclusive(self, sim, clock):
        link = AteLink(sim, "ate", width_bits=16, clock=clock)
        times = {}

        def user(tag):
            yield from link.transfer(tag, stimulus_bits=160)
            times[tag] = sim.now

        sim.spawn(user("a"))
        sim.spawn(user("b"))
        sim.run()
        assert times["b"] == times["a"] + SimTime(100, NS)

    def test_invalid_width(self, sim, clock):
        with pytest.raises(ValueError):
            AteLink(sim, "ate", width_bits=0, clock=clock)
