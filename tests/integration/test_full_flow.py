"""Integration tests: complete flows across the whole stack.

These tests exercise the same paths as the paper's evaluation but at reduced
scale (fewer patterns, smaller memory) so the whole suite stays fast.
"""

import numpy as np
import pytest

from repro.memory import StuckAtCellFault
from repro.memory.march import MATS_PLUS
from repro.schedule import (
    PowerModel,
    TestKind,
    TestSchedule,
    TestTask,
    TestTimeEstimator,
    greedy_concurrent_schedule,
    validate_schedule,
)
from repro.soc import (
    JpegSocTlm,
    SocConfiguration,
    build_core_descriptions,
    build_platform_parameters,
)
from repro.soc.jpeg import JpegEncoder
from repro.soc.testplan import COLOR_CONVERSION, DCT, MEMORY, PROCESSOR


def scaled_tasks(scale: int = 100):
    """The paper's seven sequences with pattern counts divided by *scale*."""
    return {
        "t1": TestTask(name="t1", kind=TestKind.LOGIC_BIST, core=PROCESSOR,
                       pattern_count=100_000 // scale, power=3.0),
        "t2": TestTask(name="t2", kind=TestKind.EXTERNAL_SCAN, core=PROCESSOR,
                       pattern_count=20_000 // scale, power=2.5),
        "t3": TestTask(name="t3", kind=TestKind.EXTERNAL_SCAN_COMPRESSED,
                       core=PROCESSOR, pattern_count=20_000 // scale,
                       compression_ratio=50.0, power=2.5),
        "t4": TestTask(name="t4", kind=TestKind.LOGIC_BIST,
                       core=COLOR_CONVERSION, pattern_count=10_000 // scale,
                       power=1.0),
        "t5": TestTask(name="t5", kind=TestKind.EXTERNAL_SCAN, core=DCT,
                       pattern_count=10_000 // scale, power=1.5),
        "t6": TestTask(name="t6", kind=TestKind.MEMORY_BIST_CONTROLLER,
                       core=MEMORY, march=MATS_PLUS, power=1.5),
        "t7": TestTask(name="t7", kind=TestKind.MEMORY_MARCH_PROCESSOR,
                       core=MEMORY, march=MATS_PLUS, power=2.0,
                       attributes={"processor_core": PROCESSOR}),
    }


def scaled_schedules():
    return {
        "schedule_1": TestSchedule.sequential("schedule_1",
                                              ["t1", "t2", "t4", "t5", "t7"]),
        "schedule_2": TestSchedule.sequential("schedule_2",
                                              ["t1", "t3", "t4", "t5", "t6"]),
        "schedule_3": TestSchedule(name="schedule_3",
                                   phases=[["t1", "t5"], ["t2", "t4"], ["t7"]]),
        "schedule_4": TestSchedule(name="schedule_4",
                                   phases=[["t1", "t5"], ["t3", "t4", "t6"]]),
    }


SMALL_CONFIG = SocConfiguration(memory_words=32_768, burst_patterns=16)


class TestScaledTable1Flow:
    @pytest.fixture(scope="class")
    def results(self):
        tasks = scaled_tasks()
        results = {}
        for name, schedule in scaled_schedules().items():
            soc = JpegSocTlm(SMALL_CONFIG)
            results[name] = soc.run_test_schedule(schedule, tasks)
        return results

    def test_every_schedule_completes_all_tasks(self, results):
        for name, metrics in results.items():
            assert metrics.execution.all_signatures_ok
            assert len(metrics.execution.task_results) == 5

    def test_test_length_ordering_matches_paper(self, results):
        lengths = {name: metrics.test_length_cycles
                   for name, metrics in results.items()}
        assert lengths["schedule_4"] < lengths["schedule_2"]
        assert lengths["schedule_2"] < lengths["schedule_3"]
        assert lengths["schedule_3"] < lengths["schedule_1"]

    def test_concurrent_schedules_save_time_over_sequential(self, results):
        assert results["schedule_3"].test_length_cycles < \
            results["schedule_1"].test_length_cycles
        assert results["schedule_4"].test_length_cycles < \
            results["schedule_2"].test_length_cycles

    def test_utilization_and_power_are_plausible(self, results):
        for metrics in results.values():
            assert 0.0 < metrics.avg_tam_utilization <= metrics.peak_tam_utilization <= 1.0
            assert metrics.peak_power >= 3.0
        assert results["schedule_4"].peak_power > results["schedule_1"].peak_power


class TestSchedulerToSimulationFlow:
    def test_generated_schedule_runs_and_validates(self):
        tasks = scaled_tasks()
        descriptions = build_core_descriptions()
        platform = build_platform_parameters()
        estimator = TestTimeEstimator(descriptions, platform,
                                      memory_words={MEMORY: SMALL_CONFIG.memory_words})
        estimates = estimator.estimate_all(tasks)
        power_model = PowerModel(budget=6.0)
        schedule = greedy_concurrent_schedule("generated", tasks, estimates,
                                              power_model=power_model)

        soc = JpegSocTlm(SMALL_CONFIG)
        metrics = soc.run_test_schedule(schedule, tasks)
        report = validate_schedule(
            schedule, tasks, estimator,
            simulated_cycles=metrics.test_length_cycles,
            power_model=power_model,
            simulated_peak_power=metrics.peak_power,
            tolerance=0.25,
        )
        assert report.passed, report.summary()


class TestDefectDetectionFlow:
    def test_memory_defect_detected_by_both_memory_tests(self):
        tasks = scaled_tasks()
        for task_name in ("t6", "t7"):
            soc = JpegSocTlm(SMALL_CONFIG)
            # The functional validation pass subsamples the address space with
            # a stride of 257, so place the defect on a visited address.
            soc.memory.array.inject_fault(
                StuckAtCellFault(address=257 * 3, bit=1, value=1))
            schedule = TestSchedule.sequential("defect", [task_name])
            metrics = soc.run_test_schedule(schedule, tasks)
            result = metrics.execution.task_results[task_name]
            assert result.details["failures"] > 0
            assert not result.details["march_passed"]

    def test_wrapper_pattern_validation_on_synthetic_netlist(self):
        config = SocConfiguration(memory_words=8192,
                                  with_validation_netlists=True)
        soc = JpegSocTlm(config)
        coverage = soc.wrappers[PROCESSOR].validate_patterns(pattern_count=64,
                                                             fault_sample=100)
        assert 0.2 < coverage <= 1.0


class TestMissionAndTestConsistency:
    def test_functional_encode_then_full_test(self, test_image):
        soc = JpegSocTlm(SocConfiguration(memory_words=65_536,
                                          burst_patterns=16))
        encoded, cycles = soc.run_functional_encode(test_image, quality=60)
        assert encoded.bitstream == JpegEncoder(quality=60).encode(test_image).bitstream

        tasks = scaled_tasks(scale=500)
        schedule = TestSchedule(name="post_mission",
                                phases=[["t1", "t5"], ["t3", "t4", "t6"]])
        metrics = soc.run_test_schedule(schedule, tasks)
        assert metrics.execution.all_signatures_ok
        assert metrics.test_length_cycles > 0


class TestExampleEntryPoints:
    def test_examples_are_importable_and_define_main(self):
        import importlib.util
        import pathlib

        examples_dir = pathlib.Path(__file__).resolve().parents[2] / "examples"
        scripts = sorted(examples_dir.glob("*.py"))
        assert len(scripts) >= 3
        for script in scripts:
            spec = importlib.util.spec_from_file_location(script.stem, script)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            assert hasattr(module, "main"), f"{script.name} has no main()"

    def test_quickstart_example_runs(self, capsys):
        import importlib.util
        import pathlib

        script = (pathlib.Path(__file__).resolve().parents[2] / "examples"
                  / "quickstart.py")
        spec = importlib.util.spec_from_file_location("quickstart_module", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        module.main()
        output = capsys.readouterr().out
        assert "patterns applied" in output
        assert "average TAM utilization" in output
