"""Unit tests for march tests and pattern tests."""

import pytest

from repro.memory import (
    CouplingFault,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MemoryArray,
    StuckAtCellFault,
    TransitionFault,
    run_march_test,
    run_pattern_test,
)
from repro.memory.march import AddressOrder, MarchElement, MarchOperation, MarchTest


class TestMarchNotation:
    def test_parse_element(self):
        element = MarchElement.parse("up(r0,w1)")
        assert element.order is AddressOrder.UP
        assert [str(op) for op in element.operations] == ["r0", "w1"]

    def test_parse_down_and_any(self):
        assert MarchElement.parse("down(r1,w0,r0)").order is AddressOrder.DOWN
        assert MarchElement.parse("any(w0)").order is AddressOrder.ANY

    def test_operation_validation(self):
        with pytest.raises(ValueError):
            MarchOperation("x", 0)
        with pytest.raises(ValueError):
            MarchOperation("r", 2)

    def test_known_algorithm_complexities(self):
        # Classic complexity figures: MATS 4N, MATS+ 5N, MATS++ 6N,
        # MARCH X 6N, MARCH Y 8N, MARCH C- 10N.
        assert MATS.operations_per_cell == 4
        assert MATS_PLUS.operations_per_cell == 5
        assert MATS_PLUS_PLUS.operations_per_cell == 6
        assert MARCH_X.operations_per_cell == 6
        assert MARCH_Y.operations_per_cell == 8
        assert MARCH_C_MINUS.operations_per_cell == 10

    def test_operation_count_scales_with_words(self):
        assert MATS_PLUS.operation_count(1 << 20) == 5 * (1 << 20)

    def test_str_contains_arrows(self):
        text = str(MATS_PLUS)
        assert "MATS+" in text
        assert "⇑" in text and "⇓" in text


class TestRunMarchTest:
    def test_fault_free_memory_passes(self):
        memory = MemoryArray(words=256)
        result = run_march_test(memory, MATS_PLUS)
        assert result.passed
        assert result.operations == 5 * 256
        assert result.reads + result.writes == result.operations

    def test_detects_stuck_at_cell_fault(self):
        memory = MemoryArray(words=128)
        memory.inject_fault(StuckAtCellFault(address=37, bit=0, value=1))
        result = run_march_test(memory, MATS_PLUS)
        assert not result.passed
        assert 37 in result.failing_addresses

    def test_detects_transition_fault(self):
        memory = MemoryArray(words=128)
        memory.inject_fault(TransitionFault(address=9, bit=0, rising=True))
        result = run_march_test(memory, MATS_PLUS)
        assert not result.passed
        assert 9 in result.failing_addresses

    def test_march_c_minus_detects_coupling_fault(self):
        memory = MemoryArray(words=64)
        memory.inject_fault(CouplingFault(aggressor=10, victim=20, bit=0,
                                          trigger_value=1, forced_value=1))
        result = run_march_test(memory, MARCH_C_MINUS)
        assert not result.passed

    def test_mats_plus_misses_falling_transition_fault(self):
        """MATS+ (5N) never reads a cell after its final w0, so a falling
        (1 -> 0) transition fault escapes it; MARCH C- (10N) catches it."""
        def build():
            memory = MemoryArray(words=64)
            memory.inject_fault(TransitionFault(address=13, bit=0, rising=False))
            return memory

        weak = run_march_test(build(), MATS_PLUS)
        strong = run_march_test(build(), MARCH_C_MINUS)
        assert not strong.passed
        assert weak.passed

    def test_stride_subsampling(self):
        memory = MemoryArray(words=1024)
        result = run_march_test(memory, MATS_PLUS, stride=16)
        # Reported operation count is for the full array ...
        assert result.operations == 5 * 1024
        # ... but only the subsampled cells were actually accessed.
        assert memory.read_count + memory.write_count == 5 * (1024 // 16)

    def test_max_failures_caps_list(self):
        memory = MemoryArray(words=64)
        for address in range(32):
            memory.inject_fault(StuckAtCellFault(address=address, bit=0, value=1))
        result = run_march_test(memory, MATS_PLUS, max_failures=5)
        assert len(result.failures) == 5
        assert not result.passed

    def test_invalid_stride(self):
        memory = MemoryArray(words=16)
        with pytest.raises(ValueError):
            run_march_test(memory, MATS_PLUS, stride=0)


class TestRunPatternTest:
    def test_fault_free_memory_passes(self):
        memory = MemoryArray(words=128)
        result = run_pattern_test(memory)
        assert result.passed
        assert result.operations == 2 * 2 * 128

    def test_detects_stuck_at_fault(self):
        memory = MemoryArray(words=128)
        memory.inject_fault(StuckAtCellFault(address=64, bit=2, value=1))
        result = run_pattern_test(memory)
        assert not result.passed

    def test_checkerboard_backgrounds_alternate(self):
        memory = MemoryArray(words=16)
        run_pattern_test(memory, patterns=(0x55,))
        assert memory.raw_read(0) == 0x55
        assert memory.raw_read(1) == 0xAA

    def test_invalid_stride(self):
        memory = MemoryArray(words=16)
        with pytest.raises(ValueError):
            run_pattern_test(memory, stride=0)


class TestCustomMarch:
    def test_from_notation(self):
        march = MarchTest.from_notation("CUSTOM", ["any(w1)", "up(r1,w0)", "down(r0)"])
        assert march.operations_per_cell == 4
        memory = MemoryArray(words=32)
        result = run_march_test(memory, march, background=0)
        assert result.passed
