"""Unit tests for the memory array model and memory fault models."""

import pytest

from repro.memory import (
    CouplingFault,
    MemoryArray,
    StuckAtCellFault,
    TransitionFault,
)


class TestMemoryArray:
    def test_background_value_for_unwritten_cells(self):
        memory = MemoryArray(words=16, word_bits=8, background=0xAB)
        assert memory.read(3) == 0xAB

    def test_write_then_read(self):
        memory = MemoryArray(words=16, word_bits=8)
        memory.write(5, 0x5A)
        assert memory.read(5) == 0x5A

    def test_word_mask_applied(self):
        memory = MemoryArray(words=4, word_bits=4)
        memory.write(0, 0xFF)
        assert memory.read(0) == 0xF

    def test_out_of_range_access_rejected(self):
        memory = MemoryArray(words=8)
        with pytest.raises(IndexError):
            memory.read(8)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            MemoryArray(words=0)
        with pytest.raises(ValueError):
            MemoryArray(words=8, word_bits=0)

    def test_operation_counters(self):
        memory = MemoryArray(words=8)
        memory.write(0, 1)
        memory.read(0)
        memory.read(1)
        assert memory.write_count == 1
        assert memory.read_count == 2
        memory.reset_counters()
        assert memory.write_count == memory.read_count == 0

    def test_load_and_dump(self):
        memory = MemoryArray(words=32)
        memory.load([1, 2, 3, 4], base_address=10)
        assert memory.dump(10, 4) == [1, 2, 3, 4]

    def test_dump_out_of_range_rejected(self):
        memory = MemoryArray(words=8)
        with pytest.raises(IndexError):
            memory.dump(6, 4)

    def test_fill_resets_contents(self):
        memory = MemoryArray(words=8)
        memory.write(2, 9)
        memory.fill(0x3C)
        assert memory.read(2) == 0x3C
        assert memory.read(7) == 0x3C

    def test_sparse_storage_for_large_arrays(self):
        memory = MemoryArray(words=1 << 20, word_bits=8)
        memory.write(123456, 0x42)
        assert memory.read(123456) == 0x42
        assert len(memory._contents) == 1

    def test_fault_management(self):
        memory = MemoryArray(words=8)
        fault = StuckAtCellFault(address=1, bit=0, value=0)
        memory.inject_fault(fault)
        assert memory.faults == [fault]
        memory.clear_faults()
        assert memory.faults == []

    def test_fault_validation_on_injection(self):
        memory = MemoryArray(words=8, word_bits=8)
        with pytest.raises(ValueError):
            memory.inject_fault(StuckAtCellFault(address=100, bit=0, value=1))
        with pytest.raises(ValueError):
            memory.inject_fault(StuckAtCellFault(address=0, bit=9, value=1))


class TestStuckAtCellFault:
    def test_stuck_at_zero_masks_bit(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(StuckAtCellFault(address=2, bit=0, value=0))
        memory.write(2, 0xFF)
        assert memory.read(2) == 0xFE

    def test_stuck_at_one_forces_bit(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(StuckAtCellFault(address=2, bit=3, value=1))
        memory.write(2, 0x00)
        assert memory.read(2) == 0x08

    def test_other_cells_unaffected(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(StuckAtCellFault(address=2, bit=0, value=0))
        memory.write(3, 0xFF)
        assert memory.read(3) == 0xFF

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtCellFault(address=0, bit=0, value=7)


class TestTransitionFault:
    def test_rising_transition_blocked(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(TransitionFault(address=1, bit=0, rising=True))
        memory.write(1, 0)
        memory.write(1, 1)      # 0 -> 1 blocked
        assert memory.read(1) == 0

    def test_falling_transition_blocked(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(TransitionFault(address=1, bit=0, rising=False))
        memory.write(1, 1)      # initial write 0 -> 1 allowed
        memory.write(1, 0)      # 1 -> 0 blocked
        assert memory.read(1) == 1

    def test_unaffected_direction_still_works(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(TransitionFault(address=1, bit=0, rising=True))
        memory.write(1, 0)
        assert memory.read(1) == 0


class TestCouplingFault:
    def test_aggressor_write_forces_victim(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(CouplingFault(aggressor=2, victim=5, bit=0,
                                          trigger_value=1, forced_value=1))
        memory.write(5, 0)
        memory.write(2, 1)
        assert memory.read(5) & 1 == 1

    def test_non_trigger_write_has_no_effect(self):
        memory = MemoryArray(words=8)
        memory.inject_fault(CouplingFault(aggressor=2, victim=5, bit=0,
                                          trigger_value=1, forced_value=1))
        memory.write(5, 0)
        memory.write(2, 0)
        assert memory.read(5) == 0

    def test_same_cell_rejected(self):
        with pytest.raises(ValueError):
            CouplingFault(aggressor=3, victim=3)
