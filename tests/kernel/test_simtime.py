"""Unit tests for simulated time."""

import pytest

from repro.kernel.simtime import (
    FS,
    MS,
    NS,
    PS,
    SEC,
    US,
    SimTime,
    ZERO_TIME,
    cycles_to_time,
    time_to_cycles,
)


class TestSimTimeConstruction:
    def test_default_is_zero(self):
        assert SimTime().femtoseconds == 0

    def test_unit_conversion(self):
        assert SimTime(1, NS).femtoseconds == 1_000_000
        assert SimTime(2, US).femtoseconds == 2 * US
        assert SimTime(3, MS).femtoseconds == 3 * MS
        assert SimTime(1, SEC).femtoseconds == SEC

    def test_fractional_values_are_rounded(self):
        assert SimTime(1.5, PS).femtoseconds == 1500

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            SimTime(-1, NS)

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            SimTime(1, 12345)

    def test_immutability(self):
        time = SimTime(1, NS)
        with pytest.raises(AttributeError):
            time.femtoseconds = 5

    def test_coerce_passes_through_simtime(self):
        time = SimTime(1, NS)
        assert SimTime.coerce(time) is time

    def test_coerce_int_is_femtoseconds(self):
        assert SimTime.coerce(42).femtoseconds == 42


class TestSimTimeArithmetic:
    def test_addition(self):
        assert (SimTime(1, NS) + SimTime(500, PS)).femtoseconds == 1_500_000

    def test_addition_with_int(self):
        assert (SimTime(1, PS) + 500).femtoseconds == 1500

    def test_subtraction(self):
        assert (SimTime(2, NS) - SimTime(1, NS)) == SimTime(1, NS)

    def test_subtraction_below_zero_raises(self):
        with pytest.raises(ValueError):
            SimTime(1, NS) - SimTime(2, NS)

    def test_multiplication_by_int(self):
        assert (SimTime(10, NS) * 3) == SimTime(30, NS)
        assert (4 * SimTime(10, NS)) == SimTime(40, NS)

    def test_multiplication_by_float_rejected(self):
        with pytest.raises(TypeError):
            SimTime(10, NS) * 1.5

    def test_floor_division(self):
        assert SimTime(100, NS) // SimTime(30, NS) == 3

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            SimTime(1, NS) // SimTime(0)

    def test_comparison(self):
        assert SimTime(1, NS) < SimTime(2, NS)
        assert SimTime(1, NS) <= SimTime(1, NS)
        assert SimTime(3, NS) > SimTime(2999, PS)
        assert SimTime(1, NS) == SimTime(1000, PS)

    def test_bool(self):
        assert not ZERO_TIME
        assert SimTime(1, FS)

    def test_hashable(self):
        assert len({SimTime(1, NS), SimTime(1000, PS), SimTime(2, NS)}) == 2


class TestSimTimeDisplay:
    def test_str_picks_largest_exact_unit(self):
        assert str(SimTime(10, NS)) == "10 ns"
        assert str(SimTime(1, SEC)) == "1 s"
        assert str(SimTime(1500, FS)) == "1500 fs"

    def test_repr_mentions_femtoseconds(self):
        assert "fs" in repr(SimTime(5, NS))

    def test_to_unit(self):
        assert SimTime(2500, PS).to(NS) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            SimTime(1, NS).to(7)


class TestCycleConversions:
    def test_cycles_to_time(self):
        assert cycles_to_time(100, SimTime(10, NS)) == SimTime(1, US)

    def test_cycles_to_time_negative_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_time(-1, SimTime(10, NS))

    def test_time_to_cycles(self):
        assert time_to_cycles(SimTime(1, US), SimTime(10, NS)) == 100

    def test_time_to_cycles_truncates(self):
        assert time_to_cycles(SimTime(19, NS), SimTime(10, NS)) == 1

    def test_time_to_cycles_zero_period_rejected(self):
        with pytest.raises(ValueError):
            time_to_cycles(SimTime(1, US), SimTime(0))
