"""Kernel regression tests for scheduler edge cases.

Pins down the behaviours long campaigns rely on: exact ``run(until=...)``
boundary handling, cancelled-entry skipping and lazy-deletion compaction,
deadlock detection on an empty queue, deterministic FIFO dispatch of
simultaneous activations and the O(1) pending-activation counter.
"""

import pytest

from repro.kernel import NS, SimTime, Simulator, Timeout
from repro.kernel.exceptions import DeadlockError


class TestRunUntilBoundary:
    def test_until_landing_exactly_on_event_timestamp(self, sim):
        fired = []

        def proc():
            yield Timeout(SimTime(10, NS))
            fired.append(sim.now.femtoseconds)
            yield Timeout(SimTime(10, NS))
            fired.append(sim.now.femtoseconds)

        sim.spawn(proc())
        now = sim.run(until=SimTime(10, NS))
        # The activation at exactly t == until must run, and time must stop
        # at the boundary, not at the next pending activation.
        assert fired == [10 * NS]
        assert now == SimTime(10, NS)

    def test_until_before_first_event_just_advances_time(self, sim):
        fired = []

        def proc():
            yield Timeout(SimTime(10, NS))
            fired.append("late")

        sim.spawn(proc())
        sim.run(until=SimTime(4, NS))
        assert fired == []
        assert sim.now == SimTime(4, NS)
        # The remaining activation is still pending and runs on resume.
        sim.run()
        assert fired == ["late"]

    def test_resume_after_boundary_continues(self, sim):
        fired = []

        def proc():
            for _ in range(3):
                yield Timeout(SimTime(5, NS))
                fired.append(sim.now.femtoseconds)

        sim.spawn(proc())
        sim.run(until=SimTime(5, NS))
        assert fired == [5 * NS]
        sim.run(until=SimTime(15, NS))
        assert fired == [5 * NS, 10 * NS, 15 * NS]


class TestDeadlock:
    def test_empty_queue_with_until_raises(self, sim):
        with pytest.raises(DeadlockError):
            sim.run(until=SimTime(1, NS))

    def test_drained_queue_then_until_raises(self, sim):
        def proc():
            yield Timeout(SimTime(1, NS))

        sim.spawn(proc())
        sim.run()
        with pytest.raises(DeadlockError):
            sim.run(until=SimTime(10, NS))

    def test_run_without_until_on_empty_queue_is_a_no_op(self, sim):
        assert sim.run() == SimTime(0)


class TestCancellation:
    def test_cancelled_callback_is_not_dispatched(self, sim):
        fired = []
        entry = sim.schedule_callback(lambda: fired.append("cancelled"),
                                      SimTime(1, NS))
        sim.schedule_callback(lambda: fired.append("kept"), SimTime(1, NS))
        assert sim.cancel(entry) is True
        sim.run()
        assert fired == ["kept"]
        assert sim.dispatched_activations == 1

    def test_cancel_is_idempotent(self, sim):
        entry = sim.schedule_callback(lambda: None, SimTime(1, NS))
        assert sim.cancel(entry) is True
        assert sim.cancel(entry) is False
        assert sim.pending_activations == 0

    def test_cancel_releases_action_and_value(self, sim):
        marker = object()
        entry = sim.schedule_callback(lambda m=marker: m, SimTime(1, NS))
        sim.cancel(entry)
        assert entry.action is None and entry.value is None

    def test_compaction_drops_cancelled_entries(self, sim):
        # Enough entries to clear the compaction floor, more than half
        # cancelled: the heap itself must shrink (lazy deletion bounded).
        entries = [sim.schedule_callback(lambda: None, SimTime(i + 1, NS))
                   for i in range(100)]
        for entry in entries[: 60]:
            sim.cancel(entry)
        # Compaction fires as soon as cancelled entries outnumber live ones,
        # so the heap holds the 40 live entries plus at most the few
        # cancellations that arrived after the rebuild.
        assert 40 <= len(sim._queue) <= 49
        assert sim.pending_activations == 40
        sim.run()
        assert sim.dispatched_activations == 40

    def test_small_queues_are_not_compacted(self, sim):
        entries = [sim.schedule_callback(lambda: None, SimTime(i + 1, NS))
                   for i in range(10)]
        for entry in entries:
            sim.cancel(entry)
        # Below the compaction floor the entries stay (lazily deleted)...
        assert len(sim._queue) == 10
        assert sim.pending_activations == 0
        # ...and are skipped silently at dispatch time.
        sim.run()
        assert sim.dispatched_activations == 0

    def test_cancel_after_dispatch_is_a_no_op(self, sim):
        # Timeout-vs-event race: cancelling an entry that already ran must
        # not return True or corrupt the O(1) counters.
        entry = sim.schedule_callback(lambda: None, SimTime(1, NS))
        sim.run()
        assert sim.cancel(entry) is False
        assert sim.pending_activations == 0
        assert sim._cancelled_count == 0

    def test_mid_run_compaction_keeps_future_events(self, sim):
        # A dispatched action that cancels enough entries to trigger
        # compaction must not strand the running drain: events scheduled
        # afterwards still fire.
        fired = []
        victims = [sim.schedule_callback(lambda: None, SimTime(100 + i, NS))
                   for i in range(80)]

        def cancel_and_reschedule():
            for victim in victims:
                sim.cancel(victim)
            sim.schedule_callback(lambda: fired.append("late"), SimTime(5, NS))

        sim.schedule_callback(cancel_and_reschedule, SimTime(1, NS))
        sim.run()
        assert fired == ["late"]
        assert sim.pending_activations == 0
        assert sim._cancelled_count == 0

    def test_compaction_preserves_dispatch_order(self, sim):
        fired = []
        keep = []
        for i in range(100):
            delay = SimTime(i + 1, NS)
            if i % 3 == 0:
                keep.append(i)
                sim.schedule_callback(lambda i=i: fired.append(i), delay)
            else:
                sim.cancel(sim.schedule_callback(lambda: None, delay))
        sim.run()
        assert fired == keep


class TestDispatchCounting:
    def test_raising_callback_does_not_lose_the_batch_count(self, sim):
        # Both activations of the slot ran; the counter must say so even
        # though the second one raised out of run().
        sim.schedule_callback(lambda: None, SimTime(1, NS))

        def boom():
            raise RuntimeError("boom")

        sim.schedule_callback(boom, SimTime(1, NS))
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.dispatched_activations == 2

    def test_negative_delays_raise_valueerror_for_every_operand_type(self, sim):
        for delay in (-1, -1.5, ):
            with pytest.raises(ValueError):
                sim.schedule_callback(lambda: None, delay)


class TestFifoDeterminism:
    def test_simultaneous_activations_run_in_schedule_order(self, sim):
        order = []
        for index in range(50):
            sim.schedule_callback(lambda i=index: order.append(i), SimTime(1, NS))
        sim.run()
        assert order == list(range(50))

    def test_same_delta_spawns_resume_in_spawn_order(self, sim):
        order = []

        def proc(tag):
            order.append(tag)
            yield Timeout(SimTime(1, NS))
            order.append(f"{tag}'")

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag), name=tag)
        sim.run()
        assert order == ["a", "b", "c", "a'", "b'", "c'"]

    def test_delta_entries_scheduled_during_drain_run_same_timestamp(self, sim):
        order = []

        def chained():
            order.append("first")
            sim.schedule_callback(lambda: order.append("delta"))

        sim.schedule_callback(chained, SimTime(2, NS))
        sim.schedule_callback(lambda: order.append("second"), SimTime(2, NS))
        sim.run()
        # The delta callback lands at the same timestamp and must run in the
        # same evaluate drain, after the already queued activations.
        assert order == ["first", "second", "delta"]
        assert sim.now == SimTime(2, NS)


class TestPendingCounter:
    def test_counter_tracks_push_dispatch_and_cancel(self, sim):
        assert sim.pending_activations == 0
        entries = [sim.schedule_callback(lambda: None, SimTime(i + 1, NS))
                   for i in range(5)]
        assert sim.pending_activations == 5
        sim.cancel(entries[0])
        assert sim.pending_activations == 4
        sim.run(until=SimTime(3, NS))
        assert sim.pending_activations == 2
        sim.run()
        assert sim.pending_activations == 0

    def test_counter_matches_live_queue_scan(self, sim):
        entries = [sim.schedule_callback(lambda: None, SimTime(i + 1, NS))
                   for i in range(30)]
        for entry in entries[::2]:
            sim.cancel(entry)
        live = sum(1 for entry in sim._queue if not entry.cancelled)
        assert sim.pending_activations == live

    def test_counter_includes_process_activations(self, sim):
        def proc():
            yield Timeout(SimTime(1, NS))

        sim.spawn(proc())
        assert sim.pending_activations == 1
