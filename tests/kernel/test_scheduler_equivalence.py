"""Differential tests: the hybrid timing-wheel scheduler against a model.

The kernel's three-tier event store (deque fast lane + hashed timing wheel +
far-future overflow heap) must dispatch the exact same (time, FIFO-order)
sequence as the plain binary-heap scheduler it replaced.  These tests drive
both the kernel and a minimal reference heap with hypothesis-generated
scripts of schedules and cancellations — including ``until`` boundaries and
entries far enough out to cross the wheel horizon — and require identical
dispatch logs.
"""

import heapq

from hypothesis import given, settings, strategies as st

from repro.kernel import NS, SimTime, Simulator, Timeout
from repro.kernel.simulator import Simulator as KernelSimulator


class ReferenceScheduler:
    """The textbook model: one binary heap, (time, sequence) ordered."""

    def __init__(self):
        self._heap = []
        self._sequence = 0
        self.now_fs = 0
        self.log = []
        self.entries = []

    def schedule(self, time_fs, tag):
        entry = [time_fs, self._sequence, tag, False]
        self._sequence += 1
        heapq.heappush(self._heap, entry)
        self.entries.append(entry)
        return entry

    def cancel(self, entry):
        entry[3] = True

    def run(self, until_fs=None):
        while self._heap:
            time_fs = self._heap[0][0]
            if until_fs is not None and time_fs > until_fs:
                self.now_fs = until_fs
                return
            entry = heapq.heappop(self._heap)
            if entry[3]:
                continue
            self.now_fs = time_fs
            self.log.append((time_fs, entry[2]))
        if until_fs is not None:
            self.now_fs = max(self.now_fs, until_fs)


#: One scripted operation: (delay_fs, cancel_index_or_None).
#: Delays span the delta fast lane (0), wheel buckets (small) and the
#: far-future overflow (beyond Simulator._WHEEL_SPAN_FS).
_DELAYS = st.one_of(
    st.just(0),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1_000, max_value=1_000_000),
    st.integers(min_value=(1 << 44), max_value=(1 << 45)),
)


@st.composite
def schedules(draw):
    count = draw(st.integers(min_value=1, max_value=40))
    operations = []
    for index in range(count):
        delay = draw(_DELAYS)
        cancel = None
        if index and draw(st.booleans()) and draw(st.booleans()):
            cancel = draw(st.integers(min_value=0, max_value=index - 1))
        operations.append((delay, cancel))
    return operations


@settings(max_examples=120, deadline=None)
@given(operations=schedules())
def test_dispatch_sequence_matches_reference_heap(operations):
    sim = Simulator("diff")
    reference = ReferenceScheduler()
    kernel_log = []

    kernel_entries = []
    for index, (delay, cancel) in enumerate(operations):
        entry = sim.schedule_callback(
            (lambda i=index: kernel_log.append((sim.now_fs, i))), delay)
        kernel_entries.append(entry)
        reference.schedule(delay, index)
        if cancel is not None:
            was_pending = not reference.entries[cancel][3]
            assert sim.cancel(kernel_entries[cancel]) == was_pending
            reference.cancel(reference.entries[cancel])

    sim.run()
    reference.run()
    assert kernel_log == reference.log


@settings(max_examples=60, deadline=None)
@given(operations=schedules(),
       until_fs=st.integers(min_value=0, max_value=2_000_000))
def test_until_boundary_matches_reference_heap(operations, until_fs):
    sim = Simulator("diff_until")
    reference = ReferenceScheduler()
    kernel_log = []

    for index, (delay, cancel) in enumerate(operations):
        sim.schedule_callback(
            (lambda i=index: kernel_log.append((sim.now_fs, i))), delay)
        reference.schedule(delay, index)

    sim.run(until=SimTime(until_fs))
    reference.run(until_fs=until_fs)
    assert kernel_log == reference.log
    # The kernel stops exactly at the boundary while work is still pending,
    # or at the last dispatched slot once the store drained early.
    if kernel_log:
        assert kernel_log[-1][0] <= until_fs
        assert sim.now_fs in (until_fs, kernel_log[-1][0])
    else:
        # Nothing matured before the limit: time still advances to it.
        assert sim.now_fs == until_fs
    # Resuming without a limit drains the remainder in reference order.
    if sim.pending_activations:
        sim.run()
        reference.run()
        assert kernel_log == reference.log


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(
    st.one_of(st.just(0), st.integers(min_value=1, max_value=30)),
    min_size=1, max_size=25))
def test_timeout_processes_match_reference_order(delays):
    """Process resumptions (Timeout waits) follow the same global order."""
    sim = Simulator("diff_procs")
    reference = ReferenceScheduler()
    kernel_log = []

    def proc(index, delay):
        yield Timeout(SimTime(delay, NS))
        kernel_log.append((sim.now_fs, index))

    for index, delay in enumerate(delays):
        sim.spawn(proc(index, delay), name=f"p{index}")
        # The spawn activation itself dispatches at t=0 before the Timeout.
        reference.schedule(delay * NS, index)

    sim.run()
    reference.run()
    assert kernel_log == reference.log


def test_far_future_overflow_cascades_in_order():
    """Entries beyond the wheel horizon dispatch in exact (time, seq) order."""
    sim = KernelSimulator("cascade")
    span = KernelSimulator._WHEEL_SPAN_FS
    log = []
    # Interleave near, far and very-far entries, with same-time collisions
    # across the horizon boundary.
    times = [span + 5, 10, span + 5, 3 * span, 10, span + 5, 2 * span + 7]
    for index, time_fs in enumerate(times):
        sim.schedule_callback(lambda t=time_fs, i=index: log.append((t, i)),
                              time_fs)
    sim.run()
    expected = sorted(((t, i) for i, t in enumerate(times)),
                      key=lambda pair: (pair[0], pair[1]))
    assert log == expected
    assert sim.pending_activations == 0
