"""Unit tests for transaction recording and utilization queries."""

import pytest

from repro.kernel import NS, SimTime, TransactionRecord, TransactionTracer
from repro.kernel.simtime import US


def record(channel, start_ns, end_ns, **attrs):
    return TransactionRecord(
        channel=channel, kind="test", start=SimTime(start_ns, NS),
        end=SimTime(end_ns, NS), attributes=attrs,
    )


class TestTransactionRecord:
    def test_duration(self):
        assert record("c", 10, 25).duration == SimTime(15, NS)

    def test_overlap(self):
        r = record("c", 10, 20)
        assert r.overlaps(SimTime(15, NS), SimTime(30, NS))
        assert r.overlaps(SimTime(0, NS), SimTime(11, NS))
        assert not r.overlaps(SimTime(20, NS), SimTime(30, NS))
        assert not r.overlaps(SimTime(0, NS), SimTime(10, NS))


class TestTransactionTracer:
    def test_record_and_query_by_channel(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 10))
        tracer.record(record("ate", 5, 15))
        tracer.record(record("tam", 20, 30))
        assert len(tracer) == 3
        assert len(tracer.for_channel("tam")) == 2
        assert tracer.channels() == ["ate", "tam"]

    def test_disabled_tracer_records_nothing(self):
        tracer = TransactionTracer(enabled=False)
        tracer.record(record("tam", 0, 10))
        assert len(tracer) == 0

    def test_total_busy_time_merges_overlaps(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 10))
        tracer.record(record("tam", 5, 15))    # overlaps the first
        tracer.record(record("tam", 20, 30))
        assert tracer.total_busy_time("tam") == SimTime(25, NS)

    def test_utilization_of_window(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 50))
        utilization = tracer.utilization("tam", SimTime(0, NS), SimTime(100, NS))
        assert utilization == pytest.approx(0.5)

    def test_utilization_clips_to_window(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 200))
        utilization = tracer.utilization("tam", SimTime(50, NS), SimTime(150, NS))
        assert utilization == pytest.approx(1.0)

    def test_utilization_empty_window(self):
        tracer = TransactionTracer()
        assert tracer.utilization("tam", SimTime(0), SimTime(0)) == 0.0

    def test_utilization_profile_peak(self):
        tracer = TransactionTracer()
        # Window 0..1us busy 100%, window 1..2us idle, window 2..3us busy 30%.
        tracer.record(record("tam", 0, 1000))
        tracer.record(record("tam", 2000, 2300))
        profile = tracer.utilization_profile("tam", SimTime(1, US),
                                             start=SimTime(0),
                                             end=SimTime(3, US))
        assert len(profile) == 3
        assert profile[0] == pytest.approx(1.0)
        assert profile[1] == pytest.approx(0.0)
        assert profile[2] == pytest.approx(0.3)

    def test_utilization_profile_requires_positive_window(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 10))
        with pytest.raises(ValueError):
            tracer.utilization_profile("tam", SimTime(0))

    def test_clear(self):
        tracer = TransactionTracer()
        tracer.record(record("tam", 0, 10))
        tracer.clear()
        assert len(tracer) == 0
