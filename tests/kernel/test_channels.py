"""Unit tests for FIFOs, signals, clocks and synchronisation primitives."""

import pytest

from repro.kernel import (
    Clock,
    Fifo,
    Mutex,
    NS,
    Semaphore,
    Signal,
    SimTime,
    Simulator,
    Timeout,
)


class TestFifo:
    def test_put_get_order(self, sim):
        fifo = Fifo(sim, "f", capacity=4)
        received = []

        def producer():
            for value in range(6):
                yield from fifo.put(value)

        def consumer():
            for _ in range(6):
                value = yield from fifo.get()
                received.append(value)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == list(range(6))

    def test_blocking_put_when_full(self, sim):
        fifo = Fifo(sim, "f", capacity=1)
        times = []

        def producer():
            yield from fifo.put("a")
            yield from fifo.put("b")
            times.append(sim.now)

        def consumer():
            yield Timeout(SimTime(100, NS))
            yield from fifo.get()

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert times[0] >= SimTime(100, NS)

    def test_blocking_get_when_empty(self, sim):
        fifo = Fifo(sim, "f")
        times = []

        def consumer():
            value = yield from fifo.get()
            times.append((sim.now, value))

        def producer():
            yield Timeout(SimTime(42, NS))
            yield from fifo.put("late")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert times == [(SimTime(42, NS), "late")]

    def test_try_put_try_get(self, sim):
        fifo = Fifo(sim, "f", capacity=1)
        assert fifo.try_put(1)
        assert not fifo.try_put(2)
        ok, value = fifo.try_get()
        assert ok and value == 1
        ok, value = fifo.try_get()
        assert not ok and value is None

    def test_len_and_free(self, sim):
        fifo = Fifo(sim, "f", capacity=3)
        fifo.try_put("x")
        assert len(fifo) == 1
        assert fifo.free == 2

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Fifo(sim, "f", capacity=0)


class TestSignal:
    def test_write_visible_after_delta(self, sim):
        signal = Signal(sim, "s", initial=0)
        observed = []

        def writer():
            signal.write(5)
            observed.append(("same_delta", signal.read()))
            yield Timeout(1)
            observed.append(("after", signal.read()))

        sim.spawn(writer())
        sim.run()
        assert observed == [("same_delta", 0), ("after", 5)]

    def test_value_changed_event(self, sim):
        signal = Signal(sim, "s", initial=0)
        changes = []

        def watcher():
            while True:
                value = yield signal.value_changed
                changes.append(value)
                if value == 2:
                    break

        def driver():
            yield Timeout(SimTime(10, NS))
            signal.write(1)
            yield Timeout(SimTime(10, NS))
            signal.write(2)

        sim.spawn(watcher())
        sim.spawn(driver())
        sim.run()
        assert changes == [1, 2]

    def test_writing_same_value_does_not_notify(self, sim):
        signal = Signal(sim, "s", initial=7)
        notified = []
        signal.value_changed.add_callback(notified.append)

        def driver():
            signal.write(7)
            yield Timeout(1)

        sim.spawn(driver())
        sim.run()
        assert notified == []


class TestClock:
    def test_cycles_duration(self, clock):
        assert clock.cycles(100) == SimTime(1000, NS)

    def test_frequency(self, clock):
        assert clock.frequency_hz == pytest.approx(100e6)

    def test_from_frequency(self, sim):
        clock = Clock.from_frequency(sim, "clk200", 200e6)
        assert clock.period == SimTime(5, NS)

    def test_cycles_between(self, clock):
        assert clock.cycles_between(SimTime(100, NS), SimTime(1100, NS)) == 100

    def test_posedge_wakes_processes(self, sim, clock):
        times = []

        def waiter():
            for _ in range(3):
                yield clock.posedge()
                times.append(sim.now)

        sim.spawn(waiter())
        sim.run(until=SimTime(100, NS))
        assert times == [SimTime(10, NS), SimTime(20, NS), SimTime(30, NS)]

    def test_invalid_period_rejected(self, sim):
        with pytest.raises(ValueError):
            Clock(sim, "bad", SimTime(0))
        with pytest.raises(ValueError):
            Clock.from_frequency(sim, "bad", 0.0)


class TestMutex:
    def test_mutual_exclusion_and_fifo_order(self, sim):
        mutex = Mutex(sim, "m")
        order = []

        def worker(tag, hold_ns):
            yield from mutex.acquire()
            order.append(f"{tag}-in")
            yield Timeout(SimTime(hold_ns, NS))
            order.append(f"{tag}-out")
            mutex.release()

        sim.spawn(worker("a", 30))
        sim.spawn(worker("b", 10))
        sim.spawn(worker("c", 10))
        sim.run()
        assert order == ["a-in", "a-out", "b-in", "b-out", "c-in", "c-out"]
        assert mutex.acquisitions == 3
        assert mutex.contentions == 2
        assert not mutex.locked

    def test_try_acquire(self, sim):
        mutex = Mutex(sim, "m")
        assert mutex.try_acquire()
        assert not mutex.try_acquire()
        mutex.release()
        assert mutex.try_acquire()

    def test_release_unheld_raises(self, sim):
        mutex = Mutex(sim, "m")
        with pytest.raises(RuntimeError):
            mutex.release()

    def test_no_sneak_in_between_release_and_handover(self, sim):
        """A late acquirer must not overtake an already queued waiter."""
        mutex = Mutex(sim, "m")
        order = []

        def holder():
            yield from mutex.acquire()
            yield Timeout(SimTime(10, NS))
            mutex.release()

        def queued():
            yield Timeout(SimTime(1, NS))
            yield from mutex.acquire()
            order.append("queued")
            yield Timeout(SimTime(10, NS))
            mutex.release()

        def late():
            yield Timeout(SimTime(10, NS))
            yield from mutex.acquire()
            order.append("late")
            mutex.release()

        sim.spawn(holder())
        sim.spawn(queued())
        sim.spawn(late())
        sim.run()
        assert order == ["queued", "late"]


class TestSemaphore:
    def test_counting_behaviour(self, sim):
        semaphore = Semaphore(sim, initial=2)
        active = []
        peak = []

        def worker(tag):
            yield from semaphore.acquire()
            active.append(tag)
            peak.append(len(active))
            yield Timeout(SimTime(10, NS))
            active.remove(tag)
            semaphore.release()

        for tag in range(5):
            sim.spawn(worker(tag))
        sim.run()
        assert max(peak) <= 2
        assert semaphore.available == 2

    def test_negative_initial_rejected(self, sim):
        with pytest.raises(ValueError):
            Semaphore(sim, initial=-1)
