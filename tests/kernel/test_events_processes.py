"""Unit tests for events, processes and the scheduler."""

import pytest

from repro.kernel import (
    AllOf,
    AnyOf,
    Event,
    NS,
    SimTime,
    Simulator,
    Timeout,
)
from repro.kernel.exceptions import DeadlockError, SchedulingError


class TestTimeoutAndRun:
    def test_timeout_advances_time(self, sim):
        log = []

        def proc():
            yield Timeout(SimTime(10, NS))
            log.append(sim.now)
            yield Timeout(SimTime(5, NS))
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [SimTime(10, NS), SimTime(15, NS)]

    def test_run_until_limits_time(self, sim):
        def proc():
            for _ in range(10):
                yield Timeout(SimTime(10, NS))

        sim.spawn(proc())
        end = sim.run(until=SimTime(35, NS))
        assert end == SimTime(35, NS)
        assert sim.pending_activations > 0

    def test_run_until_with_empty_queue_raises(self, sim):
        with pytest.raises(DeadlockError):
            sim.run(until=SimTime(1, NS))

    def test_run_with_empty_queue_returns_zero(self, sim):
        assert sim.run() == SimTime(0)

    def test_deterministic_ordering_of_simultaneous_processes(self, sim):
        order = []

        def proc(tag):
            yield Timeout(SimTime(10, NS))
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_process_return_value_stored(self, sim):
        def proc():
            yield Timeout(1)
            return 42

        process = sim.spawn(proc())
        sim.run()
        assert process.result == 42
        assert not process.alive

    def test_process_exception_is_reported(self, sim):
        def broken():
            yield Timeout(1)
            raise ValueError("model bug")

        sim.spawn(broken())
        with pytest.raises(RuntimeError, match="model bug"):
            sim.run()

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(lambda: None)

    def test_dispatched_activations_counted(self, sim):
        def proc():
            for _ in range(5):
                yield Timeout(1)

        sim.spawn(proc())
        sim.run()
        assert sim.dispatched_activations >= 5


class TestEvents:
    def test_notify_wakes_waiter(self, sim):
        event = sim.event("go")
        log = []

        def waiter():
            value = yield event
            log.append((sim.now, value))

        def notifier():
            yield Timeout(SimTime(20, NS))
            event.notify(0, value="data")

        sim.spawn(waiter())
        sim.spawn(notifier())
        sim.run()
        assert log == [(SimTime(20, NS), "data")]

    def test_delayed_notification(self, sim):
        event = sim.event()
        times = []

        def waiter():
            yield event
            times.append(sim.now)

        sim.spawn(waiter())
        event.notify(SimTime(50, NS))
        sim.run()
        assert times == [SimTime(50, NS)]

    def test_notification_only_wakes_current_waiters(self, sim):
        event = sim.event()
        log = []

        def late_waiter():
            yield Timeout(SimTime(10, NS))
            yield event
            log.append("late")

        sim.spawn(late_waiter())
        event.notify(0)  # fires before the waiter subscribes
        sim.run(until=SimTime(100, NS))
        assert log == []

    def test_unattached_event_notify_raises(self):
        event = Event()
        with pytest.raises(SchedulingError):
            event.notify()

    def test_event_callback_invoked(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(seen.append)
        event.notify(0, value=7)
        sim.run()
        assert seen == [7]

    def test_waiter_count(self, sim):
        event = sim.event()

        def waiter():
            yield event

        sim.spawn(waiter())
        sim.run(until=SimTime(1, NS))
        assert event.waiter_count == 1


class TestCompositeWaits:
    def test_anyof_wakes_on_first(self, sim):
        first = sim.event("first")
        second = sim.event("second")
        log = []

        def waiter():
            yield AnyOf([first, second])
            log.append(sim.now)

        sim.spawn(waiter())
        second.notify(SimTime(5, NS))
        first.notify(SimTime(9, NS))
        sim.run()
        assert log == [SimTime(5, NS)]

    def test_allof_waits_for_all(self, sim):
        first = sim.event("first")
        second = sim.event("second")
        log = []

        def waiter():
            yield AllOf([first, second])
            log.append(sim.now)

        sim.spawn(waiter())
        first.notify(SimTime(5, NS))
        second.notify(SimTime(30, NS))
        sim.run()
        assert log == [SimTime(30, NS)]

    def test_empty_composite_rejected(self):
        with pytest.raises(SchedulingError):
            AnyOf([])
        with pytest.raises(SchedulingError):
            AllOf([])

    def test_join_on_process(self, sim):
        def worker():
            yield Timeout(SimTime(25, NS))
            return "done"

        results = []

        def parent():
            child = sim.spawn(worker(), name="child")
            value = yield child
            results.append((sim.now, value))

        sim.spawn(parent())
        sim.run()
        assert results == [(SimTime(25, NS), "done")]

    def test_join_on_finished_process_returns_immediately(self, sim):
        def worker():
            yield Timeout(1)
            return 5

        def parent():
            child = sim.spawn(worker(), name="child")
            yield Timeout(SimTime(10, NS))
            value = yield child
            return value

        process = sim.spawn(parent())
        sim.run()
        assert process.result == 5


class TestProcessControl:
    def test_kill_stops_process(self, sim):
        log = []

        def runner():
            while True:
                yield Timeout(SimTime(10, NS))
                log.append(sim.now)

        process = sim.spawn(runner())

        def killer():
            yield Timeout(SimTime(25, NS))
            process.kill()

        sim.spawn(killer())
        sim.run(until=SimTime(200, NS))
        assert len(log) == 2
        assert not process.alive

    def test_yield_none_waits_a_delta(self, sim):
        order = []

        def first():
            order.append("first-before")
            yield None
            order.append("first-after")

        def second():
            order.append("second")
            yield Timeout(1)

        sim.spawn(first())
        sim.spawn(second())
        sim.run()
        assert order.index("second") < order.index("first-after")

    def test_yield_unsupported_object_raises(self, sim):
        def broken():
            yield "not a condition"

        sim.spawn(broken())
        with pytest.raises(Exception):
            sim.run()
