"""Differential tests of the vectorized interval queries in the tracer.

``total_busy_time``, ``busy_fs_in_window`` and ``utilization_profile`` now
run over merged-interval arrays with ``searchsorted`` probes; these tests
pin them to a scalar python reference over randomized interval soups, and
cover the cache-invalidation edge (append after query).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import SimTime
from repro.kernel.tracing import TransactionTracer, _merged_busy_fs


def _reference_busy_in_window(intervals, window_start, window_end):
    clipped = [(max(start, window_start), min(end, window_end))
               for start, end in intervals
               if start < window_end and end > window_start]
    return _merged_busy_fs(clipped)


def _random_tracer(rng, count):
    tracer = TransactionTracer()
    intervals = []
    for _ in range(count):
        start = rng.randrange(0, 10_000)
        end = start + rng.randrange(1, 2_000)
        tracer.record_fs("tam", "burst", start, end)
        intervals.append((start, end))
        if rng.random() < 0.3:  # a second channel the queries must ignore
            tracer.record_fs("other", "burst", start + 1, end + 7)
    return tracer, intervals


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=2**32), st.integers(0, 60))
def test_busy_queries_match_scalar_reference(seed, count):
    rng = random.Random(seed)
    tracer, intervals = _random_tracer(rng, count)
    assert tracer.total_busy_time("tam").femtoseconds == \
        _merged_busy_fs(intervals)
    for _ in range(8):
        window_start = rng.randrange(0, 14_000)
        window_end = window_start + rng.randrange(0, 6_000)
        assert tracer.busy_fs_in_window("tam", window_start, window_end) == \
            _reference_busy_in_window(intervals, window_start, window_end)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2**32), st.integers(1, 60),
       st.integers(1, 3_000))
def test_profile_matches_per_window_busy_queries(seed, count, window_fs):
    rng = random.Random(seed)
    tracer, intervals = _random_tracer(rng, count)
    profile = tracer.utilization_profile("tam", SimTime(window_fs))
    lo, hi = tracer.bounds_fs("tam")
    expected = []
    position = lo
    while position < hi:
        stop = min(position + window_fs, hi)
        expected.append(
            _reference_busy_in_window(intervals, position, stop)
            / (stop - position))
        position = stop
    assert profile == pytest.approx(expected)


class TestMergedCache:
    def test_append_after_query_invalidates_the_cache(self):
        tracer = TransactionTracer()
        tracer.record_fs("tam", "burst", 0, 100)
        assert tracer.total_busy_time("tam").femtoseconds == 100
        tracer.record_fs("tam", "burst", 500, 600)
        assert tracer.total_busy_time("tam").femtoseconds == 200
        assert tracer.busy_fs_in_window("tam", 450, 650) == 100

    def test_clear_drops_the_cache(self):
        tracer = TransactionTracer()
        tracer.record_fs("tam", "burst", 0, 100)
        assert tracer.total_busy_time("tam").femtoseconds == 100
        tracer.clear()
        assert tracer.total_busy_time("tam").femtoseconds == 0

    def test_queries_are_per_channel(self):
        tracer = TransactionTracer()
        tracer.record_fs("a", "burst", 0, 100)
        tracer.record_fs("b", "burst", 0, 50)
        assert tracer.total_busy_time("a").femtoseconds == 100
        assert tracer.total_busy_time("b").femtoseconds == 50

    def test_empty_channel(self):
        tracer = TransactionTracer()
        assert tracer.total_busy_time("tam").femtoseconds == 0
        assert tracer.busy_fs_in_window("tam", 0, 1_000) == 0
        assert tracer.utilization_profile("tam", SimTime(10)) == []

    def test_window_end_before_start_rejected(self):
        tracer = TransactionTracer()
        with pytest.raises(ValueError):
            tracer.busy_fs_in_window("tam", 10, 5)
