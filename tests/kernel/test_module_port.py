"""Unit tests for modules, ports, interfaces and binding."""

import pytest

from repro.kernel import Interface, Module, Port, SimTime, Simulator, Timeout
from repro.kernel.exceptions import BindingError


class DemoInterface(Interface):
    def ping(self):
        raise NotImplementedError


class DemoChannel:
    """Implements DemoInterface structurally (duck typing)."""

    def ping(self):
        return "pong"


class Incomplete:
    pass


class TestInterface:
    def test_required_methods(self):
        assert DemoInterface.required_methods() == ["ping"]

    def test_is_implemented_by_structural_match(self):
        assert DemoInterface.is_implemented_by(DemoChannel())

    def test_is_implemented_by_rejects_incomplete(self):
        assert not DemoInterface.is_implemented_by(Incomplete())

    def test_subclass_instances_always_accepted(self):
        class Direct(DemoInterface):
            def ping(self):
                return 1

        assert DemoInterface.is_implemented_by(Direct())


class TestPort:
    def test_bind_and_call(self):
        port = Port(DemoInterface, name="p")
        port.bind(DemoChannel())
        assert port.is_bound
        assert port().ping() == "pong"
        assert port.ping() == "pong"  # delegated attribute access

    def test_unbound_access_raises(self):
        port = Port(DemoInterface, name="p")
        with pytest.raises(BindingError):
            port.channel

    def test_double_bind_rejected(self):
        port = Port(DemoInterface, name="p")
        port.bind(DemoChannel())
        with pytest.raises(BindingError):
            port.bind(DemoChannel())

    def test_bind_wrong_type_rejected(self):
        port = Port(DemoInterface, name="p")
        with pytest.raises(BindingError):
            port.bind(Incomplete())

    def test_port_requires_interface_class(self):
        with pytest.raises(TypeError):
            Port(DemoChannel, name="p")


class TestModule:
    def test_hierarchy_and_names(self, sim):
        top = Module(sim, "top")
        child = Module(top, "child")
        grandchild = Module(child, "leaf")
        assert top.name == "top"
        assert child.name == "top.child"
        assert grandchild.name == "top.child.leaf"
        assert child in top.children
        assert grandchild in child.children

    def test_invalid_parent_rejected(self):
        with pytest.raises(TypeError):
            Module("not a parent", "m")

    def test_add_port_and_check_bindings(self, sim):
        module = Module(sim, "m")
        port = module.add_port(DemoInterface, "demo_port")
        with pytest.raises(BindingError):
            module.check_bindings()
        port.bind(DemoChannel())
        module.check_bindings()

    def test_check_bindings_recurses_into_children(self, sim):
        top = Module(sim, "top")
        child = Module(top, "child")
        child.add_port(DemoInterface, "p")
        with pytest.raises(BindingError):
            top.check_bindings()

    def test_add_thread_runs_generator(self, sim):
        module = Module(sim, "m")
        log = []

        def behaviour(argument):
            yield Timeout(SimTime(5))
            log.append(argument)

        process = module.add_thread(behaviour, "value")
        sim.run()
        assert log == ["value"]
        assert process in module.threads
        assert process.name.startswith("m.")

    def test_wait_helper_returns_timeout(self, sim):
        module = Module(sim, "m")
        timeout = module.wait(SimTime(5))
        assert timeout.duration == SimTime(5)

    def test_child_inherits_simulator(self, sim):
        top = Module(sim, "top")
        child = Module(top, "child")
        assert child.sim is sim
