"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Fifo, NS, SimTime, Simulator, TransactionRecord, TransactionTracer
from repro.memory import MATS, MATS_PLUS, MARCH_C_MINUS, MemoryArray, run_march_test
from repro.rtl import LFSR, MISR, ScanConfiguration
from repro.soc.jpeg import (
    HuffmanCodec,
    LUMINANCE_TABLE,
    dct_2d,
    dequantize_block,
    from_zigzag,
    idct_2d,
    quality_scaled_table,
    quantize_block,
    run_length_decode,
    run_length_encode,
    to_zigzag,
)

MARCHES = [MATS, MATS_PLUS, MARCH_C_MINUS]


class TestSimTimeProperties:
    @given(a=st.integers(0, 10**15), b=st.integers(0, 10**15),
           c=st.integers(0, 10**15))
    def test_addition_is_associative_and_commutative(self, a, b, c):
        ta, tb, tc = SimTime(a), SimTime(b), SimTime(c)
        assert (ta + tb) + tc == ta + (tb + tc)
        assert ta + tb == tb + ta

    @given(a=st.integers(0, 10**15), b=st.integers(0, 10**15))
    def test_ordering_consistent_with_femtoseconds(self, a, b):
        assert (SimTime(a) < SimTime(b)) == (a < b)
        assert (SimTime(a) == SimTime(b)) == (a == b)

    @given(cycles=st.integers(0, 10**6), period_ns=st.integers(1, 100))
    def test_cycle_roundtrip(self, cycles, period_ns):
        from repro.kernel import cycles_to_time, time_to_cycles

        period = SimTime(period_ns, NS)
        assert time_to_cycles(cycles_to_time(cycles, period), period) == cycles


class TestLfsrMisrProperties:
    @given(seed=st.integers(1, (1 << 16) - 1), steps=st.integers(1, 200))
    def test_lfsr_deterministic_and_never_zero(self, seed, steps):
        first = LFSR(16, seed=seed)
        second = LFSR(16, seed=seed)
        for _ in range(steps):
            assert first.step() == second.step()
            assert first.state != 0

    @given(words=st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=64))
    def test_misr_signature_deterministic(self, words):
        assert MISR(32).compact_sequence(words) == MISR(32).compact_sequence(words)

    @given(words=st.lists(st.integers(0, (1 << 32) - 1), min_size=2, max_size=64),
           position=st.integers(0, 63), flip=st.integers(1, (1 << 32) - 1))
    def test_misr_detects_single_word_corruption(self, words, position, flip):
        position %= len(words)
        corrupted = list(words)
        corrupted[position] ^= flip
        assert MISR(32).compact_sequence(words) != \
            MISR(32).compact_sequence(corrupted)


class TestScanConfigurationProperties:
    @given(chains=st.integers(1, 64), cells_per_chain=st.integers(1, 500),
           extra=st.integers(0, 63))
    def test_describe_preserves_cells_and_balance(self, chains, cells_per_chain,
                                                  extra):
        total = chains * cells_per_chain + (extra % chains if chains > 1 else 0)
        config = ScanConfiguration.describe("core", chains, total)
        assert config.total_cells == total
        lengths = [chain.length for chain in config.chains]
        assert max(lengths) - min(lengths) <= 1
        assert config.max_chain_length == max(lengths)
        names = [cell.name for chain in config.chains for cell in chain]
        assert len(set(names)) == total


class TestMemoryProperties:
    @given(operations=st.lists(
        st.tuples(st.integers(0, 255), st.integers(0, 255)),
        min_size=1, max_size=200))
    def test_last_write_wins(self, operations):
        memory = MemoryArray(words=256, word_bits=8)
        last = {}
        for address, value in operations:
            memory.write(address, value)
            last[address] = value
        for address, value in last.items():
            assert memory.read(address) == value

    @given(words=st.integers(8, 2048),
           march_index=st.integers(0, len(MARCHES) - 1),
           background=st.integers(0, 255))
    @settings(max_examples=30, deadline=None)
    def test_fault_free_memory_passes_any_march(self, words, march_index,
                                                background):
        march = MARCHES[march_index]
        memory = MemoryArray(words=words, word_bits=8)
        result = run_march_test(memory, march, background=background)
        assert result.passed
        assert result.operations == march.operations_per_cell * words
        assert result.reads + result.writes == result.operations

    @given(words=st.integers(64, 1024), stride=st.integers(1, 17))
    @settings(max_examples=20, deadline=None)
    def test_stride_never_creates_false_failures(self, words, stride):
        memory = MemoryArray(words=words, word_bits=8)
        result = run_march_test(memory, MATS_PLUS, stride=stride)
        assert result.passed


class TestJpegProperties:
    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_zigzag_rle_roundtrip(self, data):
        values = data.draw(st.lists(st.integers(-255, 255), min_size=64,
                                    max_size=64))
        block = from_zigzag(values)
        assert to_zigzag(block) == values
        assert run_length_decode(run_length_encode(values)) == values

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_huffman_roundtrip(self, data):
        symbols = data.draw(st.lists(st.integers(-10, 10), min_size=1,
                                     max_size=200))
        codec = HuffmanCodec.from_symbols(symbols)
        assert codec.decode(codec.encode(symbols)) == symbols
        # Prefix-freedom of the generated code table.
        codes = sorted(codec.code_table.values(), key=len)
        for i, short in enumerate(codes):
            for long in codes[i + 1:]:
                assert not long.startswith(short) or long == short

    @given(seed=st.integers(0, 2**31 - 1), quality=st.integers(1, 100))
    @settings(max_examples=25, deadline=None)
    def test_dct_quantization_error_bounded(self, seed, quality):
        rng = np.random.default_rng(seed)
        block = rng.uniform(-128, 127, size=(8, 8))
        table = quality_scaled_table(LUMINANCE_TABLE, quality)
        quantized = quantize_block(dct_2d(block), table)
        restored = idct_2d(dequantize_block(quantized, table))
        # Quantization error per coefficient is at most table/2; after the
        # inverse transform the worst-case spatial error is bounded by the
        # sum of coefficient errors scaled by the orthonormal basis.
        assert np.max(np.abs(restored - block)) <= np.sum(table / 2)


class TestKernelProperties:
    @given(items=st.lists(st.integers(), min_size=1, max_size=50),
           capacity=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_fifo_preserves_order(self, items, capacity):
        sim = Simulator()
        fifo = Fifo(sim, "f", capacity=capacity)
        received = []

        def producer():
            for item in items:
                yield from fifo.put(item)

        def consumer():
            for _ in items:
                value = yield from fifo.get()
                received.append(value)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == items

    @given(intervals=st.lists(
        st.tuples(st.integers(0, 1000), st.integers(1, 100)),
        min_size=1, max_size=40))
    def test_utilization_is_a_fraction(self, intervals):
        tracer = TransactionTracer()
        for start, duration in intervals:
            tracer.record(TransactionRecord(
                channel="tam", kind="t", start=SimTime(start, NS),
                end=SimTime(start + duration, NS),
            ))
        window_start = SimTime(0)
        window_end = SimTime(1200, NS)
        utilization = tracer.utilization("tam", window_start, window_end)
        assert 0.0 <= utilization <= 1.0
        busy = tracer.total_busy_time("tam")
        assert busy <= SimTime(1100, NS)
