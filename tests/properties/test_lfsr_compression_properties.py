"""Property-based tests for LFSR sequence periodicity and the
decompressor/compactor volume round-trips (hypothesis-driven)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import Simulator
from repro.rtl.lfsr import LFSR, MISR, STANDARD_POLYNOMIALS
from repro.dft.compression import Compactor, Decompressor


def _state_period(width: int, seed: int) -> int:
    """Number of steps until the LFSR state first recurs."""
    lfsr = LFSR(width, seed=seed)
    initial = lfsr.state
    steps = 0
    while True:
        lfsr.step()
        steps += 1
        if lfsr.state == initial:
            return steps
        if steps > (1 << width):  # pragma: no cover - defensive bound
            pytest.fail("LFSR state never recurred")


class TestLfsrPeriodicity:
    @given(seed=st.integers(1, (1 << 8) - 1))
    @settings(max_examples=20, deadline=None)
    def test_width8_is_maximal_length_from_any_seed(self, seed):
        # The standard width-8 polynomial is primitive: every non-zero seed
        # lies on the single cycle of length 2^8 - 1.
        assert _state_period(8, seed) == (1 << 8) - 1

    def test_width16_is_maximal_length(self):
        assert _state_period(16, 1) == (1 << 16) - 1

    @given(width=st.sampled_from(sorted(STANDARD_POLYNOMIALS)),
           seed=st.integers(1, (1 << 8) - 1),
           steps=st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_sequences_are_deterministic_and_never_reach_zero(self, width, seed,
                                                              steps):
        first = LFSR(width, seed=seed)
        second = LFSR(width, seed=seed)
        for _ in range(steps):
            assert first.step() == second.step()
            assert first.state == second.state
            assert first.state != 0

    @given(seed=st.integers(1, (1 << 16) - 1), bits=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_word_generation_matches_bit_stream(self, seed, bits):
        by_word = LFSR(16, seed=seed).next_word(bits)
        stream = LFSR(16, seed=seed)
        expected = 0
        for position in range(bits):
            expected |= stream.step() << position
        assert by_word == expected


class TestLeapAhead:
    @given(width=st.sampled_from(sorted(STANDARD_POLYNOMIALS)),
           seed=st.integers(1, (1 << 16) - 1),
           steps=st.integers(0, 400))
    @settings(max_examples=80, deadline=None)
    def test_leap_equals_k_single_steps(self, width, seed, steps):
        # The LFSR keeps only the low `width` bits; a seed that is zero
        # modulo 2**width (e.g. 256 for an 8-bit register) has no state to
        # shift and is rejected by the constructor — fold the drawn seed
        # into the non-zero residues instead of discarding the example.
        seed = seed % ((1 << width) - 1) + 1
        leapt = LFSR(width, seed=seed)
        stepped = LFSR(width, seed=seed)
        leapt.leap(steps)
        for _ in range(steps):
            stepped.step()
        assert leapt.state == stepped.state

    @given(seed=st.integers(1, (1 << 13) - 1),
           steps=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_leap_equals_k_single_steps_for_custom_taps(self, seed, steps):
        taps = (13, 4, 3, 1)
        leapt = LFSR(13, seed=seed, taps=taps)
        stepped = LFSR(13, seed=seed, taps=taps)
        leapt.leap(steps)
        for _ in range(steps):
            stepped.step()
        assert leapt.state == stepped.state

    @given(seed=st.integers(1, (1 << 16) - 1),
           split=st.integers(0, 120), total=st.integers(0, 120))
    @settings(max_examples=40, deadline=None)
    def test_leap_composes(self, seed, split, total):
        # leap(a); leap(b) == leap(a + b)
        composed = LFSR(16, seed=seed)
        composed.leap(split)
        composed.leap(total)
        direct = LFSR(16, seed=seed)
        direct.leap(split + total)
        assert composed.state == direct.state

    @given(seed=st.integers(0, (1 << 32) - 1), steps=st.integers(0, 150))
    @settings(max_examples=40, deadline=None)
    def test_misr_leap_equals_zero_compactions(self, seed, steps):
        leapt = MISR(32, seed=seed)
        stepped = MISR(32, seed=seed)
        leapt.leap(steps)
        for _ in range(steps):
            stepped.compact(0)
        assert leapt.signature == stepped.signature

    def test_leap_rejects_negative_steps(self):
        with pytest.raises(ValueError):
            LFSR(16, seed=1).leap(-1)


class TestCompressionRoundTrip:
    @given(expanded_bits=st.integers(1, 10**6),
           ratio=st.floats(1.0, 1000.0, allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_expand_of_compressed_volume_covers_the_original(self, expanded_bits,
                                                             ratio):
        decompressor = Decompressor(Simulator(), "dec", compression_ratio=ratio)
        decompressor.activate()
        compressed = decompressor.compressed_bits(expanded_bits)
        assert 1 <= compressed <= expanded_bits
        # Shipping the compressed volume through the decompressor recovers at
        # least the original stimulus volume (never silently drops bits).
        assert decompressor.expand(compressed) >= expanded_bits

    @given(expanded_bits=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_bypass_is_the_identity(self, expanded_bits):
        decompressor = Decompressor(Simulator(), "dec", compression_ratio=50.0)
        assert decompressor.bypass
        assert decompressor.compressed_bits(expanded_bits) == expanded_bits
        assert decompressor.expand(expanded_bits) == expanded_bits

    @given(response_bits=st.integers(1, 10**6),
           ratio=st.floats(1.0, 1000.0, allow_nan=False, allow_infinity=False))
    @settings(max_examples=60, deadline=None)
    def test_compaction_never_exceeds_input_volume(self, response_bits, ratio):
        compactor = Compactor(Simulator(), "cmp", compaction_ratio=ratio)
        compactor.activate()
        outgoing = compactor.compact(response_bits)
        assert 1 <= outgoing <= response_bits

    @given(tokens=st.lists(st.integers(0, (1 << 32) - 1), min_size=1,
                           max_size=64),
           width=st.sampled_from((8, 16, 32)))
    @settings(max_examples=40, deadline=None)
    def test_compactor_signature_roundtrip_is_deterministic(self, tokens, width):
        first = Compactor(Simulator(), "a", compaction_ratio=10.0,
                          signature_width=width)
        second = Compactor(Simulator(), "b", compaction_ratio=10.0,
                           signature_width=width)
        for compactor in (first, second):
            compactor.activate()
            for token in tokens:
                compactor.compact(1, token=token)
        assert first.signature == second.signature
        # ...and equals folding the same tokens directly through a MISR.
        assert first.signature == MISR(width, seed=0).compact_sequence(tokens)

    @given(seeds=st.integers(1, (1 << 16) - 1),
           patterns=st.integers(1, 32),
           stimulus_bits=st.integers(1, 4096),
           ratio=st.integers(1, 100))
    @settings(max_examples=40, deadline=None)
    def test_volume_accounting_accumulates_exactly(self, seeds, patterns,
                                                   stimulus_bits, ratio):
        decompressor = Decompressor(Simulator(), "dec",
                                    compression_ratio=float(ratio))
        decompressor.activate()
        total_in = 0
        total_out = 0
        for index in range(patterns):
            compressed = decompressor.compressed_bits(stimulus_bits, index)
            total_in += compressed
            total_out += decompressor.expand(compressed, pattern_index=index)
        assert decompressor.compressed_bits_in == total_in
        assert decompressor.expanded_bits_out == total_out
        assert decompressor.patterns_expanded == patterns
