"""Fast-path guard: the repo's markdown docs contain no dead relative links.

Mirrors the CI ``docs`` job (``python tools/check_links.py README.md
docs/*.md``) so a dead link fails locally before it fails the build.
"""

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_links  # noqa: E402


def doc_files():
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def test_doc_set_is_complete():
    names = {path.name for path in doc_files()}
    assert "README.md" in names
    assert {"architecture.md", "adaptive.md", "exploration.md",
            "performance.md"} <= names


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_markdown_links_resolve(path):
    problems = check_links.check_file(path)
    assert not problems, "\n".join(
        f"{p}: dead link '{target}' ({reason})" for p, target, reason in problems
    )


def test_inline_code_spans_are_not_link_checked(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n\nwrite `[text](not-a-real-file.md)` to cross-link\n"
    )
    assert check_links.check_file(page) == []


def test_anchors_preserve_underscores(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# API\n\n## survivor_specs\n\n[resume](#survivor_specs)\n"
    )
    assert check_links.check_file(page) == []


def test_checker_flags_dead_links(tmp_path):
    page = tmp_path / "page.md"
    page.write_text(
        "# Title\n\n[ok](page.md) [gone](missing.md) "
        "[anchor](#title) [bad-anchor](#nope)\n"
    )
    problems = check_links.check_file(page)
    assert {(target, reason) for _, target, reason in problems} == {
        ("missing.md", "no such file"),
        ("#nope", "no such heading"),
    }
