"""Tests of the campaign engine: scenario generation determinism,
serial-vs-parallel result equality and artifact schema stability."""

import csv
import json
from dataclasses import replace

import pytest

from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    NONDETERMINISTIC_COLUMNS,
    RESULT_COLUMNS,
    SCHEMA_VERSION,
    _SCENARIO_CACHE,
    campaign_from_axes,
    cached_scenario,
    clear_scenario_cache,
    execute_job,
)
from repro.explore.scenarios import (
    COMPRESSED_ONLY,
    JPEG,
    Scenario,
    ScenarioGrid,
    ScenarioSpec,
    build_scenario,
    derive_seed,
    generate_core_descriptions,
)


def small_spec(name="spec", **overrides) -> ScenarioSpec:
    parameters = {"core_count": 2, "patterns_per_core": 64, "seed": 7}
    parameters.update(overrides)
    return ScenarioSpec(name=name, **parameters)


class TestScenarioSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kind="rtl")

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", core_count=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", compression_ratio=0.5)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", schedules=())

    def test_spec_is_hashable_and_flattens(self):
        spec = small_spec()
        assert hash(spec)
        row = spec.as_dict()
        assert row["name"] == "spec"
        assert "schedules" not in row

    def test_rejects_invalid_port_and_memory_parameters(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", wrapper_parallel_width_bits=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", wrapper_serial_width_bits=0)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", ate_vector_memory_words=-1)


class TestScenarioGrammarExtensions:
    """The port-width / ATE-memory axes move simulation and estimator alike."""

    @staticmethod
    def run_sequential(**overrides):
        outcome = execute_job(CampaignJob(
            spec=small_spec(**overrides), schedule="sequential"))
        return outcome.test_length_cycles, outcome.estimated_cycles

    def test_narrow_parallel_port_stretches_external_test(self):
        base_sim, base_est = self.run_sequential()
        narrow_sim, narrow_est = self.run_sequential(
            wrapper_parallel_width_bits=2)
        assert narrow_sim > base_sim
        assert narrow_est > base_est

    def test_finite_ate_vector_memory_adds_reload_stalls(self):
        base_sim, base_est = self.run_sequential()
        # Small enough that a 64-pattern scan test needs several reloads
        # (seed-7 cores shift ~150 stimulus bits ≈ 9 link words per pattern).
        finite_sim, finite_est = self.run_sequential(
            ate_vector_memory_words=64)
        assert finite_sim > base_sim
        assert finite_est > base_est

    def test_reload_stalls_do_not_count_as_active_power(self):
        def peaks(**overrides):
            outcome = execute_job(CampaignJob(
                spec=small_spec(**overrides), schedule="sequential"))
            return outcome.peak_power, outcome.avg_power

        base_peak, base_avg = peaks()
        finite_peak, finite_avg = peaks(ate_vector_memory_words=64)
        # The core is idle during a workstation reload: the stall stretches
        # the test but must not raise the peak, and the longer idle time
        # lowers the average.
        assert finite_peak == base_peak
        assert finite_avg < base_avg

    def test_wide_serial_port_shortens_configuration(self):
        base_sim, base_est = self.run_sequential()
        wide_sim, wide_est = self.run_sequential(wrapper_serial_width_bits=8)
        assert wide_sim < base_sim
        assert wide_est < base_est

    def test_defaults_are_unconstrained(self):
        spec = small_spec()
        assert spec.wrapper_parallel_width_bits == 0
        assert spec.wrapper_serial_width_bits == 1
        assert spec.ate_vector_memory_words == 0

    def test_serial_width_scales_only_the_ring_shift(self):
        from repro.explore.scenarios import scenario_platform

        base = scenario_platform(small_spec()).configuration_cycles
        wide = scenario_platform(
            small_spec(wrapper_serial_width_bits=64)).configuration_cycles
        # The capture/update protocol overhead (4 cycles) is not divisible
        # by the serial width: a 64-bit port shifts the ring in one cycle
        # but still pays the overhead, exactly like ConfigurationScanBus.
        assert base == 64
        assert wide == 5


class TestScenarioGeneration:
    def test_descriptions_are_deterministic_under_a_fixed_seed(self):
        first = generate_core_descriptions(small_spec(core_count=4))
        second = generate_core_descriptions(small_spec(core_count=4))
        assert list(first) == list(second)
        for name in first:
            a, b = first[name], second[name]
            assert a.chain_count == b.chain_count
            assert a.scan_cells == b.scan_cells
            assert a.has_logic_bist == b.has_logic_bist
            assert a.internal_chain_count == b.internal_chain_count
            assert a.test_power == b.test_power

    def test_adding_a_core_keeps_existing_cores_stable(self):
        # Per-core RNG streams: sweeping core_count must not reshuffle the
        # cores shared between the two scenarios.
        small = generate_core_descriptions(small_spec(core_count=2))
        large = generate_core_descriptions(small_spec(core_count=5))
        for name in small:
            assert small[name].scan_cells == large[name].scan_cells
            assert small[name].has_logic_bist == large[name].has_logic_bist

    def test_different_seeds_differ(self):
        specs = [small_spec(core_count=6, seed=seed) for seed in (1, 2)]
        fingerprints = [
            tuple((d.chain_count, d.scan_cells, d.has_logic_bist)
                  for d in generate_core_descriptions(spec).values())
            for spec in specs
        ]
        assert fingerprints[0] != fingerprints[1]

    def test_scenario_schedules_validate_and_cover_all_tasks(self):
        scenario = build_scenario(small_spec(core_count=3, memory_words=1024))
        for schedule in scenario.schedules.values():
            schedule.validate(scenario.tasks)
        sequential = scenario.schedules["sequential"]
        assert sorted(sequential.task_names) == sorted(scenario.tasks)
        greedy = scenario.schedules["greedy"]
        assert sorted(greedy.task_names) == sorted(scenario.tasks)
        assert greedy.phase_count <= sequential.phase_count

    def test_jpeg_scenario_carries_paper_and_generated_schedules(self):
        scenario = build_scenario(ScenarioSpec(name="jpeg", kind=JPEG))
        for name in ("schedule_1", "schedule_4", COMPRESSED_ONLY,
                     "generated_greedy", "generated_sequential"):
            assert name in scenario.schedules
        ratio = scenario.tasks["t3_processor_compressed"].compression_ratio
        assert ratio == 50.0

    def test_config_overrides_reach_the_soc(self):
        from repro.kernel import NS, SimTime
        from repro.soc import SocConfiguration

        spec = ScenarioSpec(
            name="slow_clock", kind=JPEG,
            config_overrides=(("clock_period", SimTime(20, NS)),
                              ("burst_patterns", 32)),
        )
        soc = build_scenario(spec).build_soc()
        assert soc.config.clock_period == SimTime(20, NS)
        assert soc.config.burst_patterns == 32
        # Untouched fields keep their defaults; spec fields win over overrides.
        assert soc.config.tam_width_bits == SocConfiguration().tam_width_bits

    def test_sweep_config_is_reproduced_in_full(self):
        from repro.explore.sweeps import compression_ratio_sweep
        from repro.soc import SocConfiguration

        # A caller-supplied configuration must reach the simulated SoC, as it
        # did before the sweep/campaign refactor: shrinking the EBI burst
        # buffer observably changes the simulated test length.
        small_bursts = compression_ratio_sweep(
            ratios=(50,), config=SocConfiguration(burst_patterns=8))
        default = compression_ratio_sweep(ratios=(50,))
        assert small_bursts[0].metrics.test_length_cycles != \
            default[0].metrics.test_length_cycles

    def test_selected_schedules_reports_missing_names(self):
        scenario = build_scenario(small_spec(schedules=("nope",)))
        with pytest.raises(KeyError, match="nope"):
            scenario.selected_schedules()


class TestScenarioGrid:
    def test_cross_product_size_and_axis_assignment(self):
        grid = ScenarioGrid({"core_count": [1, 2, 3],
                             "tam_width_bits": [16, 32]},
                            base=small_spec())
        specs = grid.specs()
        assert len(grid) == 6 and len(specs) == 6
        assert [spec.core_count for spec in specs] == [1, 1, 2, 2, 3, 3]
        assert [spec.tam_width_bits for spec in specs] == [16, 32] * 3
        assert len({spec.name for spec in specs}) == 6

    def test_grid_generation_is_deterministic(self):
        make = lambda: ScenarioGrid({"core_count": [1, 2]},
                                    base=small_spec()).specs()
        assert make() == make()

    def test_per_point_seeds_are_distinct_and_stable(self):
        grid = ScenarioGrid({"core_count": [1, 2, 3, 4]}, base=small_spec())
        seeds = [spec.seed for spec in grid.specs()]
        assert len(set(seeds)) == len(seeds)
        assert seeds[0] == derive_seed(7, "core_count=1")

    def test_explicit_seed_axis_is_honoured(self):
        grid = ScenarioGrid({"seed": [11, 22]}, base=small_spec())
        assert [spec.seed for spec in grid.specs()] == [11, 22]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario axes"):
            ScenarioGrid({"frequency": [1]})


class TestCampaignExecution:
    @pytest.fixture(scope="class")
    def campaign(self):
        return campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [16, 32]},
            base=ScenarioSpec(name="base", patterns_per_core=64,
                              memory_words=1024, seed=3),
        )

    @pytest.fixture(scope="class")
    def serial_run(self, campaign):
        return campaign.run(workers=1)

    def test_one_row_per_job(self, campaign, serial_run):
        assert len(serial_run.outcomes) == len(campaign) == 8
        assert serial_run.scenario_count == 4

    def test_rows_follow_the_schema(self, serial_run):
        for row in serial_run.rows():
            assert tuple(row) == RESULT_COLUMNS

    def test_metrics_are_plausible(self, serial_run):
        for outcome in serial_run.outcomes:
            assert outcome.test_length_cycles > 0
            assert outcome.simulated_activations > 0
            assert 0.0 <= outcome.avg_tam_utilization <= 1.0
            assert outcome.peak_power > 0
            assert outcome.estimated_cycles > 0

    def test_rerun_is_bitwise_identical(self, campaign, serial_run):
        again = campaign.run(workers=1)
        assert again.deterministic_rows() == serial_run.deterministic_rows()

    def test_parallel_equals_serial(self, campaign, serial_run):
        parallel = campaign.run(workers=2)
        assert parallel.deterministic_rows() == serial_run.deterministic_rows()

    def test_single_job_execution_matches_campaign_row(self, campaign,
                                                       serial_run):
        job = campaign.jobs()[0]
        outcome = execute_job(job)
        assert outcome.deterministic_row() == serial_run.outcomes[0].deterministic_row()

    def test_duplicate_scenario_names_rejected(self):
        spec = small_spec()
        with pytest.raises(ValueError, match="duplicate"):
            Campaign([spec, spec])

    def test_schedule_override_applies_to_every_scenario(self):
        campaign = Campaign([small_spec()], schedules=("sequential",))
        jobs = campaign.jobs()
        assert [job.schedule for job in jobs] == ["sequential"]

    def test_invalid_worker_count_rejected(self, campaign):
        with pytest.raises(ValueError):
            campaign.run(workers=0)


class TestScenarioCache:
    def test_cache_hit_returns_the_memoized_scenario(self):
        clear_scenario_cache()
        spec = small_spec("cache_hit")
        cold = cached_scenario(spec)
        assert cached_scenario(spec) is cold
        clear_scenario_cache()
        assert cached_scenario(spec) is not cold

    def test_cache_hit_results_equal_cold_build_results(self):
        # The memo must be transparent: a job executed against a cached
        # (already simulated-with) scenario produces the exact row a fresh
        # expansion produces.
        spec = small_spec("cache_equiv", memory_words=512)
        jobs = [CampaignJob(spec=spec, schedule=name)
                for name in ("sequential", "greedy")]
        clear_scenario_cache()
        cold_rows = []
        for job in jobs:
            clear_scenario_cache()  # every job expands the spec from scratch
            cold_rows.append(execute_job(job).deterministic_row())
        clear_scenario_cache()
        warm_rows = [execute_job(job).deterministic_row() for job in jobs]
        assert _SCENARIO_CACHE  # the warm pass actually used the memo
        assert warm_rows == cold_rows
        # Re-running against the now-populated cache stays identical, i.e.
        # executing a schedule does not mutate the memoized scenario.
        again = [execute_job(job).deterministic_row() for job in jobs]
        assert again == cold_rows

    def test_cache_is_bounded(self):
        from repro.explore import campaign as campaign_module

        clear_scenario_cache()
        limit = campaign_module._SCENARIO_CACHE_MAX
        for index in range(limit + 5):
            cached_scenario(small_spec(f"bound_{index}", core_count=1,
                                       patterns_per_core=1))
        assert len(_SCENARIO_CACHE) <= limit

    def test_serial_and_parallel_stay_identical_with_warm_caches(self):
        # Serial/parallel identity must hold regardless of cache state on
        # either side of the fork (covers batched pool submission too).
        campaign = campaign_from_axes(
            {"core_count": [1, 2]},
            base=ScenarioSpec(name="base", patterns_per_core=32, seed=11),
        )
        clear_scenario_cache()
        serial = campaign.run(workers=1)  # leaves the parent cache warm
        parallel = campaign.run(workers=2, batch_size=3)
        assert parallel.deterministic_rows() == serial.deterministic_rows()


class TestArtifacts:
    @pytest.fixture(scope="class")
    def run(self):
        return Campaign([small_spec("a"), small_spec("b", seed=8)]).run()

    def test_csv_schema_and_roundtrip(self, run, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifacts") / "campaign.csv"
        run.write_csv(path)
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            assert tuple(reader.fieldnames) == RESULT_COLUMNS
            rows = list(reader)
        assert len(rows) == len(run.outcomes)
        assert int(rows[0]["test_length_cycles"]) == \
            run.outcomes[0].test_length_cycles

    def test_json_document_schema(self, run, tmp_path_factory):
        path = tmp_path_factory.mktemp("artifacts") / "campaign.json"
        run.write_json(path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["columns"] == list(RESULT_COLUMNS)
        assert document["row_count"] == len(run.outcomes)
        assert [row["scenario"] for row in document["rows"]] == \
            [outcome.spec.name for outcome in run.outcomes]

    def test_deterministic_rows_drop_timing_columns(self, run):
        for row in run.deterministic_rows():
            for column in NONDETERMINISTIC_COLUMNS:
                assert column not in row


@pytest.mark.slow
class TestCampaignAtScale:
    def test_fifty_scenario_campaign_on_a_worker_pool(self):
        # The acceptance bar of the campaign subsystem: >= 50 generated
        # scenarios through a worker pool, one structured row per job, and
        # metrics bitwise-equal to a serial re-run with the same seeds.
        campaign = campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [8, 16, 32, 64],
             "compression_ratio": [10.0, 100.0], "power_budget": [3.0, 8.0]},
            base=ScenarioSpec(name="base", patterns_per_core=48, seed=5,
                              schedules=("greedy",)),
        )
        specs = campaign.specs
        assert len(specs) == 32  # 2 * 4 * 2 * 2 grid points...
        # ...doubled along the seed axis to pass the 50-scenario bar.
        extra = [replace(spec, name=f"{spec.name}_s2", seed=spec.seed + 1)
                 for spec in specs]
        campaign = Campaign(specs + extra)
        assert len(campaign.specs) >= 50

        parallel = campaign.run(workers=2)
        assert len(parallel.outcomes) == len(campaign)
        assert parallel.scenario_count == len(campaign.specs)
        workers_seen = {outcome.worker for outcome in parallel.outcomes}
        assert len(workers_seen) >= 1  # pool ran (>=2 on multi-core hosts)

        serial = campaign.run(workers=1)
        assert serial.deterministic_rows() == parallel.deterministic_rows()


class TestRunTiming:
    def test_cpu_seconds_measures_process_time(self, monkeypatch):
        """Regression: cpu_seconds was measured with time.perf_counter(),
        folding scheduler queueing / co-tenant wall time into the paper's
        "CPU [s]" column.  It must come from time.process_time()."""
        import repro.explore.campaign as campaign_module

        ticks = [100.0, 102.5]
        monkeypatch.setattr(campaign_module.time, "process_time",
                            lambda: ticks.pop(0) if ticks else 102.5)
        # perf_counter poisoned: using it for cpu_seconds becomes obvious.
        monkeypatch.setattr(campaign_module.time, "perf_counter",
                            lambda: 1e9)
        job = CampaignJob(spec=small_spec(core_count=1, patterns_per_core=8),
                          schedule="sequential")
        outcome = execute_job(job)
        assert outcome.cpu_seconds == pytest.approx(2.5)

    def test_rows_per_second_counts_rows(self):
        from repro.explore.campaign import CampaignRun

        run = campaign_from_axes(
            {"core_count": [1, 2]},
            base=ScenarioSpec(name="base", patterns_per_core=8, seed=3,
                              schedules=("sequential", "greedy")),
        ).run(workers=1)
        assert len(run.outcomes) == 4  # 2 scenarios x 2 schedules
        assert run.rows_per_second == pytest.approx(
            len(run.outcomes) / run.wall_seconds)
        assert CampaignRun(outcomes=[], wall_seconds=0.0).rows_per_second \
            == 0.0

    def test_scenarios_per_second_is_a_deprecated_alias(self):
        from repro.explore.campaign import CampaignRun

        run = CampaignRun(outcomes=[], workers=1, wall_seconds=1.0)
        with pytest.deprecated_call(match="use rows_per_second"):
            assert run.scenarios_per_second == run.rows_per_second
