"""Tests for the exploration command line interface."""

import json

import pytest

from repro.explore.campaign import SCHEMA_VERSION
from repro.explore.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table1_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--schedules", "schedule_4",
                                  "--validate"])
        assert args.schedules == ["schedule_4"]
        assert args.validate

    def test_all_subcommands_have_handlers(self):
        parser = build_parser()
        for command in ("table1", "speedup", "sweep-compression",
                        "sweep-tam-width", "schedules", "campaign"):
            args = parser.parse_args([command])
            assert callable(args.handler)
        args = parser.parse_args(["merge", "artifact.json"])
        assert callable(args.handler)

    def test_campaign_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "--core-counts", "1", "2",
                                  "--tam-widths", "16", "--workers", "2",
                                  "--schedules", "greedy"])
        assert args.core_counts == [1, 2]
        assert args.tam_widths == [16]
        assert args.workers == 2
        assert args.schedules == ["greedy"]
        assert args.shard is None and not args.timing

    def test_shard_argument_parses_index_and_count(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "--shard", "1/4"])
        assert args.shard == (1, 4)

    @pytest.mark.parametrize("value", ["4/4", "-1/4", "2", "a/b", "1/0"])
    def test_invalid_shard_arguments_rejected(self, value):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--shard", value])

    def test_adaptive_resume_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["adaptive", "--max-rounds", "2",
                                  "--resume-from", "ckpt.json"])
        assert args.max_rounds == 2
        assert args.resume_from == "ckpt.json"
        with pytest.raises(SystemExit):
            parser.parse_args(["adaptive", "--max-rounds", "0"])


class TestExecution:
    def test_table1_single_schedule(self, capsys):
        exit_code = main(["table1", "--schedules", "schedule_4", "--validate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "schedule_4" in output
        assert "Peak TAM" in output
        assert "estimated length" in output

    def test_speedup_command(self, capsys):
        exit_code = main(["speedup", "--gate-cycles", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "speedup" in output

    def test_compression_sweep_command(self, capsys):
        exit_code = main(["sweep-compression", "--ratios", "1", "50"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "compression_ratio" in output

    def test_campaign_command_writes_artifacts(self, capsys, tmp_path):
        csv_path = tmp_path / "campaign.csv"
        json_path = tmp_path / "campaign.json"
        exit_code = main(["campaign", "--core-counts", "1", "2",
                          "--tam-widths", "32", "--patterns", "64",
                          "--csv", str(csv_path), "--json", str(json_path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario_0000" in output
        assert "result rows" in output
        assert csv_path.exists() and json_path.exists()
        # The CLI writes deterministic artifacts unless --timing is given.
        document = json.loads(json_path.read_text())
        assert "cpu_seconds" not in document["columns"]
        assert "worker" not in document["columns"]

    def test_campaign_timing_flag_keeps_timing_columns(self, capsys, tmp_path):
        json_path = tmp_path / "campaign.json"
        exit_code = main(["campaign", "--core-counts", "1", "--tam-widths",
                          "32", "--patterns", "32", "--timing",
                          "--json", str(json_path)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(json_path.read_text())
        assert "cpu_seconds" in document["columns"]
        assert "wall_seconds" in document


GRID = ["--core-counts", "1", "2", "--tam-widths", "32",
        "--patterns", "32", "--seed", "5"]


class TestShardedExecution:
    def shard_paths(self, tmp_path, capsys, count=2):
        paths = []
        for index in range(count):
            path = tmp_path / f"shard{index}.json"
            assert main(["campaign", *GRID, "--shard", f"{index}/{count}",
                         "--json", str(path)]) == 0
            paths.append(path)
        capsys.readouterr()
        return paths

    def test_shard_runs_write_provenance_artifacts(self, capsys, tmp_path):
        path = self.shard_paths(tmp_path, capsys, count=2)[0]
        document = json.loads(path.read_text())
        assert document["shard"]["index"] == 0
        assert document["shard"]["count"] == 2
        assert document["row_count"] < document["shard"]["total_jobs"]

    def test_shard_merge_equals_monolithic_bitwise(self, capsys, tmp_path):
        paths = self.shard_paths(tmp_path, capsys, count=2)
        merged_path = tmp_path / "merged.json"
        merged_csv = tmp_path / "merged.csv"
        assert main(["merge", *map(str, paths), "--json", str(merged_path),
                     "--csv", str(merged_csv)]) == 0
        output = capsys.readouterr().out
        assert "merged 2 shard artifact(s)" in output

        mono_path = tmp_path / "mono.json"
        mono_csv = tmp_path / "mono.csv"
        assert main(["campaign", *GRID, "--json", str(mono_path),
                     "--csv", str(mono_csv)]) == 0
        capsys.readouterr()
        assert merged_path.read_bytes() == mono_path.read_bytes()
        assert merged_csv.read_bytes() == mono_csv.read_bytes()


class TestAdaptiveResumeCli:
    def test_checkpoint_then_resume_matches_uninterrupted(self, capsys,
                                                          tmp_path):
        ckpt = tmp_path / "ckpt.json"
        assert main(["adaptive", *GRID, "--max-rounds", "1",
                     "--json", str(ckpt)]) == 0
        assert "CHECKPOINT" in capsys.readouterr().out

        final = tmp_path / "final.json"
        assert main(["adaptive", "--resume-from", str(ckpt),
                     "--json", str(final)]) == 0
        assert "resumed" in capsys.readouterr().out

        full = tmp_path / "full.json"
        assert main(["adaptive", *GRID, "--json", str(full)]) == 0
        capsys.readouterr()
        assert final.read_bytes() == full.read_bytes()


class TestExitCodes:
    """Failures exit non-zero with an error line — never 0, never a
    traceback (the regression the distrib PR fixed)."""

    def test_success_returns_zero(self, capsys):
        assert main(["speedup", "--gate-cycles", "20"]) == 0
        capsys.readouterr()

    def test_failed_job_returns_nonzero(self, capsys):
        exit_code = main(["campaign", "--core-counts", "1", "--patterns",
                          "16", "--schedules", "nope"])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err
        assert "nope" in captured.err
        # Regression: a bare KeyError used to render as `error: 'nope'` —
        # just the repr of the missing key, with no hint what went wrong.
        assert "error: unknown schedule/key:" in captured.err
        assert captured.err.strip() != "error: 'nope'"

    def test_merge_of_missing_file_returns_nonzero(self, capsys, tmp_path):
        exit_code = main(["merge", str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err

    def test_merge_of_invalid_json_returns_nonzero(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        exit_code = main(["merge", str(path)])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err

    @pytest.mark.parametrize("payload", [
        "[]",                                 # valid JSON, not an object
        '{"schema_version": %d, "distrib_schema_version": 1, '
        '"shard": "not-a-block"}' % SCHEMA_VERSION,  # provenance block wrong
    ])
    def test_merge_of_malformed_artifact_returns_nonzero(self, capsys,
                                                         tmp_path, payload):
        path = tmp_path / "malformed.json"
        path.write_text(payload)
        exit_code = main(["merge", str(path)])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err

    def test_resume_from_malformed_artifact_returns_nonzero(self, capsys,
                                                            tmp_path):
        path = tmp_path / "malformed.json"
        path.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION, "adaptive_schema_version": 2,
            "objectives": ["peak_power"], "eta": 2.0, "min_budget": 0.5,
            "specs": [{"kind": "generated"}],  # spec misses required fields
        }))
        exit_code = main(["adaptive", "--resume-from", str(path)])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err

    def test_merge_of_mismatched_schema_returns_nonzero(self, capsys,
                                                        tmp_path):
        path = tmp_path / "stale.json"
        path.write_text(json.dumps({
            "schema_version": SCHEMA_VERSION - 1,
            "distrib_schema_version": 1,
            "shard": {"index": 0, "count": 1, "start": 0, "stop": 1,
                      "total_jobs": 1, "fingerprint": "0" * 64},
            "columns": [], "row_count": 1, "rows": [{}],
        }))
        exit_code = main(["merge", str(path)])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "schema_version" in captured.err

    def test_resume_from_missing_artifact_returns_nonzero(self, capsys,
                                                          tmp_path):
        exit_code = main(["adaptive", "--resume-from",
                          str(tmp_path / "missing.json")])
        captured = capsys.readouterr()
        assert exit_code != 0
        assert "error:" in captured.err


class TestStrategyCli:
    def test_strategies_listing(self, capsys):
        assert main(["strategies"]) == 0
        output = capsys.readouterr().out
        for name in ("sequential", "greedy", "binpack", "anneal"):
            assert name in output
        assert "--strategy" in output

    def test_campaign_with_strategy_flags(self, capsys, tmp_path):
        json_path = tmp_path / "strategies.json"
        exit_code = main(["campaign", "--core-counts", "1", "--tam-widths",
                          "32", "--patterns", "16", "--schedules", "greedy",
                          "--strategy", "binpack:fit=worst",
                          "--strategy", "anneal:seed=3,steps=64",
                          "--json", str(json_path)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(json_path.read_text())
        assert document["schema_version"] == SCHEMA_VERSION
        assert "strategy" in document["columns"]
        assert "strategy_params" in document["columns"]
        schedules = [row["schedule"] for row in document["rows"]]
        # --strategy appends to --schedules; parameters are canonicalized.
        assert schedules == ["greedy", "binpack:fit=worst",
                             "anneal:steps=64,seed=3"]
        assert [row["strategy"] for row in document["rows"]] == \
            ["greedy", "binpack", "anneal"]

    def test_strategy_only_run_via_empty_schedules(self, capsys, tmp_path):
        json_path = tmp_path / "only.json"
        exit_code = main(["campaign", "--core-counts", "1", "--tam-widths",
                          "32", "--patterns", "16", "--schedules",
                          "--strategy", "binpack", "--json", str(json_path)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(json_path.read_text())
        assert [row["schedule"] for row in document["rows"]] == ["binpack"]

    def test_no_schedules_at_all_fails_cleanly(self, capsys):
        exit_code = main(["campaign", "--core-counts", "1", "--schedules"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "no schedules" in captured.err

    @pytest.mark.parametrize("value", ["nope", "greedy:bogus=1",
                                       "anneal:steps=x"])
    def test_invalid_strategy_flag_rejected_at_parse_time(self, value):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["campaign", "--strategy", value])

    def test_adaptive_accepts_strategies(self, capsys):
        exit_code = main(["adaptive", "--core-counts", "1", "--tam-widths",
                          "32", "--patterns", "16", "--schedules", "greedy",
                          "--strategy", "binpack"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "binpack" in output


class TestPartialMergeCli:
    def shard_paths(self, tmp_path, capsys, count=3):
        paths = []
        for index in range(count):
            path = tmp_path / f"shard{index}.json"
            assert main(["campaign", *GRID, "--shard", f"{index}/{count}",
                         "--json", str(path)]) == 0
            paths.append(path)
        capsys.readouterr()
        return paths

    def test_partial_merge_reports_gaps_and_writes_replan(self, capsys,
                                                          tmp_path):
        paths = self.shard_paths(tmp_path, capsys)
        gaps_path = tmp_path / "gaps.json"
        merged_path = tmp_path / "partial.json"
        exit_code = main(["merge", "--partial", str(paths[0]), str(paths[2]),
                          "--gaps", str(gaps_path),
                          "--json", str(merged_path)])
        captured = capsys.readouterr()
        # rc 3 (EXIT_REPLANNABLE_GAPS): the merge succeeded but spans are
        # missing — after the artifact and re-plan worklist were written.
        assert exit_code == 3
        assert "missing shard 1/3" in captured.err
        assert "PARTIAL" in captured.out
        replan = json.loads(gaps_path.read_text())
        assert [span["index"] for span in replan["missing"]] == [1]
        merged = json.loads(merged_path.read_text())
        assert merged["partial"]["present"] == [0, 2]

    def test_replannable_gaps_exit_distinct_from_validation_error(
            self, capsys, tmp_path):
        # Regression for the latent issue: automation previously had to
        # parse stderr to tell "merged but gapped, re-plan and rerun" (now
        # rc 3) from "the shard set is invalid" (rc 2) — and rc 3 must not
        # leak onto complete merges (rc 0).
        paths = self.shard_paths(tmp_path, capsys)
        assert main(["merge", "--partial", *map(str, paths)]) == 0
        assert main(["merge", "--partial", str(paths[0]),
                     str(paths[2])]) == 3
        assert main(["merge", "--partial", str(paths[0]),
                     str(tmp_path / "nonexistent.json")]) == 2
        tampered = tmp_path / "tampered.json"
        document = json.loads(paths[0].read_text())
        document["shard"]["fingerprint"] = "0" * 64
        tampered.write_text(json.dumps(document))
        assert main(["merge", "--partial", str(tampered),
                     str(paths[2])]) == 2
        capsys.readouterr()

    def test_partial_store_merge_also_exits_replannable(self, capsys,
                                                        tmp_path):
        paths = self.shard_paths(tmp_path, capsys)
        exit_code = main(["merge", "--partial", str(paths[1]),
                          "--store", str(tmp_path / "gapped.store")])
        captured = capsys.readouterr()
        assert exit_code == 3
        assert "missing shard 0/3" in captured.err

    def test_partial_merge_of_complete_set_is_bitwise_identical(self, capsys,
                                                                tmp_path):
        paths = self.shard_paths(tmp_path, capsys)
        partial_path = tmp_path / "partial.json"
        full_path = tmp_path / "full.json"
        assert main(["merge", "--partial", *map(str, paths),
                     "--json", str(partial_path)]) == 0
        assert main(["merge", *map(str, paths),
                     "--json", str(full_path)]) == 0
        capsys.readouterr()
        assert partial_path.read_bytes() == full_path.read_bytes()

    def test_merge_without_partial_still_rejects_gaps(self, capsys, tmp_path):
        paths = self.shard_paths(tmp_path, capsys)
        exit_code = main(["merge", str(paths[0]), str(paths[2])])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "missing shard index" in captured.err


class TestCoordinatorCli:
    def test_connect_argument_rejects_malformed_addresses(self):
        parser = build_parser()
        for bad in ("localhost", "1.2.3.4:", ":80", "host:notaport",
                    "host:0"):
            with pytest.raises(SystemExit):
                parser.parse_args(["work", "--connect", bad])

    def test_observability_arguments(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(["serve", "--metrics-port", "0",
                                  "--log-file", str(tmp_path / "s.log")])
        assert args.metrics_port == 0
        assert args.log_file == str(tmp_path / "s.log")
        assert parser.parse_args(["serve"]).metrics_port is None
        args = parser.parse_args(["work", "--connect", "127.0.0.1:4000",
                                  "--log-file", str(tmp_path / "w.log")])
        assert args.log_file == str(tmp_path / "w.log")

    def test_status_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["status", "--connect", "127.0.0.1:4000",
                                  "--timeout", "2.5", "--json"])
        assert args.connect == ("127.0.0.1", 4000)
        assert args.timeout == 2.5
        assert args.json
        assert callable(args.handler)
        with pytest.raises(SystemExit):
            parser.parse_args(["status"])  # --connect is required

    def test_submit_rejects_incompatible_modes_before_connecting(self,
                                                                 capsys):
        # Validation fires before any socket is opened, so a dead address
        # is fine here; each incompatible flag is an operational error (2).
        base = ["submit", "--connect", "127.0.0.1:1"]
        for extra in (["--race"], ["--surrogate"], ["--timing"],
                      ["--workers", "2"], ["--shutdown-after"]):
            exit_code = main(base + extra)
            captured = capsys.readouterr()
            assert exit_code == 2, extra
            assert captured.err.startswith("error:")

    def test_worker_exits_cleanly_when_coordinator_is_unreachable(
            self, capsys):
        # Port 1 refuses connections: the worker loop treats that as the
        # coordinator going away and reports its (empty) stats.
        exit_code = main(["work", "--connect", "127.0.0.1:1", "--id", "w0"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "unreachable" in captured.err
        assert "worker w0: 0 span(s) completed" in captured.out

    def test_status_of_unreachable_coordinator_is_an_operational_error(
            self, capsys):
        # Unlike `work` (a refused connection means "drained, go home"),
        # `status` exists to answer a question — failing to connect is a
        # failure: rc 2, one error line naming the address, no traceback.
        exit_code = main(["status", "--connect", "127.0.0.1:1"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert captured.out == ""
        lines = captured.err.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "127.0.0.1:1" in lines[0]
        assert "unreachable" in lines[0]
        assert "Traceback" not in captured.err

    def test_status_round_trip_against_a_live_coordinator(self, capsys):
        import threading

        from repro.explore.coordinator import Coordinator, CoordinatorServer

        coordinator = Coordinator()
        server = CoordinatorServer(coordinator)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05},
                                  daemon=True)
        thread.start()
        try:
            address = f"127.0.0.1:{server.port}"
            assert main(["status", "--connect", address]) == 0
            rendered = capsys.readouterr().out
            assert "campaigns" in rendered
            assert main(["status", "--connect", address, "--json"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["campaigns"] == []
            assert document["leases_granted"] == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)
            coordinator.close()


class TestAdaptiveShardCli:
    def test_sharded_adaptive_bitwise_identical_to_unsharded(self, capsys,
                                                             tmp_path):
        sharded = tmp_path / "sharded.json"
        plain = tmp_path / "plain.json"
        assert main(["adaptive", *GRID, "--shard", "1/2",
                     "--json", str(sharded)]) == 0
        assert "sharded" in capsys.readouterr().out
        assert main(["adaptive", *GRID, "--json", str(plain)]) == 0
        capsys.readouterr()
        assert sharded.read_bytes() == plain.read_bytes()


class TestAdaptiveShardTimingWarning:
    def test_shard_with_timing_warns_about_zeroed_columns(self, capsys,
                                                          tmp_path):
        path = tmp_path / "sharded_timing.json"
        assert main(["adaptive", *GRID, "--shard", "0/2", "--timing",
                     "--json", str(path)]) == 0
        captured = capsys.readouterr()
        assert "read as zero" in captured.err


class TestStoreCli:
    """--store wires the columnar store through campaign, merge and
    adaptive; the merge path's regenerated artifacts stay bitwise identical
    to the monolithic run."""

    def test_campaign_store_holds_the_json_rows(self, capsys, tmp_path):
        from repro.explore.store import ColumnarStore

        json_path = tmp_path / "run.json"
        store_path = tmp_path / "run.store"
        assert main(["campaign", *GRID, "--json", str(json_path),
                     "--store", str(store_path)]) == 0
        assert f"wrote {store_path}" in capsys.readouterr().out

        store = ColumnarStore.open(store_path)
        document = json.loads(json_path.read_text())
        assert store.rows() == document["rows"]
        assert store.metadata["kind"] == "campaign"

    def test_merge_store_regenerates_monolithic_bitwise(self, capsys,
                                                        tmp_path):
        paths = []
        for index in range(2):
            path = tmp_path / f"shard{index}.json"
            assert main(["campaign", *GRID, "--shard", f"{index}/2",
                         "--json", str(path)]) == 0
            paths.append(path)
        mono = tmp_path / "mono.json"
        mono_csv = tmp_path / "mono.csv"
        assert main(["campaign", *GRID, "--json", str(mono),
                     "--csv", str(mono_csv)]) == 0
        capsys.readouterr()

        store_path = tmp_path / "merged.store"
        merged_json = tmp_path / "merged.json"
        merged_csv = tmp_path / "merged.csv"
        assert main(["merge", *map(str, paths), "--store", str(store_path),
                     "--json", str(merged_json),
                     "--csv", str(merged_csv)]) == 0
        output = capsys.readouterr().out
        assert "merged 2 shard artifact(s)" in output
        assert f"wrote {store_path}" in output
        assert "grouped by schedule" in output  # the store summary table

        assert merged_json.read_bytes() == mono.read_bytes()
        assert merged_csv.read_bytes() == mono_csv.read_bytes()

    def test_shard_campaign_store_carries_provenance(self, capsys, tmp_path):
        from repro.explore.store import ColumnarStore

        store_path = tmp_path / "shard.store"
        assert main(["campaign", *GRID, "--shard", "0/2",
                     "--store", str(store_path)]) == 0
        capsys.readouterr()
        store = ColumnarStore.open(store_path)
        assert store.metadata["kind"] == "shard"
        assert store.document_header["shard"]["index"] == 0

    def test_adaptive_store_holds_all_round_rows(self, capsys, tmp_path):
        from repro.explore.store import ColumnarStore

        json_path = tmp_path / "adaptive.json"
        store_path = tmp_path / "adaptive.store"
        assert main(["adaptive", *GRID, "--json", str(json_path),
                     "--store", str(store_path)]) == 0
        capsys.readouterr()
        store = ColumnarStore.open(store_path)
        document = json.loads(json_path.read_text())
        assert store.rows() == document["rows"]
        assert store.metadata["kind"] == "adaptive"
        assert "round" in store.columns
