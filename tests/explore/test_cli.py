"""Tests for the exploration command line interface."""

import pytest

from repro.explore.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table1_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--schedules", "schedule_4",
                                  "--validate"])
        assert args.schedules == ["schedule_4"]
        assert args.validate

    def test_all_subcommands_have_handlers(self):
        parser = build_parser()
        for command in ("table1", "speedup", "sweep-compression",
                        "sweep-tam-width", "schedules", "campaign"):
            args = parser.parse_args([command])
            assert callable(args.handler)

    def test_campaign_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["campaign", "--core-counts", "1", "2",
                                  "--tam-widths", "16", "--workers", "2",
                                  "--schedules", "greedy"])
        assert args.core_counts == [1, 2]
        assert args.tam_widths == [16]
        assert args.workers == 2
        assert args.schedules == ["greedy"]


class TestExecution:
    def test_table1_single_schedule(self, capsys):
        exit_code = main(["table1", "--schedules", "schedule_4", "--validate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "schedule_4" in output
        assert "Peak TAM" in output
        assert "estimated length" in output

    def test_speedup_command(self, capsys):
        exit_code = main(["speedup", "--gate-cycles", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "speedup" in output

    def test_compression_sweep_command(self, capsys):
        exit_code = main(["sweep-compression", "--ratios", "1", "50"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "compression_ratio" in output

    def test_campaign_command_writes_artifacts(self, capsys, tmp_path):
        csv_path = tmp_path / "campaign.csv"
        json_path = tmp_path / "campaign.json"
        exit_code = main(["campaign", "--core-counts", "1", "2",
                          "--tam-widths", "32", "--patterns", "64",
                          "--csv", str(csv_path), "--json", str(json_path)])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "scenario_0000" in output
        assert "result rows" in output
        assert csv_path.exists() and json_path.exists()
