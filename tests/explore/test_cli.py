"""Tests for the exploration command line interface."""

import pytest

from repro.explore.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_table1_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["table1", "--schedules", "schedule_4",
                                  "--validate"])
        assert args.schedules == ["schedule_4"]
        assert args.validate

    def test_all_subcommands_have_handlers(self):
        parser = build_parser()
        for command in ("table1", "speedup", "sweep-compression",
                        "sweep-tam-width", "schedules"):
            args = parser.parse_args([command])
            assert callable(args.handler)


class TestExecution:
    def test_table1_single_schedule(self, capsys):
        exit_code = main(["table1", "--schedules", "schedule_4", "--validate"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "schedule_4" in output
        assert "Peak TAM" in output
        assert "estimated length" in output

    def test_speedup_command(self, capsys):
        exit_code = main(["speedup", "--gate-cycles", "20"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "speedup" in output

    def test_compression_sweep_command(self, capsys):
        exit_code = main(["sweep-compression", "--ratios", "1", "50"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "compression_ratio" in output
