"""Tests of the surrogate screening tier and in-round simulation racing.

The contract under test: with ``--surrogate`` the estimator pre-screens
the candidate grid (keeping its Pareto front plus a ``--surrogate-keep``
margin) before any simulation runs; with ``--race`` later jobs in a round
stop at the horizon where the incumbent front provably dominates them.
Both leave provenance (surrogate scores, race stops) in the artifact,
both survive ``--resume-from`` round-trips bitwise, and neither changes
the artifact of a default search by a single byte.
"""

import json

import pytest

from repro.explore.adaptive import (
    DEFAULT_OBJECTIVES,
    AdaptiveSearch,
    adaptive_search_from_axes,
    parse_objective,
    race_jobs,
    resume_search,
    surrogate_screen_candidates,
    validate_race_objectives,
    validate_surrogate_objectives,
)
from repro.explore.campaign import clear_scenario_cache
from repro.explore.cli import main
from repro.explore.scenarios import ScenarioGrid, ScenarioSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


def small_search(**kwargs) -> AdaptiveSearch:
    return adaptive_search_from_axes(
        {"core_count": [1, 2], "tam_width_bits": [8, 32]},
        base=ScenarioSpec(name="base", patterns_per_core=16, seed=7),
        **kwargs,
    )


# -- surrogate screening ------------------------------------------------------
class TestSurrogateScreen:
    def test_screen_keeps_the_estimator_front(self):
        search = small_search()
        screen, kept = surrogate_screen_candidates(
            search.specs, search.candidates(), DEFAULT_OBJECTIVES, 0.0)
        assert screen.screened == len(search.candidates())
        assert screen.kept == len(kept) > 0
        # With keep=0 only estimator-rank-0 candidates survive; every kept
        # entry must be non-dominated among the scores.
        scores = screen.scores()
        kept_keys = {(spec.name, schedule) for spec, schedule in kept}
        for key in kept_keys:
            cycles, peak = scores[key]
            assert not any(
                other[0] < cycles and other[1] < peak
                for other_key, other in scores.items()
                if other_key != key)

    def test_keep_fraction_widens_the_margin(self):
        search = small_search()
        candidates = search.candidates()
        sizes = []
        for keep in (0.0, 0.5, 1.0):
            _, kept = surrogate_screen_candidates(
                search.specs, candidates, DEFAULT_OBJECTIVES, keep)
            sizes.append(len(kept))
        assert sizes[0] <= sizes[1] <= sizes[2]
        assert sizes[2] == len(candidates)  # keep=1.0 screens nothing out

    def test_screen_is_deterministic(self):
        search = small_search()
        first = surrogate_screen_candidates(
            search.specs, search.candidates(), DEFAULT_OBJECTIVES, 0.25)
        second = surrogate_screen_candidates(
            search.specs, search.candidates(), DEFAULT_OBJECTIVES, 0.25)
        assert first[1] == second[1]
        assert [e.key for e in first[0].entries] == \
            [e.key for e in second[0].entries]

    def test_surrogate_objectives_must_be_estimable(self):
        validate_surrogate_objectives(DEFAULT_OBJECTIVES)
        with pytest.raises(ValueError, match="surrogate"):
            validate_surrogate_objectives(
                (parse_objective("peak_tam_utilization:min"),))
        with pytest.raises(ValueError, match="surrogate"):
            validate_surrogate_objectives(
                (parse_objective("test_length_cycles:max"),))

    def test_race_objectives_validated(self):
        validate_race_objectives(DEFAULT_OBJECTIVES)
        with pytest.raises(ValueError, match="rac"):
            validate_race_objectives((parse_objective("peak_power:min"),))


# -- provenance in artifacts --------------------------------------------------
class TestProvenance:
    def test_surrogate_columns_and_block_present(self):
        result = small_search(surrogate=True, surrogate_keep=0.5).run()
        document = result.as_document()
        assert "surrogate_cycles" in document["columns"]
        assert "surrogate_peak_power" in document["columns"]
        assert document["surrogate"]["keep"] == 0.5
        assert document["surrogate"]["screened"] >= \
            document["surrogate"]["kept"] > 0
        for row in document["rows"]:
            assert row["surrogate_cycles"] > 0
            assert row["surrogate_peak_power"] > 0

    def test_race_column_and_block_present(self):
        result = small_search(race=True).run()
        document = result.as_document()
        assert "race_stopped" in document["columns"]
        assert document["race"]["stopped_jobs"] == sum(
            1 for row in document["rows"] if row["race_stopped"])
        assert all("race_stopped" in stats
                   for stats in document["round_stats"])

    def test_default_artifact_has_no_feature_traces(self):
        document = small_search().run().as_document()
        assert "surrogate" not in document
        assert "race" not in document
        assert "surrogate_cycles" not in document["columns"]
        assert "race_stopped" not in document["columns"]
        assert all("race_stopped" not in stats
                   for stats in document["round_stats"])

    def test_stopped_jobs_never_reach_the_front(self):
        result = small_search(surrogate=True, race=True).run()
        stopped = {tuple(key) for round_ in result.rounds
                   for key in round_.race_stopped}
        front = {(o.spec.name, o.schedule) for o in result.front}
        assert not stopped & front

    def test_race_front_matches_unraced_front(self):
        plain = small_search().run()
        raced = small_search(race=True).run()
        assert sorted((o.spec.name, o.schedule) for o in plain.front) == \
            sorted((o.spec.name, o.schedule) for o in raced.front)


# -- resume round-trips -------------------------------------------------------
class TestResume:
    def _roundtrip(self, max_rounds=1, **kwargs):
        """Checkpoint after *max_rounds*, resume, compare bitwise against
        the uninterrupted run."""
        full = small_search(**kwargs).run()
        partial = small_search(**kwargs).run(max_rounds=max_rounds)
        document = json.loads(json.dumps(partial.as_document()))
        resumed = resume_search(document)
        assert resumed.as_document() == full.as_document()

    def test_surrogate_race_artifact_roundtrips_bitwise(self):
        self._roundtrip(surrogate=True, surrogate_keep=0.5, race=True)

    def test_surrogate_only_roundtrips(self):
        self._roundtrip(surrogate=True)

    def test_race_only_roundtrips(self):
        self._roundtrip(race=True)

    def test_resume_replays_race_stops_across_two_rounds(self):
        # A two-round checkpoint forces the replay path to reconstruct
        # race-stopped rows (partial metrics, not memoized) from provenance.
        self._roundtrip(max_rounds=2, surrogate=True, race=True)


# -- racing the campaign job list ---------------------------------------------
class TestRaceJobs:
    def test_raced_campaign_front_matches_full_run(self):
        from repro.explore.adaptive import pareto_front_mask, objective_vector
        from repro.explore.campaign import campaign_from_axes

        campaign = campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [8, 32]},
            base=ScenarioSpec(name="base", patterns_per_core=16, seed=7))
        full = campaign.run()
        raced, stopped = race_jobs(list(campaign.jobs()))
        assert len(raced.outcomes) + len(stopped) == len(full.outcomes)

        def front(outcomes):
            vectors = [objective_vector(o, DEFAULT_OBJECTIVES)
                       for o in outcomes]
            mask = pareto_front_mask(vectors)
            return sorted((o.spec.name, o.schedule)
                          for o, keep in zip(outcomes, mask) if keep)

        assert front(full.outcomes) == front(raced.outcomes)

    def test_completed_outcomes_identical_to_full_run(self):
        from repro.explore.campaign import (
            NONDETERMINISTIC_COLUMNS, campaign_from_axes,
        )

        def row(outcome):
            return {column: value
                    for column, value in outcome.as_row().items()
                    if column not in NONDETERMINISTIC_COLUMNS}

        campaign = campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [8, 32]},
            base=ScenarioSpec(name="base", patterns_per_core=16, seed=7))
        by_key = {(o.spec.name, o.schedule): row(o)
                  for o in campaign.run().outcomes}
        raced, _ = race_jobs(list(campaign.jobs()))
        for outcome in raced.outcomes:
            assert row(outcome) == by_key[(outcome.spec.name,
                                           outcome.schedule)]


# -- parameter validation -----------------------------------------------------
class TestValidation:
    def test_race_excludes_round_sharding(self):
        with pytest.raises(ValueError, match="round"):
            small_search(race=True).run(round_shards=2)

    def test_race_excludes_worker_pools(self):
        with pytest.raises(ValueError, match="worker"):
            small_search(race=True).run(workers=2)

    def test_surrogate_keep_range_enforced(self):
        with pytest.raises(ValueError):
            small_search(surrogate=True, surrogate_keep=1.5)
        with pytest.raises(ValueError):
            small_search(surrogate=True, surrogate_keep=-0.1)


# -- CLI wiring ---------------------------------------------------------------
GRID = ["--core-counts", "1", "2", "--tam-widths", "8", "32",
        "--patterns", "16", "--seed", "7"]


class TestCli:
    def test_adaptive_surrogate_race_artifact(self, capsys, tmp_path):
        json_path = tmp_path / "adaptive.json"
        exit_code = main(["adaptive", *GRID, "--surrogate", "--race",
                          "--surrogate-keep", "0.5",
                          "--json", str(json_path)])
        capsys.readouterr()
        assert exit_code == 0
        document = json.loads(json_path.read_text())
        assert document["surrogate"]["keep"] == 0.5
        assert "race" in document
        assert "surrogate_cycles" in document["columns"]

    def test_adaptive_resume_from_surrogate_checkpoint(self, capsys,
                                                       tmp_path):
        partial = tmp_path / "partial.json"
        resumed = tmp_path / "resumed.json"
        full = tmp_path / "full.json"
        assert main(["adaptive", *GRID, "--surrogate", "--race",
                     "--max-rounds", "1", "--json", str(partial)]) == 0
        assert main(["adaptive", *GRID, "--resume-from", str(partial),
                     "--json", str(resumed)]) == 0
        assert main(["adaptive", *GRID, "--surrogate", "--race",
                     "--json", str(full)]) == 0
        capsys.readouterr()
        assert resumed.read_bytes() == full.read_bytes()

    def test_default_adaptive_artifact_unchanged_by_the_feature_flags(
            self, capsys, tmp_path):
        default = tmp_path / "default.json"
        explicit = tmp_path / "explicit.json"
        assert main(["adaptive", *GRID, "--json", str(default)]) == 0
        assert main(["adaptive", *GRID, "--no-surrogate", "--no-race",
                     "--json", str(explicit)]) == 0
        capsys.readouterr()
        assert default.read_bytes() == explicit.read_bytes()

    def test_campaign_surrogate_screens_jobs(self, capsys, tmp_path):
        json_path = tmp_path / "campaign.json"
        exit_code = main(["campaign", *GRID, "--surrogate",
                          "--json", str(json_path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "surrogate screen" in captured.err
        document = json.loads(json_path.read_text())
        assert 0 < document["row_count"] <= 8

    def test_campaign_race_drops_stopped_rows(self, capsys, tmp_path):
        raced_path = tmp_path / "raced.json"
        full_path = tmp_path / "full.json"
        assert main(["campaign", *GRID, "--race",
                     "--json", str(raced_path)]) == 0
        assert main(["campaign", *GRID, "--json", str(full_path)]) == 0
        capsys.readouterr()
        raced = json.loads(raced_path.read_text())
        full = json.loads(full_path.read_text())
        assert raced["row_count"] <= full["row_count"]
        full_rows = {(row["scenario"], row["schedule"]): row
                     for row in full["rows"]}
        for row in raced["rows"]:
            assert row == full_rows[(row["scenario"], row["schedule"])]

    def test_campaign_shard_rejects_surrogate_and_race(self, capsys):
        for flag in ("--surrogate", "--race"):
            exit_code = main(["campaign", *GRID, flag, "--shard", "0/2"])
            captured = capsys.readouterr()
            assert exit_code == 2
            assert "--shard" in captured.err

    def test_surrogate_keep_argument_validated(self, capsys):
        with pytest.raises(SystemExit):
            main(["adaptive", *GRID, "--surrogate", "--surrogate-keep", "2"])
        capsys.readouterr()


# -- the at-scale acceptance criterion ---------------------------------------
@pytest.mark.slow
def test_surrogate_race_reaches_the_same_front_with_3x_fewer_jobs():
    """>=50 scenarios: identical final Pareto front, >=3x fewer
    full-fidelity simulations (the PR's acceptance criterion, same space
    as ``benchmarks/run_benchmarks.py bench_surrogate``)."""
    schedules = ("sequential", "greedy", "binpack",
                 "portfolio:members=greedy|binpack|anneal")
    grid = ScenarioGrid(
        {"core_count": [1, 2], "tam_width_bits": [8, 16, 32, 64],
         "compression_ratio": [10.0, 100.0], "power_budget": [3.0, 8.0],
         "patterns_per_core": [32, 64]},
        base=ScenarioSpec(name="base", seed=5, schedules=schedules))
    specs = grid.specs()
    assert len(specs) >= 50

    full = AdaptiveSearch(specs).run()
    raced = AdaptiveSearch(specs, surrogate=True, surrogate_keep=0.25,
                           race=True).run()
    assert sorted((o.spec.name, o.schedule) for o in full.front) == \
        sorted((o.spec.name, o.schedule) for o in raced.front)
    assert full.full_fidelity_jobs >= 3 * raced.full_fidelity_jobs


# -- normalized tie-break scores ----------------------------------------------
class TestNormalizedScores:
    """The vectorized scalarization must stay bit-identical to the scalar
    min-max loop — selection tie-breaks (and therefore artifacts) hang off
    the exact float values."""

    @staticmethod
    def _reference(vectors):
        if not vectors:
            return []
        dims = len(vectors[0])
        lows = [min(v[d] for v in vectors) for d in range(dims)]
        highs = [max(v[d] for v in vectors) for d in range(dims)]
        scores = []
        for vector in vectors:
            score = 0.0
            for d in range(dims):
                span = highs[d] - lows[d]
                if span > 0:
                    score += (vector[d] - lows[d]) / span
            scores.append(score)
        return scores

    def test_matches_scalar_reference(self):
        from repro.explore.adaptive import _normalized_scores

        vectors = [(1_000_003.0, 2.75), (999_999.0, 8.125),
                   (1_000_003.0, 2.75), (123.0, 0.5), (87_654.0, 19.0)]
        assert _normalized_scores(vectors) == self._reference(vectors)

    def test_degenerate_axes_contribute_nothing(self):
        from repro.explore.adaptive import _normalized_scores

        vectors = [(5.0, 1.0), (7.0, 1.0), (6.0, 1.0)]
        assert _normalized_scores(vectors) == self._reference(vectors)
        assert _normalized_scores([(3.0, 3.0), (3.0, 3.0)]) == [0.0, 0.0]
        assert _normalized_scores([]) == []
