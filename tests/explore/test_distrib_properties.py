"""Hypothesis property tests of the shard artifact machinery.

All pure data — outcomes are constructed, never simulated — so the properties
range over far more job-list shapes and shard counts than the differential
tests can afford:

* serialize → merge → load round-trips preserve every result column and the
  monolithic row order for arbitrary shard counts (even and uneven);
* the merger rejects mismatched schema versions and overlapping shard sets
  with clear errors instead of silently recombining.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.campaign import (
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    SCHEMA_VERSION,
    outcome_from_row,
    result_columns,
)
from repro.explore.distrib import (
    DISTRIB_SCHEMA_VERSION,
    MergeError,
    ShardRun,
    merge_shard_documents,
    plan_shards,
    write_merged_csv,
    write_merged_json,
)
from repro.explore.scenarios import ScenarioSpec

#: Columns present in deterministic artifacts (the merge unit).
DETERMINISTIC_COLUMNS = tuple(result_columns(deterministic=True))


def build_jobs(count: int, schedules_per_spec: int, prefix: str = "s"):
    jobs = []
    for index in range(count):
        spec = ScenarioSpec(
            name=f"{prefix}{index:03d}",
            core_count=1 + index % 3,
            patterns_per_core=8 + index,
            seed=index + 1,
            schedules=("sequential", "greedy")[:schedules_per_spec],
        )
        for schedule in spec.schedules:
            jobs.append(CampaignJob(spec=spec, schedule=schedule))
    return jobs


def build_outcome(job: CampaignJob, salt: int) -> CampaignOutcome:
    """A deterministic fake outcome whose values encode the job identity."""
    return CampaignOutcome(
        spec=job.spec, schedule=job.schedule,
        phase_count=1 + salt % 4, task_count=2 + salt % 3,
        estimated_cycles=1000 + salt, test_length_cycles=5000 + salt * 7,
        peak_tam_utilization=(salt % 100) / 100.0,
        avg_tam_utilization=(salt % 50) / 100.0,
        peak_power=1.0 + (salt % 13) * 0.25, avg_power=0.5 + (salt % 7) * 0.125,
        simulated_activations=100 + salt * 3,
    )


def shard_documents(jobs, shard_count, deterministic=True):
    """Shard artifacts exactly as run_shard would emit them, minus the
    simulation: each shard's rows come from the same fake outcome table."""
    documents = []
    for shard in plan_shards(jobs, shard_count):
        outcomes = [build_outcome(job, shard.start + offset)
                    for offset, job in enumerate(shard.jobs)]
        document = ShardRun(shard, CampaignRun(outcomes=outcomes)).as_document(
            deterministic=deterministic)
        # Round-trip through the serialized form, like real artifact files.
        documents.append(json.loads(json.dumps(document)))
    return documents


def monolithic_document(jobs, deterministic=True):
    outcomes = [build_outcome(job, index) for index, job in enumerate(jobs)]
    run = CampaignRun(outcomes=outcomes)
    return json.loads(json.dumps(run.as_document(deterministic=deterministic)))


@st.composite
def jobs_and_shard_count(draw):
    spec_count = draw(st.integers(min_value=1, max_value=24))
    schedules = draw(st.integers(min_value=1, max_value=2))
    jobs = build_jobs(spec_count, schedules)
    count = draw(st.integers(min_value=1, max_value=len(jobs)))
    return jobs, count


class TestMergeRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(jobs_and_shard_count())
    def test_merge_round_trips_rows_columns_and_order(self, jobs_count):
        jobs, count = jobs_count
        merged = merge_shard_documents(shard_documents(jobs, count))
        expected = monolithic_document(jobs)
        # Identical to the single-host document: columns, count, row order.
        assert merged == expected
        assert list(merged["columns"]) == list(DETERMINISTIC_COLUMNS)
        assert merged["row_count"] == len(jobs)
        assert [row["scenario"] for row in merged["rows"]] == \
            [job.spec.name for job in jobs]
        assert [row["schedule"] for row in merged["rows"]] == \
            [job.schedule for job in jobs]
        for row in merged["rows"]:
            assert tuple(row) == DETERMINISTIC_COLUMNS

    @settings(max_examples=30, deadline=None)
    @given(jobs_count=jobs_and_shard_count())
    def test_merge_survives_file_round_trip(self, tmp_path_factory, jobs_count):
        jobs, count = jobs_count
        merged = merge_shard_documents(shard_documents(jobs, count))
        directory = tmp_path_factory.mktemp("merged")
        json_path = directory / "merged.json"
        csv_path = directory / "merged.csv"
        write_merged_json(merged, json_path)
        write_merged_csv(merged, csv_path)
        assert json.loads(json_path.read_text()) == merged
        header = csv_path.read_text().splitlines()[0]
        assert header.split(",") == list(DETERMINISTIC_COLUMNS)

    @settings(max_examples=30, deadline=None)
    @given(jobs_and_shard_count())
    def test_rows_reconstruct_outcomes(self, jobs_count):
        # outcome_from_row is the resume path's inverse of as_row: metrics
        # survive the artifact round trip for arbitrary fake outcomes.
        jobs, count = jobs_count
        merged = merge_shard_documents(shard_documents(jobs, count))
        for index, (job, row) in enumerate(zip(jobs, merged["rows"])):
            rebuilt = outcome_from_row(row, job.spec)
            assert rebuilt.deterministic_row() == row

    @settings(max_examples=30, deadline=None)
    @given(jobs_and_shard_count(), st.randoms(use_true_random=False))
    def test_merge_accepts_any_supply_order(self, jobs_count, rng):
        jobs, count = jobs_count
        documents = shard_documents(jobs, count)
        rng.shuffle(documents)
        assert merge_shard_documents(documents) == monolithic_document(jobs)


class TestMergeRejectionProperties:
    @settings(max_examples=40, deadline=None)
    @given(jobs_and_shard_count(),
           st.sampled_from(["schema_version", "distrib_schema_version"]),
           st.integers(min_value=-3, max_value=100))
    def test_rejects_mismatched_schema_versions(self, jobs_count, key, delta):
        jobs, count = jobs_count
        documents = shard_documents(jobs, count)
        expected = (SCHEMA_VERSION if key == "schema_version"
                    else DISTRIB_SCHEMA_VERSION)
        documents[-1][key] = expected + delta if delta else None
        with pytest.raises(MergeError, match=key):
            merge_shard_documents(documents)

    @settings(max_examples=40, deadline=None)
    @given(jobs_and_shard_count(), st.data())
    def test_rejects_overlapping_shards(self, jobs_count, data):
        jobs, count = jobs_count
        documents = shard_documents(jobs, count)
        duplicated = data.draw(st.integers(min_value=0, max_value=count - 1))
        documents.append(json.loads(json.dumps(documents[duplicated])))
        with pytest.raises(MergeError, match="overlapping"):
            merge_shard_documents(documents)

    @settings(max_examples=40, deadline=None)
    @given(jobs_and_shard_count(), st.data())
    def test_rejects_incomplete_shard_sets(self, jobs_count, data):
        jobs, count = jobs_count
        if count < 2:
            count = 2
            if len(jobs) < 2:
                jobs = build_jobs(2, 1)
        documents = shard_documents(jobs, count)
        dropped = data.draw(st.integers(min_value=0, max_value=count - 1))
        del documents[dropped]
        with pytest.raises(MergeError, match="missing shard|no shard artifacts"):
            merge_shard_documents(documents)

    @settings(max_examples=40, deadline=None)
    @given(jobs_and_shard_count())
    def test_rejects_foreign_shards(self, jobs_count):
        # Shards planned from a different scenario space never merge in.
        jobs, count = jobs_count
        documents = shard_documents(jobs, count)
        foreign_jobs = build_jobs(len(jobs) // 2 + 1, 1, prefix="foreign")
        foreign_count = min(count, len(foreign_jobs))
        foreign = shard_documents(foreign_jobs, foreign_count)[0]
        if count >= 2:
            documents[0] = foreign   # fingerprint (at least) disagrees
        else:
            documents.append(foreign)  # overlap/count/fingerprint disagree
        with pytest.raises(MergeError):
            merge_shard_documents(documents)
