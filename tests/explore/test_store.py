"""Tests of the columnar result store: typed round trips, streaming shard
merge and the bitwise-identity contract of the streaming artifact writers.

The load-bearing property throughout: everything a store regenerates
(``write_document_json`` / ``write_document_csv``) must be *byte for byte*
identical to what the dict-of-lists writers produce for the same rows —
that is what lets ``merge --store`` artifacts interoperate with every
existing consumer.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.explore.campaign import (
    SCHEMA_VERSION,
    campaign_from_axes,
    result_columns,
)
from repro.explore.distrib import (
    MergeError,
    ShardRun,
    merge_shard_documents,
    plan_shards,
    run_shard,
    write_merged_csv,
    write_merged_json,
)
from repro.explore.report import format_store_summary, summarize_store
from repro.explore.scenarios import ScenarioSpec
from repro.explore.store import (
    DEFAULT_CHUNK_ROWS,
    STORE_SCHEMA_VERSION,
    ColumnarStore,
    StoreError,
    merge_artifacts_to_store,
    merge_documents_to_store,
    store_campaign_run,
    store_shard_run,
    write_document_csv,
    write_document_json,
)

from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
)


def small_campaign(**axes) -> Campaign:
    axes = axes or {"core_count": [1, 2], "tam_width_bits": [16, 32]}
    return campaign_from_axes(
        axes, base=ScenarioSpec(name="base", patterns_per_core=16, seed=3))


def fake_shard_documents(job_count: int, shard_count: int):
    """Shard artifacts over constructed (never simulated) outcomes,
    JSON-round-tripped like files — mirrors test_distrib's helper."""
    jobs = [
        CampaignJob(spec=ScenarioSpec(name=f"s{index:02d}", core_count=1,
                                      patterns_per_core=8, seed=index + 1),
                    schedule="sequential")
        for index in range(job_count)
    ]
    documents = []
    for shard in plan_shards(jobs, shard_count):
        outcomes = [
            CampaignOutcome(
                spec=job.spec, schedule=job.schedule, phase_count=1,
                task_count=1, estimated_cycles=shard.start + offset,
                test_length_cycles=(shard.start + offset) * 10,
                peak_tam_utilization=0.5, avg_tam_utilization=0.25,
                peak_power=2.0, avg_power=1.0,
                simulated_activations=(shard.start + offset) * 3)
            for offset, job in enumerate(shard.jobs)
        ]
        documents.append(json.loads(json.dumps(
            ShardRun(shard=shard, run=CampaignRun(outcomes=outcomes))
            .as_document())))
    return documents


#: A small typed schema exercising every declared column kind: str
#: (scenario/schedule), int (seed), float (compression_ratio), bool
#: (survivor).
TYPED_COLUMNS = ("scenario", "seed", "compression_ratio", "survivor",
                 "schedule")


def typed_row(index: int) -> dict:
    return {
        "scenario": f"s{index:03d}",
        "seed": index * 7 - 3,
        "compression_ratio": index * 1.5,
        "survivor": index % 2 == 0,
        "schedule": ("greedy", "sequential")[index % 2],
    }


class TestColumnarStore:
    def test_round_trip_preserves_values_and_types(self, tmp_path):
        rows = [typed_row(i) for i in range(10)]
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS,
                                  chunk_rows=4) as store:
            store.append_rows(rows)

        reopened = ColumnarStore.open(tmp_path / "s")
        assert reopened.rows() == rows
        assert reopened.row_count == 10
        assert reopened.chunk_count == 3  # 4 + 4 + 2
        assert reopened.columns == list(TYPED_COLUMNS)
        assert reopened.schema_version == SCHEMA_VERSION
        # Native Python scalars out, not numpy scalars.
        row = reopened.rows()[3]
        assert type(row["seed"]) is int
        assert type(row["compression_ratio"]) is float
        assert type(row["survivor"]) is bool
        assert type(row["scenario"]) is str

    def test_column_is_typed_numpy_view(self, tmp_path):
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS,
                                  chunk_rows=3) as store:
            store.append_rows(typed_row(i) for i in range(8))
        reopened = ColumnarStore.open(tmp_path / "s")
        seeds = reopened.column("seed")
        assert seeds.dtype == np.int64
        assert seeds.tolist() == [i * 7 - 3 for i in range(8)]
        assert reopened.column("compression_ratio").dtype == np.float64
        assert reopened.column("survivor").dtype == np.bool_
        with pytest.raises(StoreError, match="no column"):
            reopened.column("nope")

    def test_empty_store_round_trips(self, tmp_path):
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS) as store:
            pass
        reopened = ColumnarStore.open(tmp_path / "s")
        assert reopened.rows() == []
        assert reopened.row_count == 0
        assert reopened.chunk_count == 0
        assert reopened.column("seed").dtype == np.int64

    def test_append_columns_matches_append_rows(self, tmp_path):
        rows = [typed_row(i) for i in range(11)]
        with ColumnarStore.create(tmp_path / "a", TYPED_COLUMNS,
                                  chunk_rows=4) as by_row:
            by_row.append_rows(rows)
        with ColumnarStore.create(tmp_path / "b", TYPED_COLUMNS,
                                  chunk_rows=4) as by_block:
            by_block.append_columns(
                {c: [row[c] for row in rows] for c in TYPED_COLUMNS})
        assert (ColumnarStore.open(tmp_path / "a").rows()
                == ColumnarStore.open(tmp_path / "b").rows())

    def test_append_row_missing_column_is_rejected(self, tmp_path):
        store = ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS)
        with pytest.raises(StoreError, match="missing column 'survivor'"):
            store.append_row({c: typed_row(0)[c] for c in TYPED_COLUMNS
                              if c != "survivor"})

    def test_append_columns_validates_block(self, tmp_path):
        store = ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS)
        with pytest.raises(StoreError, match="missing column"):
            store.append_columns({"scenario": ["a"]})
        block = {c: [typed_row(0)[c]] for c in TYPED_COLUMNS}
        block["seed"] = [1, 2]
        with pytest.raises(StoreError, match="lengths disagree"):
            store.append_columns(block)

    def test_mixed_value_unknown_column_is_rejected(self, tmp_path):
        store = ColumnarStore.create(tmp_path / "s", ("blob",))
        store.append_row({"blob": {"not": "a scalar"}})
        with pytest.raises(StoreError, match="mixed/unsupported"):
            store.flush()

    def test_create_refuses_foreign_directory(self, tmp_path):
        foreign = tmp_path / "not-a-store"
        foreign.mkdir()
        (foreign / "precious.txt").write_text("data")
        with pytest.raises(StoreError, match="refusing to overwrite"):
            ColumnarStore.create(foreign, TYPED_COLUMNS)
        assert (foreign / "precious.txt").read_text() == "data"

    def test_create_replaces_existing_store(self, tmp_path):
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS,
                                  chunk_rows=1) as store:
            store.append_rows(typed_row(i) for i in range(5))
        assert ColumnarStore.open(tmp_path / "s").chunk_count == 5
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS) as store:
            store.append_row(typed_row(0))
        reopened = ColumnarStore.open(tmp_path / "s")
        assert reopened.rows() == [typed_row(0)]
        # No stale chunk files behind the fresh manifest.
        assert len(list(reopened.path.glob("chunk-*.npz"))) == 1

    def test_open_rejects_non_store_and_future_layout(self, tmp_path):
        with pytest.raises(StoreError, match="not a columnar store"):
            ColumnarStore.open(tmp_path)
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS) as store:
            pass
        manifest = json.loads((tmp_path / "s" / "manifest.json").read_text())
        manifest["store_schema_version"] = STORE_SCHEMA_VERSION + 1
        (tmp_path / "s" / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="store_schema_version"):
            ColumnarStore.open(tmp_path / "s")

    def test_mode_violations_are_rejected(self, tmp_path):
        store = ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS)
        with pytest.raises(StoreError, match="still open for writing"):
            store.column("seed")
        store.close()
        with pytest.raises(StoreError, match="not open for writing"):
            store.append_row(typed_row(0))

    def test_row_count_includes_buffered_rows(self, tmp_path):
        store = ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS,
                                     chunk_rows=100)
        store.append_rows(typed_row(i) for i in range(7))
        assert store.row_count == 7
        assert store.chunk_count == 0
        store.close()
        assert store.chunk_count == 1


# -- hypothesis: arbitrary rows round-trip through disk -----------------------

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)
# numpy U-dtype arrays silently drop trailing NUL characters, so the store's
# text support excludes \x00 (JSON artifacts never contain it anyway).
safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",),
                           blacklist_characters="\x00"),
    max_size=20)
int64s = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)

typed_rows = st.lists(
    st.fixed_dictionaries({
        "scenario": safe_text,
        "seed": int64s,
        "compression_ratio": finite_floats,
        "survivor": st.booleans(),
        "schedule": safe_text,
    }),
    max_size=120)


class TestStoreProperties:
    # ColumnarStore.create atomically replaces an existing store, so reusing
    # one tmp_path across hypothesis examples is safe.
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(rows=typed_rows, chunk_rows=st.integers(min_value=1, max_value=50))
    def test_append_flush_reopen_preserves_rows(self, tmp_path, rows,
                                                chunk_rows):
        """append → close → open streams back exactly the appended rows,
        for arbitrary row counts and chunk sizes (including chunk_rows=1
        and rows spanning many partial chunks)."""
        with ColumnarStore.create(tmp_path / "s", TYPED_COLUMNS,
                                  chunk_rows=chunk_rows) as store:
            store.append_rows(rows)
            assert store.row_count == len(rows)

        reopened = ColumnarStore.open(tmp_path / "s")
        assert reopened.rows() == rows
        assert reopened.row_count == len(rows)
        assert sum(len(chunk) for chunk in reopened.iter_row_chunks()) \
            == len(rows)
        expected_chunks = -(-len(rows) // chunk_rows) if rows else 0
        assert reopened.chunk_count == expected_chunks


# -- persisted result objects: bitwise identity -------------------------------

class TestResultObjectStores:
    def test_campaign_store_regenerates_bitwise_artifacts(self, tmp_path):
        run = small_campaign().run(workers=1)
        run.write_json(tmp_path / "direct.json", deterministic=True)
        run.write_csv(tmp_path / "direct.csv", deterministic=True)

        store = store_campaign_run(run, tmp_path / "run.store", chunk_rows=3)
        write_document_json(store, tmp_path / "store.json")
        write_document_csv(store, tmp_path / "store.csv")

        assert (tmp_path / "store.json").read_bytes() \
            == (tmp_path / "direct.json").read_bytes()
        assert (tmp_path / "store.csv").read_bytes() \
            == (tmp_path / "direct.csv").read_bytes()
        assert store.metadata["kind"] == "campaign"

    def test_nondeterministic_campaign_store_keeps_run_metadata(
            self, tmp_path):
        run = small_campaign().run(workers=1)
        run.write_json(tmp_path / "direct.json", deterministic=False)
        store = store_campaign_run(run, tmp_path / "run.store",
                                   deterministic=False)
        write_document_json(store, tmp_path / "store.json")
        assert (tmp_path / "store.json").read_bytes() \
            == (tmp_path / "direct.json").read_bytes()
        assert store.columns == result_columns(deterministic=False)

    def test_shard_store_regenerates_bitwise_artifact(self, tmp_path):
        campaign = small_campaign()
        shard = plan_shards(campaign.jobs(), 2)[0]
        result = run_shard(shard, workers=1)
        result.write_json(tmp_path / "direct.json")

        store = store_shard_run(result, tmp_path / "shard.store")
        write_document_json(store, tmp_path / "store.json")
        assert (tmp_path / "store.json").read_bytes() \
            == (tmp_path / "direct.json").read_bytes()
        assert store.metadata["shard"]["index"] == 0


# -- streaming merge ----------------------------------------------------------

class TestStreamingMerge:
    def write_shards(self, tmp_path, job_count=9, shard_count=3):
        documents = fake_shard_documents(job_count, shard_count)
        paths = []
        for document in documents:
            path = tmp_path / f"shard{document['shard']['index']}.json"
            path.write_text(json.dumps(document, indent=2) + "\n")
            paths.append(path)
        return documents, paths

    def test_merge_artifacts_matches_dict_merge_bitwise(self, tmp_path):
        documents, paths = self.write_shards(tmp_path)
        merged = merge_shard_documents(documents)
        write_merged_json(merged, tmp_path / "dict.json")
        write_merged_csv(merged, tmp_path / "dict.csv")

        store, headers = merge_artifacts_to_store(
            paths, tmp_path / "merged.store", chunk_rows=4)
        write_document_json(store, tmp_path / "store.json")
        write_document_csv(store, tmp_path / "store.csv")

        assert (tmp_path / "store.json").read_bytes() \
            == (tmp_path / "dict.json").read_bytes()
        assert (tmp_path / "store.csv").read_bytes() \
            == (tmp_path / "dict.csv").read_bytes()
        # Headers are the artifacts minus their rows, for the merge report.
        assert [h["shard"]["index"] for h in headers] == [0, 1, 2]
        assert all("rows" not in h for h in headers)
        assert store.metadata["kind"] == "merged-campaign"
        assert store.metadata["shard_count"] == 3

    def test_merge_documents_matches_merge_artifacts(self, tmp_path):
        documents, paths = self.write_shards(tmp_path)
        from_memory = merge_documents_to_store(
            documents, tmp_path / "mem.store")
        from_disk, _ = merge_artifacts_to_store(
            paths, tmp_path / "disk.store")
        assert ColumnarStore.open(from_memory.path).rows() \
            == ColumnarStore.open(from_disk.path).rows()

    def test_merge_accepts_unordered_paths(self, tmp_path):
        documents, paths = self.write_shards(tmp_path)
        merged = merge_shard_documents(documents)
        store, _ = merge_artifacts_to_store(
            list(reversed(paths)), tmp_path / "merged.store")
        assert ColumnarStore.open(store.path).rows() == merged["rows"]

    def test_partial_merge_matches_dict_merge_bitwise(self, tmp_path):
        documents, paths = self.write_shards(tmp_path)
        merged = merge_shard_documents(documents[:2], partial=True)
        write_merged_json(merged, tmp_path / "dict.json")

        store, _ = merge_artifacts_to_store(
            paths[:2], tmp_path / "merged.store", partial=True)
        write_document_json(store, tmp_path / "store.json")
        assert (tmp_path / "store.json").read_bytes() \
            == (tmp_path / "dict.json").read_bytes()
        assert store.metadata["missing"] == [2]

    def test_merge_rejects_bad_shard_sets_before_writing(self, tmp_path):
        documents, paths = self.write_shards(tmp_path)
        with pytest.raises(MergeError, match="overlapping shards"):
            merge_artifacts_to_store([paths[0], paths[0], paths[1]],
                                     tmp_path / "merged.store")
        with pytest.raises(MergeError, match="missing"):
            merge_artifacts_to_store(paths[:2], tmp_path / "m2.store")
        # Validation failed before any store directory was created.
        assert not (tmp_path / "merged.store").exists()
        assert not (tmp_path / "m2.store").exists()


@pytest.mark.slow
def test_large_streaming_merge_is_bitwise_identical(tmp_path):
    """The at-scale differential: tens of thousands of fake rows through the
    streaming merge regenerate the dict-path JSON byte for byte."""
    documents = fake_shard_documents(20_000, 7)
    merged = merge_shard_documents(documents)
    write_merged_json(merged, tmp_path / "dict.json")
    store = merge_documents_to_store(documents, tmp_path / "merged.store")
    write_document_json(store, tmp_path / "store.json")
    assert (tmp_path / "store.json").read_bytes() \
        == (tmp_path / "dict.json").read_bytes()


# -- store analytics ----------------------------------------------------------

class TestStoreSummary:
    def store(self, tmp_path):
        run = small_campaign().run(workers=1)
        return store_campaign_run(run, tmp_path / "run.store"), run

    def test_summary_matches_python_group_by(self, tmp_path):
        store, run = self.store(tmp_path)
        summary = summarize_store(store, group_by="schedule",
                                  metrics=("test_length_cycles",))
        groups = {}
        for outcome in run.outcomes:
            groups.setdefault(outcome.schedule, []).append(
                outcome.test_length_cycles)
        assert [entry["schedule"] for entry in summary] == sorted(groups)
        for entry in summary:
            values = groups[entry["schedule"]]
            assert entry["rows"] == len(values)
            assert entry["mean_test_length_cycles"] == pytest.approx(
                sum(values) / len(values))
            assert entry["min_test_length_cycles"] == min(values)
            assert entry["max_test_length_cycles"] == max(values)

    def test_format_store_summary_renders_table(self, tmp_path):
        store, run = self.store(tmp_path)
        text = format_store_summary(store)
        assert "schedule" in text
        assert f"{store.row_count} rows in {store.chunk_count} chunk(s)" \
            in text
        assert f"schema v{SCHEMA_VERSION}" in text
