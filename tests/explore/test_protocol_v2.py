"""Protocol v2: framed sessions, batched ops, binary columnar payloads.

Four layers of evidence that the fast data plane is also a *correct* one:

* property suites — hypothesis round-trips arbitrary frames through the
  frame codec and arbitrary typed documents through the shard-block codec,
  and shows every truncation/corruption is rejected with a clear error,
  never half-decoded;
* wire regressions — a live server answers malformed/oversized frames and
  preambles with structured ``{"ok": false}`` errors plus a
  ``coordinator_protocol_errors_total`` tick instead of silently dropping
  the connection, and a framed session survives its own bad frame;
* batching semantics — multi-span leases, coalesced heartbeats, and the
  delta-merged per-worker RTT histograms in the coordinator registry;
* differentials — columnar-payload campaigns over real sockets are
  byte-identical to JSON-payload ones and to the monolithic run at 1/2/4
  workers with one worker killed mid-lease, and a partitioned worker
  reconnects with bounded exponential backoff instead of abandoning work.
"""

import io
import json
import socket
import struct
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.campaign import campaign_from_axes
from repro.explore.coordinator import (
    FRAME_KIND_BLOCK,
    FRAME_KIND_JSON,
    MAX_FRAME_BYTES,
    PROTOCOL_MAGIC,
    Coordinator,
    CoordinatorClient,
    CoordinatorError,
    CoordinatorServer,
    CoordinatorSession,
    FrameError,
    decode_block_payload,
    encode_block_frame,
    encode_frame,
    encode_json_frame,
    read_frame,
)
from repro.explore.distrib import job_to_dict, plan_shards
from repro.explore.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.explore.scenarios import ScenarioSpec
from repro.explore.store import (
    StoreError,
    decode_shard_block,
    encode_shard_block,
)
from repro.explore.worker import CampaignWorker, InProcessClient
from tests.explore.conftest import FlakyClient
from tests.explore.test_coordinator import (
    fake_jobs,
    scripted_executor,
    submit_fake,
)


# -- hypothesis: frame codec round trips -------------------------------------

frame_kinds = st.integers(min_value=0, max_value=255)
payloads = st.binary(max_size=4096)


class TestFrameCodec:
    @settings(max_examples=100, deadline=None)
    @given(kind=frame_kinds, payload=payloads)
    def test_round_trip(self, kind, payload):
        reader = io.BytesIO(encode_frame(kind, payload))
        assert read_frame(reader) == (kind, payload)
        assert read_frame(reader) is None  # clean EOF after the frame

    @settings(max_examples=100, deadline=None)
    @given(kind=frame_kinds, payload=st.binary(min_size=1, max_size=512),
           data=st.data())
    def test_any_truncation_is_detected(self, kind, payload, data):
        encoded = encode_frame(kind, payload)
        cut = data.draw(st.integers(min_value=1, max_value=len(encoded) - 1))
        with pytest.raises(FrameError, match="mid-frame|truncated"):
            read_frame(io.BytesIO(encoded[:cut]))

    def test_oversized_length_prefix_rejected_without_reading_it(self):
        header = struct.pack(">IB", MAX_FRAME_BYTES + 1, FRAME_KIND_JSON)
        with pytest.raises(FrameError, match="exceeds"):
            read_frame(io.BytesIO(header))
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame(FRAME_KIND_JSON, b"x" * (MAX_FRAME_BYTES + 1))

    @settings(max_examples=50, deadline=None)
    @given(meta=st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.one_of(st.integers(min_value=-10**9, max_value=10**9),
                  st.text(max_size=20), st.booleans()),
        max_size=5),
        block=st.binary(max_size=2048))
    def test_block_frame_round_trip(self, meta, block):
        frame = encode_block_frame(meta, block)
        read = read_frame(io.BytesIO(frame))
        assert read is not None and read[0] == FRAME_KIND_BLOCK
        decoded_meta, decoded_block = decode_block_payload(read[1])
        assert decoded_meta == meta
        assert decoded_block == block

    def test_block_payload_defects_are_named(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_block_payload(b"\x00\x00")
        with pytest.raises(FrameError, match="truncated"):
            decode_block_payload(struct.pack(">I", 10) + b"{}")
        bad_json = struct.pack(">I", 3) + b"nop"
        with pytest.raises(FrameError, match="malformed"):
            decode_block_payload(bad_json)
        not_object = json.dumps([1]).encode()
        with pytest.raises(FrameError, match="not a JSON object"):
            decode_block_payload(
                struct.pack(">I", len(not_object)) + not_object)


# -- hypothesis: shard-block codec round trips --------------------------------

column_names = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8)

scalar_strategies = {
    "int": st.integers(min_value=-2**53, max_value=2**53),
    "float": st.floats(allow_nan=False, allow_infinity=False, width=64),
    "bool": st.booleans(),
    # Trailing NULs are rejected by the encoder (numpy's fixed-width
    # unicode would drop them silently); the reject path has its own test.
    "str": st.text(max_size=12).filter(lambda s: not s.endswith("\x00")),
}


@st.composite
def shard_documents(draw):
    """An arbitrary shard-result-shaped document: unique column names, one
    scalar dtype per column, 1..16 rows."""
    names = draw(st.lists(column_names, min_size=1, max_size=5, unique=True))
    kinds = [draw(st.sampled_from(sorted(scalar_strategies)))
             for _ in names]
    row_count = draw(st.integers(min_value=1, max_value=16))
    rows = [
        {name: draw(scalar_strategies[kind])
         for name, kind in zip(names, kinds)}
        for _ in range(row_count)
    ]
    return {
        "schema_version": 1,
        "shard": {"index": draw(st.integers(0, 7)), "count": 8},
        "columns": names,
        "row_count": row_count,
        "rows": rows,
    }


class TestShardBlockCodec:
    @settings(max_examples=80, deadline=None)
    @given(document=shard_documents())
    def test_round_trip_is_json_identical(self, document):
        block = decode_shard_block(encode_shard_block(document))
        assert block.row_count == document["row_count"]
        assert json.dumps(block.document(), sort_keys=False) == \
            json.dumps(document, sort_keys=False)

    @settings(max_examples=60, deadline=None)
    @given(document=shard_documents(), data=st.data())
    def test_any_truncation_is_rejected(self, document, data):
        encoded = encode_shard_block(document)
        cut = data.draw(st.integers(min_value=0, max_value=len(encoded) - 1))
        with pytest.raises(StoreError):
            decode_shard_block(encoded[:cut])

    @settings(max_examples=60, deadline=None)
    @given(document=shard_documents(), data=st.data())
    def test_corrupt_archive_bytes_are_rejected(self, document, data):
        encoded = bytearray(encode_shard_block(document))
        header_len = struct.unpack_from(">I", encoded, 4)[0]
        archive_start = 4 + 4 + header_len
        # Corrupt the npz central directory: zero out a tail byte.
        position = data.draw(st.integers(min_value=len(encoded) - 16,
                                         max_value=len(encoded) - 1))
        if encoded[position] == 0:
            encoded[position] = 0xFF
        else:
            encoded[position] = 0
        assert position >= archive_start  # the tail is inside the archive
        try:
            block = decode_shard_block(bytes(encoded))
        except StoreError:
            return  # rejected with a clear error — the expected outcome
        # A flipped byte the zip reader tolerates must still decode to the
        # identical arrays; silent corruption is the one forbidden outcome.
        assert json.dumps(block.document(), sort_keys=False) == \
            json.dumps(document, sort_keys=False)

    def test_defects_are_named(self):
        document = scripted_executor(plan_shards(fake_jobs(4), 2)[0])
        encoded = encode_shard_block(document)
        with pytest.raises(StoreError, match="bad magic"):
            decode_shard_block(b"XXXX" + encoded[4:])
        with pytest.raises(StoreError, match="no row list"):
            encode_shard_block({"columns": ["a"]})
        with pytest.raises(StoreError, match="declares no columns"):
            encode_shard_block({"columns": [], "rows": []})
        with pytest.raises(StoreError, match="missing column"):
            encode_shard_block({"columns": ["a", "b"], "rows": [{"a": 1}]})
        with pytest.raises(StoreError, match="NUL-terminated"):
            encode_shard_block({"columns": ["name"], "row_count": 1,
                                "rows": [{"name": "lossy\x00"}]})
        # A lying row_count in the header is caught against the arrays.
        tampered = dict(document)
        tampered["row_count"] = document["row_count"] + 1
        lying = encode_shard_block({**tampered,
                                    "rows": document["rows"]})
        with pytest.raises(StoreError, match="declares"):
            decode_shard_block(lying)


# -- wire regressions: protocol errors are answered, not dropped -------------

@pytest.fixture
def live_server():
    coordinator = Coordinator(lease_timeout=600.0)
    server = CoordinatorServer(coordinator)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield coordinator, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    coordinator.close()


def raw_connect(server):
    connection = socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10.0)
    return connection


class TestProtocolErrors:
    def expect_error_line(self, connection, match):
        with connection.makefile("rb") as reader:
            line = reader.readline()
        response = json.loads(line)
        assert response["ok"] is False
        assert match in response["error"]
        return response

    def test_unknown_preamble_gets_structured_answer(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(b"GET / HTTP/1.1\r\n\r\n")
            connection.shutdown(socket.SHUT_WR)
            self.expect_error_line(connection, "unrecognized protocol")
        assert coordinator.status()["protocol_errors"] == 1

    def test_malformed_v1_json_gets_structured_answer(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(b'{"op": not-json\n')
            self.expect_error_line(connection, "malformed JSON")
        assert coordinator.status()["protocol_errors"] == 1

    def test_oversized_frame_is_answered_then_closed(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(PROTOCOL_MAGIC)
            connection.sendall(struct.pack(">IB", MAX_FRAME_BYTES + 1,
                                           FRAME_KIND_JSON))
            with connection.makefile("rb") as reader:
                frame = read_frame(reader)
                assert frame is not None
                response = json.loads(frame[1])
                assert response["ok"] is False
                assert "exceeds" in response["error"]
                # Framing is unrecoverable: the server closes the session.
                assert reader.read(1) == b""
        assert coordinator.status()["protocol_errors"] == 1

    def test_session_survives_a_malformed_json_frame(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(PROTOCOL_MAGIC)
            connection.sendall(encode_frame(FRAME_KIND_JSON, b"not json"))
            with connection.makefile("rb") as reader:
                frame = read_frame(reader)
                response = json.loads(frame[1])
                assert response["ok"] is False
                assert "malformed JSON frame" in response["error"]
                # Same socket, next frame: the session is still alive.
                connection.sendall(encode_json_frame({"op": "status"}))
                frame = read_frame(reader)
                response = json.loads(frame[1])
                assert response["ok"] is True
        status = response["status"]
        assert status["protocol_errors"] == 1

    def test_unknown_frame_kind_is_answered_and_survivable(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(PROTOCOL_MAGIC)
            connection.sendall(encode_frame(0x7F, b"??"))
            with connection.makefile("rb") as reader:
                response = json.loads(read_frame(reader)[1])
                assert response["ok"] is False
                assert "unknown frame kind" in response["error"]
                connection.sendall(encode_json_frame({"op": "status"}))
                assert json.loads(read_frame(reader)[1])["ok"] is True
        assert coordinator.status()["protocol_errors"] == 1

    def test_protocol_errors_total_reaches_the_exporter(self, live_server):
        coordinator, server = live_server
        with raw_connect(server) as connection:
            connection.sendall(b"BOGUS")
            connection.shutdown(socket.SHUT_WR)
            connection.recv(4096)
        rendered = coordinator.metrics.render()
        assert "coordinator_protocol_errors_total 1" in rendered


# -- batching: multi-span leases, coalesced heartbeats, RTT aggregation ------

class TestBatchedOps:
    def test_request_leases_grants_up_to_count(self, tmp_path):
        coordinator = Coordinator(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 10, 4)
        try:
            granted = coordinator.request_leases("w0", 3)
            assert len(granted) == 3
            assert [shard.index for _, shard in granted] == [0, 1, 2]
            granted = coordinator.request_leases("w0", 3)
            assert len(granted) == 1  # only one span left
            assert coordinator.request_leases("w0", 3) == []
        finally:
            coordinator.close()

    def test_heartbeat_many_mixes_live_and_unknown(self, tmp_path):
        coordinator = Coordinator(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 10, 4)
        try:
            granted = coordinator.request_leases("w0", 2)
            ids = [lease.lease_id for lease, _ in granted]
            live = coordinator.heartbeat_many(ids + [999])
            assert live == {ids[0]: True, ids[1]: True, 999: False}
        finally:
            coordinator.close()

    def test_worker_rtt_histograms_delta_merge(self):
        coordinator = Coordinator(lease_timeout=60.0)
        try:
            local = MetricsRegistry().histogram(
                "worker_heartbeat_rtt_seconds", "t", LATENCY_BUCKETS)
            local.observe(0.004)
            local.observe(0.004)
            coordinator.record_worker_rtt("w0", local.snapshot())
            # A cumulative retransmit plus one new observation: only the
            # delta lands.
            local.observe(0.3)
            coordinator.record_worker_rtt("w0", local.snapshot())
            coordinator.record_worker_rtt("w0", local.snapshot())  # no-op
            aggregated = coordinator.metrics.get(
                "worker_heartbeat_rtt_seconds")
            snapshot = aggregated.snapshot(worker="w0")
            assert snapshot["count"] == 3
            assert snapshot["sum"] == pytest.approx(0.308)
        finally:
            coordinator.close()

    def test_worker_restart_resets_the_rtt_baseline(self):
        coordinator = Coordinator(lease_timeout=60.0)
        try:
            local = MetricsRegistry().histogram(
                "worker_heartbeat_rtt_seconds", "t", LATENCY_BUCKETS)
            local.observe(0.004)
            local.observe(0.004)
            coordinator.record_worker_rtt("w0", local.snapshot())
            fresh = MetricsRegistry().histogram(
                "worker_heartbeat_rtt_seconds", "t", LATENCY_BUCKETS)
            fresh.observe(0.004)  # non-monotone vs the last snapshot
            coordinator.record_worker_rtt("w0", fresh.snapshot())
            snapshot = coordinator.metrics.get(
                "worker_heartbeat_rtt_seconds").snapshot(worker="w0")
            assert snapshot["count"] == 3  # 2 + restarted worker's 1
        finally:
            coordinator.close()

    def test_foreign_bucket_bounds_are_rejected(self):
        coordinator = Coordinator(lease_timeout=60.0)
        try:
            with pytest.raises(CoordinatorError, match="bucket bounds"):
                coordinator.record_worker_rtt(
                    "w0", {"bounds": [1.0], "counts": [0, 0], "sum": 0.0,
                           "count": 0})
        finally:
            coordinator.close()

    def test_prefetch_worker_drains_in_batches(self, tmp_path):
        coordinator = Coordinator(lease_timeout=60.0)
        campaign_id, jobs, paths = submit_fake(coordinator, tmp_path, 12, 6)
        try:
            worker = CampaignWorker(
                InProcessClient(coordinator), "batcher", max_idle_polls=1,
                heartbeat_interval=0, prefetch=4,
                executor=scripted_executor, sleep=lambda seconds: None)
            stats = worker.run()
            assert stats["completed"] == 6
            assert coordinator.campaign_progress(campaign_id)["complete"]
            assert paths["json"].read_bytes() == \
                paths["mono_json"].read_bytes()
        finally:
            coordinator.close()


# -- reconnect with bounded exponential backoff ------------------------------

class TestWorkerReconnect:
    def make_worker(self, coordinator, failures, tries, sleeps):
        flaky = FlakyClient(InProcessClient(coordinator), failures=failures)
        return flaky, CampaignWorker(
            flaky, "flaky", max_idle_polls=1, heartbeat_interval=0,
            reconnect_tries=tries, reconnect_backoff=0.5,
            executor=scripted_executor, sleep=sleeps.append)

    def test_transient_partition_is_survived(self, tmp_path):
        coordinator = Coordinator(lease_timeout=60.0)
        campaign_id, jobs, paths = submit_fake(coordinator, tmp_path, 8, 4)
        sleeps = []
        try:
            flaky, worker = self.make_worker(coordinator, 2, 3, sleeps)
            stats = worker.run()
            assert stats["completed"] == 4
            assert stats["reconnects"] == 2
            # Exponential: 0.5, then 1.0 (reset on success would restart).
            assert sleeps[:2] == [0.5, 1.0]
            assert coordinator.campaign_progress(campaign_id)["complete"]
            assert paths["json"].read_bytes() == \
                paths["mono_json"].read_bytes()
        finally:
            coordinator.close()

    def test_budget_exhaustion_abandons_the_leases(self, tmp_path):
        coordinator = Coordinator(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 8, 4)
        sleeps = []
        try:
            flaky, worker = self.make_worker(coordinator, 10, 2, sleeps)
            stats = worker.run()
            assert stats["completed"] == 0
            assert stats["reconnects"] == 2
            assert sleeps == [0.5, 1.0]
        finally:
            coordinator.close()

    def test_default_budget_zero_exits_immediately(self, tmp_path):
        """The historical contract: without opt-in, one connection error
        still means an immediate, clean exit — and no 'reconnects' key."""
        coordinator = Coordinator(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 8, 4)
        try:
            flaky = FlakyClient(InProcessClient(coordinator), failures=1)
            worker = CampaignWorker(flaky, "fragile", max_idle_polls=1,
                                    heartbeat_interval=0,
                                    executor=scripted_executor,
                                    sleep=lambda seconds: None)
            stats = worker.run()
            assert stats == {"leases": 0, "completed": 0, "stale": 0,
                             "idle_polls": 0}
        finally:
            coordinator.close()


# -- differential: columnar == JSON == monolithic over real sockets ----------

AXES = {"core_count": [1, 2], "tam_width_bits": [16, 32]}
BASE = ScenarioSpec(name="base", patterns_per_core=16, seed=3)


@pytest.fixture(scope="module")
def monolithic_reference(tmp_path_factory):
    campaign = campaign_from_axes(AXES, base=BASE)
    tmp_path = tmp_path_factory.mktemp("monolithic-v2")
    run = campaign.run()
    json_path = tmp_path / "mono.json"
    csv_path = tmp_path / "mono.csv"
    run.write_json(json_path, deterministic=True)
    run.write_csv(csv_path, deterministic=True)
    return {"jobs": campaign.jobs(), "json": json_path.read_bytes(),
            "csv": csv_path.read_bytes()}


class TestDifferentialColumnarPayloads:
    @pytest.mark.parametrize("worker_count", [1, 2, 4])
    def test_columnar_json_and_monolithic_agree_with_one_kill(
            self, worker_count, tmp_path, monolithic_reference):
        artifacts = {}
        for payload in ("columnar", "json"):
            coordinator = Coordinator(lease_timeout=0.5)
            server = CoordinatorServer(coordinator)
            thread = threading.Thread(target=server.serve_forever,
                                      kwargs={"poll_interval": 0.05},
                                      daemon=True)
            thread.start()
            json_path = tmp_path / f"{payload}.json"
            csv_path = tmp_path / f"{payload}.csv"
            try:
                victim = CoordinatorSession(port=server.port)
                submitter = CoordinatorClient(port=server.port)
                submitter.submit(
                    [job_to_dict(job)
                     for job in monolithic_reference["jobs"]], 5,
                    json_path=str(json_path), csv_path=str(csv_path))
                # The victim takes one lease and is never heard from again;
                # the survivors pick the span up after the lease times out.
                granted = victim.request_lease("victim")
                assert "lease" in granted
                victim.close()
                workers = [
                    CampaignWorker(
                        CoordinatorSession(port=server.port,
                                           json_payloads=payload == "json",
                                           block_min_rows=0),
                        f"{payload}-w{index}", poll_interval=0.05,
                        max_idle_polls=40, prefetch=2)
                    for index in range(worker_count)
                ]
                threads = [threading.Thread(target=worker.run)
                           for worker in workers]
                for worker_thread in threads:
                    worker_thread.start()
                for worker_thread in threads:
                    worker_thread.join(timeout=60.0)
                status = submitter.status()
                assert status["completed_spans"] == 5
                assert status["steals"] == 1
                artifacts[payload] = (json_path.read_bytes(),
                                      csv_path.read_bytes())
            finally:
                server.shutdown()
                server.server_close()
                thread.join(timeout=5.0)
                coordinator.close()
        assert artifacts["columnar"] == artifacts["json"]
        assert artifacts["columnar"] == (monolithic_reference["json"],
                                         monolithic_reference["csv"])
