"""Tests of the distribution subsystem: deterministic shard planning, shard
execution on the campaign pool path, and provenance-validated artifact
merging.  The differential core: shard → run → merge is bitwise identical to
the monolithic single-host run for even and uneven shard counts."""

import json
from dataclasses import replace

import pytest

from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    SCHEMA_VERSION,
    campaign_from_axes,
    result_columns,
)
from repro.explore.distrib import (
    DISTRIB_SCHEMA_VERSION,
    CampaignShard,
    MergeError,
    ShardRun,
    job_from_dict,
    job_to_dict,
    load_artifact,
    merge_artifacts,
    merge_shard_documents,
    plan_shards,
    run_shard,
    space_fingerprint,
    write_merged_csv,
    write_merged_json,
)
from repro.explore.scenarios import ScenarioSpec, spec_from_dict, spec_to_dict


def small_campaign(**axes) -> Campaign:
    axes = axes or {"core_count": [1, 2], "tam_width_bits": [16, 32]}
    return campaign_from_axes(
        axes, base=ScenarioSpec(name="base", patterns_per_core=16, seed=3))


def fake_jobs(count: int):
    """Pure-data jobs (never simulated) for planner/merger unit tests."""
    return [
        CampaignJob(spec=ScenarioSpec(name=f"s{index:02d}", core_count=1,
                                      patterns_per_core=8, seed=index + 1),
                    schedule="sequential")
        for index in range(count)
    ]


def fake_outcome(job: CampaignJob, value: int) -> CampaignOutcome:
    return CampaignOutcome(
        spec=job.spec, schedule=job.schedule, phase_count=1, task_count=1,
        estimated_cycles=value, test_length_cycles=value * 10,
        peak_tam_utilization=0.5, avg_tam_utilization=0.25,
        peak_power=2.0, avg_power=1.0, simulated_activations=value * 3,
    )


def fake_shard_documents(job_count: int, shard_count: int):
    """Shard artifacts over fake outcomes, JSON-round-tripped like files."""
    jobs = fake_jobs(job_count)
    documents = []
    for shard in plan_shards(jobs, shard_count):
        run = CampaignRun(outcomes=[fake_outcome(job, shard.start + offset)
                                    for offset, job in enumerate(shard.jobs)])
        documents.append(json.loads(json.dumps(
            ShardRun(shard=shard, run=run).as_document())))
    return documents


class TestSpecSerialization:
    def test_spec_round_trips_losslessly(self):
        spec = ScenarioSpec(name="rt", core_count=2, patterns_per_core=40,
                            seed=9, schedules=("greedy",),
                            config_overrides=(("burst_patterns", 8),))
        again = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert again == spec
        assert hash(again) == hash(spec)

    def test_tuple_valued_overrides_survive_the_round_trip(self):
        # JSON turns tuples into lists; reconstruction must undo that, or
        # the spec comes back unequal and unhashable (breaking the campaign
        # cache and the adaptive memo on resume).
        spec = ScenarioSpec(name="rt", config_overrides=(
            ("lanes", (1, 2, (3, 4))), ("burst_patterns", 8)))
        again = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert again == spec
        assert hash(again) == hash(spec)

    def test_incomplete_spec_document_rejected_with_value_error(self):
        with pytest.raises(ValueError, match="incomplete scenario spec"):
            spec_from_dict({"kind": "generated"})

    def test_unknown_fields_rejected(self):
        document = spec_to_dict(ScenarioSpec(name="x"))
        document["frequency"] = 1
        with pytest.raises(ValueError, match="unknown scenario spec fields"):
            spec_from_dict(document)

    def test_non_json_overrides_rejected_with_clear_error(self):
        from repro.kernel import NS, SimTime

        spec = ScenarioSpec(name="x", kind="jpeg",
                            config_overrides=(("clock_period", SimTime(20, NS)),))
        with pytest.raises(ValueError, match="config_overrides"):
            spec_to_dict(spec)

    def test_job_round_trips(self):
        job = fake_jobs(1)[0]
        assert job_from_dict(json.loads(json.dumps(job_to_dict(job)))) == job


class TestPlanning:
    def test_shards_tile_the_job_list_in_order(self):
        jobs = fake_jobs(10)
        for count in (1, 2, 3, 7, 10):
            shards = plan_shards(jobs, count)
            assert len(shards) == count
            cursor = 0
            collected = []
            for index, shard in enumerate(shards):
                assert shard.index == index
                assert shard.count == count
                assert shard.start == cursor
                assert shard.stop - shard.start == len(shard.jobs) >= 1
                assert shard.total_jobs == len(jobs)
                collected.extend(shard.jobs)
                cursor = shard.stop
            assert cursor == len(jobs)
            assert collected == jobs

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        sizes = [shard.job_count for shard in plan_shards(fake_jobs(10), 7)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) == 1

    def test_planning_is_deterministic(self):
        jobs = fake_jobs(6)
        assert plan_shards(jobs, 3) == plan_shards(jobs, 3)

    def test_plan_accepts_a_campaign(self):
        campaign = small_campaign()
        shards = plan_shards(campaign, 2)
        assert [job for shard in shards for job in shard.jobs] == campaign.jobs()

    def test_fingerprint_tracks_the_scenario_space(self):
        jobs = fake_jobs(4)
        assert space_fingerprint(jobs) == space_fingerprint(list(jobs))
        other = list(jobs)
        other[0] = replace(other[0], schedule="greedy")
        assert space_fingerprint(other) != space_fingerprint(jobs)
        # Every shard of one plan carries the same fingerprint.
        assert len({s.fingerprint for s in plan_shards(jobs, 2)}) == 1

    def test_invalid_counts_rejected(self):
        jobs = fake_jobs(3)
        with pytest.raises(ValueError, match=">= 1"):
            plan_shards(jobs, 0)
        with pytest.raises(ValueError, match="cannot split"):
            plan_shards(jobs, 4)
        with pytest.raises(ValueError, match="empty"):
            plan_shards([], 1)

    def test_shard_spec_json_round_trip(self, tmp_path):
        shard = plan_shards(fake_jobs(5), 2)[1]
        path = tmp_path / "shard.json"
        shard.write_json(path)
        again = CampaignShard.read_json(path)
        assert again == shard
        assert again.jobs == shard.jobs

    def test_shard_spec_version_and_span_validation(self):
        document = plan_shards(fake_jobs(4), 2)[0].as_document()
        wrong = dict(document, schema_version=SCHEMA_VERSION + 1)
        with pytest.raises(MergeError, match="schema_version"):
            CampaignShard.from_document(wrong)
        wrong = dict(document, distrib_schema_version=DISTRIB_SCHEMA_VERSION + 1)
        with pytest.raises(MergeError, match="distrib_schema_version"):
            CampaignShard.from_document(wrong)
        truncated = dict(document, jobs=document["jobs"][:-1])
        with pytest.raises(ValueError, match="declares the span"):
            CampaignShard.from_document(truncated)


class TestDifferentialMerge:
    """Sharded execution merged back is bitwise the single-host run."""

    @pytest.fixture(scope="class")
    def campaign(self):
        return small_campaign()

    @pytest.fixture(scope="class")
    def monolithic(self, campaign):
        return campaign.run(workers=1)

    @pytest.mark.parametrize("count", [1, 2, 4, 7])
    def test_merged_artifacts_bitwise_equal_monolithic(self, campaign,
                                                       monolithic, count,
                                                       tmp_path):
        # 8 jobs over 7 shards exercises the maximally uneven split.
        paths = []
        for shard in plan_shards(campaign, count):
            path = tmp_path / f"shard{shard.index}.json"
            run_shard(shard).write_json(path)
            paths.append(path)
        merged = merge_artifacts(paths)

        mono_json = tmp_path / "mono.json"
        mono_csv = tmp_path / "mono.csv"
        monolithic.write_json(mono_json, deterministic=True)
        monolithic.write_csv(mono_csv, deterministic=True)

        merged_json = tmp_path / "merged.json"
        merged_csv = tmp_path / "merged.csv"
        write_merged_json(merged, merged_json)
        write_merged_csv(merged, merged_csv)
        assert merged_json.read_bytes() == mono_json.read_bytes()
        assert merged_csv.read_bytes() == mono_csv.read_bytes()

    def test_shard_rows_are_the_monolithic_slice(self, campaign, monolithic):
        shards = plan_shards(campaign, 2)
        result = run_shard(shards[1])
        expected = monolithic.deterministic_rows()[shards[1].start:shards[1].stop]
        assert result.run.deterministic_rows() == expected

    def test_shard_artifact_embeds_provenance(self, campaign, tmp_path):
        shard = plan_shards(campaign, 4)[2]
        path = tmp_path / "shard.json"
        run_shard(shard).write_json(path)
        document = load_artifact(path)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["distrib_schema_version"] == DISTRIB_SCHEMA_VERSION
        assert document["shard"] == shard.provenance()
        assert document["columns"] == result_columns(deterministic=True)
        assert document["row_count"] == shard.job_count

    def test_timing_artifacts_keep_timing_columns(self, campaign):
        shard = plan_shards(campaign, 4)[0]
        document = run_shard(shard).as_document(deterministic=False)
        assert document["columns"] == result_columns(deterministic=False)
        assert "wall_seconds" in document

    def test_pool_executed_shards_merge_identically(self, campaign,
                                                    monolithic):
        documents = []
        for shard in plan_shards(campaign, 2):
            documents.append(json.loads(json.dumps(
                run_shard(shard, workers=2).as_document())))
        merged = merge_shard_documents(documents)
        assert merged == json.loads(json.dumps(
            monolithic.as_document(deterministic=True)))


class TestMergeValidation:
    def test_merge_of_nothing_rejected(self):
        with pytest.raises(MergeError, match="no shard artifacts"):
            merge_shard_documents([])

    def test_schema_version_mismatch_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[1]["schema_version"] = SCHEMA_VERSION - 1
        with pytest.raises(MergeError, match="schema_version"):
            merge_shard_documents(documents)

    def test_distrib_version_mismatch_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[0]["distrib_schema_version"] = DISTRIB_SCHEMA_VERSION + 1
        with pytest.raises(MergeError, match="distrib_schema_version"):
            merge_shard_documents(documents)

    def test_adaptive_artifact_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[0]["adaptive_schema_version"] = 2
        with pytest.raises(MergeError, match="adaptive artifact"):
            merge_shard_documents(documents)

    def test_plain_campaign_artifact_rejected(self):
        documents = fake_shard_documents(2, 2)
        del documents[0]["shard"]
        with pytest.raises(MergeError, match="no shard provenance"):
            merge_shard_documents(documents)

    def test_shard_spec_file_rejected_with_hint(self):
        # Passing the plan files (shard *specs*) to merge instead of the
        # result artifacts must name the mistake, not KeyError.
        documents = [shard.as_document() for shard in plan_shards(fake_jobs(4), 2)]
        with pytest.raises(MergeError, match="shard \\*spec\\* file"):
            merge_shard_documents(documents)

    def test_non_object_artifact_rejected(self):
        with pytest.raises(MergeError, match="not a JSON object"):
            merge_shard_documents([[], fake_shard_documents(2, 2)[0]])

    def test_fingerprint_mismatch_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[1]["shard"]["fingerprint"] = "0" * 64
        with pytest.raises(MergeError, match="fingerprints disagree"):
            merge_shard_documents(documents)

    def test_overlapping_shards_rejected(self):
        documents = fake_shard_documents(4, 2)
        with pytest.raises(MergeError, match="overlapping shards"):
            merge_shard_documents([documents[0], documents[0], documents[1]])

    def test_missing_shard_rejected(self):
        documents = fake_shard_documents(6, 3)
        with pytest.raises(MergeError, match="missing shard index"):
            merge_shard_documents([documents[0], documents[2]])

    def test_shard_count_mismatch_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[1]["shard"]["count"] = 3
        with pytest.raises(MergeError, match="shard counts disagree"):
            merge_shard_documents(documents)

    def test_span_overlap_rejected(self):
        documents = fake_shard_documents(6, 2)
        documents[1]["shard"]["start"] -= 1
        documents[1]["rows"].insert(0, dict(documents[1]["rows"][0]))
        documents[1]["row_count"] += 1
        with pytest.raises(MergeError, match="overlapping shard spans"):
            merge_shard_documents(documents)

    def test_span_gap_rejected(self):
        documents = fake_shard_documents(6, 2)
        documents[1]["shard"]["start"] += 1
        documents[1]["rows"] = documents[1]["rows"][1:]
        documents[1]["row_count"] -= 1
        with pytest.raises(MergeError, match="gapped shard spans"):
            merge_shard_documents(documents)

    def test_row_count_span_mismatch_rejected(self):
        documents = fake_shard_documents(4, 2)
        documents[0]["rows"] = documents[0]["rows"][:-1]
        with pytest.raises(MergeError, match="row"):
            merge_shard_documents(documents)

    def test_mixed_deterministic_and_timing_artifacts_rejected(self):
        jobs = fake_jobs(4)
        shards = plan_shards(jobs, 2)
        runs = [CampaignRun(outcomes=[fake_outcome(job, offset)
                                      for offset, job in enumerate(shard.jobs)])
                for shard in shards]
        documents = [ShardRun(shards[0], runs[0]).as_document(deterministic=True),
                     ShardRun(shards[1], runs[1]).as_document(deterministic=False)]
        with pytest.raises(MergeError, match="column list"):
            merge_shard_documents(documents)

    def test_merge_errors_are_value_errors(self):
        # The CLI's exit-code handling keys on ValueError.
        assert issubclass(MergeError, ValueError)


@pytest.mark.slow
class TestDistribAtScale:
    def test_large_grid_sharded_over_pool_workers_merges_bitwise(self,
                                                                 tmp_path):
        campaign = campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [8, 16, 32],
             "compression_ratio": [10.0, 100.0]},
            base=ScenarioSpec(name="base", patterns_per_core=32, seed=5),
        )
        assert len(campaign) >= 24
        documents = []
        for shard in plan_shards(campaign, 4):
            # Each "host" runs its slice on its own worker pool.
            documents.append(json.loads(json.dumps(
                run_shard(shard, workers=2).as_document())))
        merged = merge_shard_documents(documents)
        monolithic = campaign.run(workers=2)
        mono_path, merged_path = tmp_path / "mono.json", tmp_path / "merged.json"
        monolithic.write_json(mono_path, deterministic=True)
        write_merged_json(merged, merged_path)
        assert merged_path.read_bytes() == mono_path.read_bytes()


class TestPartialMerge:
    """merge --partial: recombine what exists, report the gaps."""

    def test_complete_set_with_partial_equals_full_merge(self):
        documents = fake_shard_documents(8, 3)
        assert merge_shard_documents(documents, partial=True) == \
            merge_shard_documents(documents)

    def test_missing_shard_merges_present_rows_and_reports_gaps(self):
        from repro.explore.distrib import replan_document

        documents = fake_shard_documents(9, 3)
        merged = merge_shard_documents([documents[0], documents[2]],
                                       partial=True)
        assert merged["row_count"] == 6
        # Present shards in shard order: spans [0, 3) and [6, 9).
        assert [row["estimated_cycles"] for row in merged["rows"]] == \
            [0, 1, 2, 6, 7, 8]
        block = merged["partial"]
        assert block["present"] == [0, 2]
        assert block["missing"] == [{"index": 1, "start": 3, "stop": 6}]
        assert block["total_jobs"] == 9
        replan = replan_document(merged)
        assert replan["missing"] == block["missing"]
        assert replan["fingerprint"] == block["fingerprint"]
        assert replan["kind"] == "replan"

    def test_partial_merge_of_single_shard(self):
        documents = fake_shard_documents(10, 4)
        merged = merge_shard_documents([documents[3]], partial=True)
        assert merged["row_count"] == len(documents[3]["rows"])
        assert [span["index"] for span in merged["partial"]["missing"]] == \
            [0, 1, 2]

    def test_partial_merge_still_validates_provenance(self):
        documents = fake_shard_documents(8, 4)
        tampered = dict(documents[1])
        tampered["shard"] = dict(tampered["shard"], fingerprint="0" * 64)
        with pytest.raises(MergeError, match="fingerprints disagree"):
            merge_shard_documents([documents[0], tampered], partial=True)
        with pytest.raises(MergeError, match="overlapping shards"):
            merge_shard_documents([documents[0], documents[0]], partial=True)

    def test_partial_merge_rejects_doctored_spans(self):
        # Span tampering is caught against the canonical i*M/N formula even
        # when the neighbouring shard is absent.
        documents = fake_shard_documents(8, 4)
        tampered = dict(documents[2])
        tampered["shard"] = dict(tampered["shard"], start=3, stop=5)
        tampered["rows"] = [documents[2]["rows"][0]] + documents[2]["rows"]
        tampered["row_count"] = 3
        with pytest.raises(MergeError, match="shard spans"):
            merge_shard_documents([documents[0], tampered], partial=True)

    def test_partial_merge_rejects_out_of_range_indexes(self):
        documents = fake_shard_documents(8, 4)
        tampered = dict(documents[0])
        tampered["shard"] = dict(tampered["shard"], index=7)
        with pytest.raises(MergeError, match="exceed"):
            merge_shard_documents([tampered], partial=True)

    def test_replan_of_a_complete_merge_is_an_error(self):
        from repro.explore.distrib import replan_document

        documents = fake_shard_documents(6, 2)
        merged = merge_shard_documents(documents, partial=True)
        assert "partial" not in merged
        with pytest.raises(ValueError, match="no gaps"):
            replan_document(merged)

    def test_regular_merge_still_rejects_missing_shards(self):
        documents = fake_shard_documents(6, 3)
        with pytest.raises(MergeError, match="missing shard index"):
            merge_shard_documents([documents[0], documents[2]])

    def test_rerunning_the_gap_completes_the_merge(self):
        # The re-plan worklist names exactly the shards whose rerun makes
        # the set complete — the partial-merge workflow end to end.
        campaign = small_campaign()
        shards = plan_shards(campaign, 3)
        documents = [json.loads(json.dumps(run_shard(s).as_document()))
                     for s in (shards[0], shards[2])]
        merged = merge_shard_documents(documents, partial=True)
        missing = merged["partial"]["missing"]
        assert [span["index"] for span in missing] == [1]
        rerun = json.loads(json.dumps(
            run_shard(shards[missing[0]["index"]]).as_document()))
        complete = merge_shard_documents(documents + [rerun], partial=True)
        mono = campaign.run().as_document(deterministic=True)
        assert json.dumps(complete) == json.dumps(mono)


class TestMergePlanning:
    """plan_merge: the header-level validation pass behind both the
    in-memory merge and the streaming store merge."""

    def test_every_duplicate_index_is_listed_once(self):
        # Regression: duplicate detection was an O(n^2) per-element
        # .count() scan; the Counter pass must still report each
        # duplicated index exactly once, sorted.
        documents = fake_shard_documents(8, 4)
        with pytest.raises(MergeError,
                           match=r"index\(es\) \[0, 2\] supplied more than "
                                 r"once"):
            merge_shard_documents([documents[0], documents[0], documents[1],
                                   documents[2], documents[2], documents[2],
                                   documents[3]])

    def test_plan_validates_rowless_headers(self):
        from repro.explore.distrib import plan_merge

        documents = fake_shard_documents(6, 3)
        headers = [{key: value for key, value in document.items()
                    if key != "rows"} for document in documents]
        row_counts = [document["row_count"] for document in documents]
        plan = plan_merge(headers, row_counts=row_counts)
        assert plan.count == 3
        assert plan.row_count == 6
        assert [headers[position]["shard"]["index"]
                for position in plan.order] == [0, 1, 2]
        # The plan's header is exactly the merged document minus its rows.
        merged = merge_shard_documents(documents)
        expected = {key: value for key, value in merged.items()
                    if key not in ("row_count", "rows")}
        assert plan.header() == expected
        assert list(plan.header()) == list(expected)

    def test_plan_rejects_headers_without_row_counts(self):
        from repro.explore.distrib import plan_merge

        documents = fake_shard_documents(4, 2)
        headers = [{key: value for key, value in document.items()
                    if key != "rows"} for document in documents]
        with pytest.raises(MergeError, match="no result rows"):
            plan_merge(headers)
