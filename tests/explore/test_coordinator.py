"""Tests of the live campaign coordinator and its worker loop.

The contract under test is the one the distribution subsystem already
pins for offline merges, extended to the live path: **whatever the fleet
does — dies mid-lease, heartbeats late, completes twice, partitions away —
the final regenerated artifacts are bitwise identical to the monolithic
single-host campaign run.**

Layout:

* ``TestIncrementalShardMerge`` — the streaming ingestion unit in
  isolation: out-of-order buffering, duplicate rejection, completeness.
* ``TestLeaseLifecycle`` — grant/heartbeat/expire/steal semantics against
  a :class:`~tests.explore.conftest.FakeClock`, no workers involved.
* ``TestFaultInjection`` — the scripted failure matrix from the issue:
  killed workers, delayed heartbeats, duplicated completions, queue
  partitions; every scenario byte-compares the artifacts.
* ``TestLeaseLifecycleProperties`` — Hypothesis drives arbitrary
  grant/complete/expire/heartbeat interleavings and checks the span
  partition invariant (each span is exactly one of pending/leased/
  completed) plus final bitwise identity.
* ``TestDifferentialRealExecution`` — real simulated campaigns through
  :class:`~repro.explore.worker.CampaignWorker` with 1/2/4/7 workers
  (including one killed mid-lease), fast sizes plus a slow-marked
  72-scenario case.
* ``TestSocketProtocol`` — the TCP server/client pair for real: threaded
  workers over localhost, protocol errors, shutdown.

Fake outcomes (pure data, never simulated) keep the fault matrix and the
property suite instant; the differential class pays for real simulation
once per worker-count.
"""

import json
import threading
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.campaign import (
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    campaign_from_axes,
)
from repro.explore.coordinator import (
    COORDINATOR_SCHEMA_VERSION,
    Coordinator,
    CoordinatorClient,
    CoordinatorError,
    CoordinatorServer,
)
from repro.explore.distrib import MergeError, ShardRun, job_to_dict, plan_shards
from repro.explore.metrics import (
    MetricsRegistry,
    MetricsServer,
    StructuredLog,
    read_log,
)
from repro.explore.report import format_coordinator_status
from repro.explore.scenarios import ScenarioSpec
from repro.explore.store import IncrementalShardMerge, write_document_json
from repro.explore.worker import CampaignWorker, InProcessClient
from tests.explore.conftest import (
    FakeClock,
    FlakyClient,
    parse_prometheus_text,
)


# -- pure-data campaign fixtures ---------------------------------------------

def fake_jobs(count: int):
    return [
        CampaignJob(spec=ScenarioSpec(name=f"s{index:02d}", core_count=1,
                                      patterns_per_core=8, seed=index + 1),
                    schedule="sequential")
        for index in range(count)
    ]


def fake_outcome(job: CampaignJob, value: int) -> CampaignOutcome:
    return CampaignOutcome(
        spec=job.spec, schedule=job.schedule, phase_count=1, task_count=1,
        estimated_cycles=value, test_length_cycles=value * 10,
        peak_tam_utilization=0.5, avg_tam_utilization=0.25,
        peak_power=2.0, avg_power=1.0, simulated_activations=value * 3,
    )


def scripted_executor(shard) -> dict:
    """What an honest worker would return for *shard*, without simulating:
    outcome values encode the global job index, JSON-round-tripped like the
    wire would."""
    run = CampaignRun(outcomes=[fake_outcome(job, shard.start + offset)
                                for offset, job in enumerate(shard.jobs)])
    return json.loads(json.dumps(
        ShardRun(shard=shard, run=run).as_document(deterministic=True)))


def write_monolithic(jobs, json_path, csv_path) -> None:
    """The single-host reference artifacts for the same fake outcomes."""
    run = CampaignRun(outcomes=[fake_outcome(job, index)
                                for index, job in enumerate(jobs)])
    run.write_json(json_path, deterministic=True)
    run.write_csv(csv_path, deterministic=True)


@pytest.fixture
def coordinator_factory(fake_clock):
    created = []

    def make(**kwargs):
        kwargs.setdefault("lease_timeout", 60.0)
        kwargs.setdefault("clock", fake_clock)
        coordinator = Coordinator(**kwargs)
        created.append(coordinator)
        return coordinator

    yield make
    for coordinator in created:
        coordinator.close()


def submit_fake(coordinator, tmp_path, job_count, shard_count, name="camp"):
    """Submit a fake campaign plus its monolithic reference artifacts.

    Returns ``(campaign_id, jobs, paths)`` where paths maps
    ``coordinated/monolithic`` × ``json/csv``.
    """
    jobs = fake_jobs(job_count)
    paths = {
        "json": tmp_path / f"{name}.json", "csv": tmp_path / f"{name}.csv",
        "mono_json": tmp_path / f"{name}-mono.json",
        "mono_csv": tmp_path / f"{name}-mono.csv",
    }
    write_monolithic(jobs, paths["mono_json"], paths["mono_csv"])
    campaign_id = coordinator.submit_jobs(
        jobs, shard_count, label=name,
        json_path=str(paths["json"]), csv_path=str(paths["csv"]))
    return campaign_id, jobs, paths


def assert_bitwise_identical(paths) -> None:
    assert paths["json"].read_bytes() == paths["mono_json"].read_bytes()
    assert paths["csv"].read_bytes() == paths["mono_csv"].read_bytes()


def scripted_worker(coordinator, name, **kwargs) -> CampaignWorker:
    """A no-thread, no-sleep worker over the in-process client."""
    kwargs.setdefault("max_idle_polls", 1)
    kwargs.setdefault("heartbeat_interval", 0)  # 0 disables the beat thread
    kwargs.setdefault("executor", scripted_executor)
    kwargs.setdefault("sleep", lambda seconds: None)
    client = kwargs.pop("client", None) or InProcessClient(coordinator)
    return CampaignWorker(client, name, **kwargs)


# -- streaming ingestion unit ------------------------------------------------

class TestIncrementalShardMerge:
    def make_merge(self, tmp_path, jobs, shard_count):
        shards = plan_shards(jobs, shard_count)
        documents = [scripted_executor(shard) for shard in shards]
        merge = IncrementalShardMerge(
            tmp_path / "store", count=shard_count,
            total_jobs=len(jobs), fingerprint=shards[0].fingerprint,
            columns=documents[0]["columns"])
        return merge, documents

    def test_out_of_order_arrival_buffers_then_drains_in_canonical_order(
            self, tmp_path):
        jobs = fake_jobs(10)
        merge, documents = self.make_merge(tmp_path, jobs, 4)
        merge.add_shard_document(documents[2])
        merge.add_shard_document(documents[3])
        assert merge.buffered_count == 2  # gap at 0: nothing appended yet
        merge.add_shard_document(documents[0])
        assert merge.buffered_count == 2  # 0 drained, 2..3 still wait on 1
        merge.add_shard_document(documents[1])
        assert merge.is_complete and merge.buffered_count == 0
        store = merge.finalize()
        out = tmp_path / "out.json"
        mono_json = tmp_path / "mono.json"
        write_document_json(store, out)
        write_monolithic(jobs, mono_json, tmp_path / "mono.csv")
        assert out.read_bytes() == mono_json.read_bytes()

    def test_duplicate_shard_rejected_as_double_completion(self, tmp_path):
        merge, documents = self.make_merge(tmp_path, fake_jobs(6), 3)
        merge.add_shard_document(documents[1])
        with pytest.raises(MergeError, match="double completion"):
            merge.add_shard_document(documents[1])
        assert merge.merged_count == 1  # the duplicate changed nothing

    def test_finalize_incomplete_names_the_missing_spans(self, tmp_path):
        merge, documents = self.make_merge(tmp_path, fake_jobs(6), 3)
        merge.add_shard_document(documents[0])
        with pytest.raises(MergeError,
                           match=r"missing shard index\(es\) \[1, 2\]"):
            merge.finalize()

    def test_foreign_document_rejected_without_state_change(self, tmp_path):
        merge, documents = self.make_merge(tmp_path, fake_jobs(6), 3)
        foreign = json.loads(json.dumps(documents[0]))
        foreign["shard"]["fingerprint"] = "0" * 64
        with pytest.raises(MergeError, match="fingerprint"):
            merge.add_shard_document(foreign)
        assert merge.merged_count == 0
        merge.add_shard_document(documents[0])  # the span is still open

    def test_metrics_and_log_record_every_drain(self, tmp_path):
        jobs = fake_jobs(10)
        shards = plan_shards(jobs, 4)
        documents = [scripted_executor(shard) for shard in shards]
        registry = MetricsRegistry()
        clock = FakeClock()
        log_path = tmp_path / "merge.log"
        log = StructuredLog(log_path, clock=clock)
        merge = IncrementalShardMerge(
            tmp_path / "store", count=4, total_jobs=len(jobs),
            fingerprint=shards[0].fingerprint,
            columns=documents[0]["columns"],
            metadata={"campaign": "c0001"},
            metrics=registry, log=log)
        merge.add_shard_document(documents[2])
        merge.add_shard_document(documents[3])
        assert registry.value("merge_rows_appended_total") == 0
        assert registry.value("merge_buffered_shards") == 2
        merge.add_shard_document(documents[0])  # drains shard 0 only
        merge.add_shard_document(documents[1])  # drains the backlog 1..3
        log.close()
        assert registry.value("merge_rows_appended_total") == len(jobs)
        assert registry.value("merge_buffered_shards") == 0
        histogram = registry.get("merge_drain_rows")
        assert histogram.count() == 2  # two passes actually appended rows
        assert histogram.sum() == len(jobs)
        events = read_log(log_path)
        assert [event["event"] for event in events] == ["merge-drain"] * 4
        assert [event["drained_shards"] for event in events] == [0, 0, 1, 3]
        assert [event["buffered"] for event in events] == [1, 2, 2, 0]
        assert all(event["campaign"] == "c0001" for event in events)


# -- lease lifecycle against the fake clock ----------------------------------

class TestLeaseLifecycle:
    def test_grant_execute_complete_round_trip(self, coordinator_factory,
                                               tmp_path):
        coordinator = coordinator_factory()
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 8, 3)
        while True:
            granted = coordinator.request_lease("w1")
            if granted is None:
                break
            lease, shard = granted
            assert lease.worker == "w1"
            assert coordinator.complete_lease(
                lease.lease_id, scripted_executor(shard))
        progress = coordinator.campaign_progress(campaign_id)
        assert progress["complete"] and progress["steals"] == 0
        assert_bitwise_identical(paths)

    def test_heartbeat_extends_the_deadline(self, coordinator_factory,
                                            fake_clock, tmp_path):
        coordinator = coordinator_factory(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 4, 2)
        lease, shard = coordinator.request_lease("slow")
        for _ in range(5):  # 5 × 50 s, alive the whole time
            fake_clock.advance(50)
            assert coordinator.heartbeat(lease.lease_id) is True
        assert coordinator.complete_lease(lease.lease_id,
                                          scripted_executor(shard)) is True
        assert coordinator.status()["steals"] == 0

    def test_expired_lease_is_stolen_and_regranted(self, coordinator_factory,
                                                   fake_clock, tmp_path):
        coordinator = coordinator_factory(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 4, 2)
        lease, shard = coordinator.request_lease("dead")
        fake_clock.advance(61)
        regrant, reshard = coordinator.request_lease("live")
        assert regrant.shard_index == lease.shard_index  # stolen span first
        assert reshard.as_document() == shard.as_document()
        assert coordinator.heartbeat(lease.lease_id) is False  # old grant
        assert coordinator.heartbeat(regrant.lease_id) is True
        assert coordinator.status()["steals"] == 1

    def test_completion_from_a_stolen_lease_wins_if_first(
            self, coordinator_factory, fake_clock, tmp_path):
        # The presumed-dead worker was merely slow: its result arrives after
        # the steal but before the re-run finishes.  First valid completion
        # wins; the re-run's later result is stale.  Bitwise identity holds
        # either way because deterministic documents are identical.
        coordinator = coordinator_factory(lease_timeout=60.0)
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 4, 2)
        slow_lease, slow_shard = coordinator.request_lease("slow")
        fake_clock.advance(61)
        thief_lease, thief_shard = coordinator.request_lease("thief")
        assert coordinator.complete_lease(
            slow_lease.lease_id, scripted_executor(slow_shard)) is True
        assert coordinator.complete_lease(
            thief_lease.lease_id, scripted_executor(thief_shard)) is False
        assert coordinator.status()["stale_completions"] == 1
        lease, shard = coordinator.request_lease("live")  # the other span
        coordinator.complete_lease(lease.lease_id, scripted_executor(shard))
        assert coordinator.campaign_progress(campaign_id)["complete"]
        assert_bitwise_identical(paths)

    def test_invalid_document_rejected_and_span_stays_leased(
            self, coordinator_factory, tmp_path):
        coordinator = coordinator_factory()
        submit_fake(coordinator, tmp_path, 4, 2)
        lease, shard = coordinator.request_lease("w1")
        tampered = scripted_executor(shard)
        tampered["row_count"] += 1
        with pytest.raises(MergeError):
            coordinator.complete_lease(lease.lease_id, tampered)
        # The lease survives the bad artifact; an honest retry still lands.
        assert coordinator.heartbeat(lease.lease_id) is True
        assert coordinator.complete_lease(lease.lease_id,
                                          scripted_executor(shard)) is True

    def test_unknown_lease_and_campaign_raise_coordinator_error(
            self, coordinator_factory, tmp_path):
        coordinator = coordinator_factory()
        with pytest.raises(CoordinatorError, match="unknown lease"):
            coordinator.heartbeat(99)
        with pytest.raises(CoordinatorError, match="unknown campaign"):
            coordinator.campaign_progress("c9999")

    def test_draining_rejects_submissions_and_grants(
            self, coordinator_factory, tmp_path):
        coordinator = coordinator_factory()
        submit_fake(coordinator, tmp_path, 4, 2)
        coordinator.drain()
        assert coordinator.request_lease("w1") is None
        with pytest.raises(CoordinatorError, match="draining"):
            coordinator.submit_jobs(fake_jobs(2), 1)

    def test_fair_share_alternates_between_campaigns(
            self, coordinator_factory, tmp_path):
        coordinator = coordinator_factory()
        first, _, _ = submit_fake(coordinator, tmp_path, 8, 4, name="a")
        second, _, _ = submit_fake(coordinator, tmp_path, 8, 4, name="b")
        order = []
        for _ in range(8):
            lease, shard = coordinator.request_lease("w1")
            order.append(lease.campaign_id)
        # Equal-sized campaigns at equal load alternate strictly, ties
        # broken by submission order.
        assert order == [first, second] * 4

    def test_status_document_counters_and_formatting(
            self, coordinator_factory, fake_clock, tmp_path):
        coordinator = coordinator_factory(lease_timeout=60.0)
        submit_fake(coordinator, tmp_path, 8, 4, name="fleet")
        lease, shard = coordinator.request_lease("w1")
        coordinator.complete_lease(lease.lease_id, scripted_executor(shard))
        coordinator.request_lease("w2")
        fake_clock.advance(10)
        status = coordinator.status()
        assert status["coordinator_schema_version"] == COORDINATOR_SCHEMA_VERSION
        assert status["queue_depth"] == 2
        assert status["active_leases"] == 1
        assert status["max_lease_age_seconds"] == pytest.approx(10.0)
        assert status["completed_spans"] == 1
        assert status["completed_rows"] == 2
        assert set(status["workers"]) == {"w1", "w2"}
        rendered = format_coordinator_status(status)
        assert "fleet" in rendered and "1/4" in rendered
        assert "queue depth 2" in rendered


# -- the fault-injection matrix ----------------------------------------------

class TestFaultInjection:
    def test_worker_killed_mid_lease(self, coordinator_factory, fake_clock,
                                     tmp_path):
        # The scripted "kill": a worker takes a lease and is never heard
        # from again.  After the timeout its span is stolen and the
        # survivor drains the campaign; the artifact shows no trace.
        coordinator = coordinator_factory(lease_timeout=60.0)
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 10, 5)
        coordinator.request_lease("victim")
        fake_clock.advance(61)
        scripted_worker(coordinator, "survivor").run()
        progress = coordinator.campaign_progress(campaign_id)
        assert progress["complete"] and progress["steals"] == 1
        assert_bitwise_identical(paths)

    def test_delayed_heartbeats_lose_the_lease_but_not_the_campaign(
            self, coordinator_factory, fake_clock, tmp_path):
        coordinator = coordinator_factory(lease_timeout=60.0)
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 8, 4)
        lease, shard = coordinator.request_lease("laggard")
        fake_clock.advance(90)  # heartbeat arrives 30 s too late
        assert coordinator.heartbeat(lease.lease_id) is False
        scripted_worker(coordinator, "survivor").run()
        # The laggard finishes anyway; its completion must be stale.
        assert coordinator.complete_lease(
            lease.lease_id, scripted_executor(shard)) is False
        assert coordinator.campaign_progress(campaign_id)["complete"]
        assert coordinator.status()["stale_completions"] == 1
        assert_bitwise_identical(paths)

    def test_duplicated_lease_completions_merge_exactly_once(
            self, coordinator_factory, tmp_path):
        coordinator = coordinator_factory()
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 9, 4)
        lease, shard = coordinator.request_lease("dup")
        document = scripted_executor(shard)
        assert coordinator.complete_lease(lease.lease_id, document) is True
        for _ in range(3):  # a retry loop gone wrong
            assert coordinator.complete_lease(lease.lease_id,
                                              document) is False
        assert coordinator.status()["stale_completions"] == 3
        scripted_worker(coordinator, "rest").run()
        assert coordinator.campaign_progress(campaign_id)["complete"]
        assert_bitwise_identical(paths)

    def test_queue_partition_drops_the_worker_not_the_work(
            self, coordinator_factory, fake_clock, tmp_path):
        # A worker partitioned from the coordinator mid-campaign: its
        # in-flight lease times out and its loop exits on ConnectionError.
        coordinator = coordinator_factory(lease_timeout=60.0)
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 10, 5)
        flaky = FlakyClient(InProcessClient(coordinator))
        partitioned = scripted_worker(coordinator, "partitioned",
                                      client=flaky, max_idle_polls=10)
        lease, shard = coordinator.request_lease("partitioned")  # in flight
        flaky.partition(1000)  # the network goes away
        stats = partitioned.run()
        assert stats == {"leases": 0, "completed": 0, "stale": 0,
                         "idle_polls": 0}  # exited on first contact
        fake_clock.advance(61)  # the in-flight lease ages out
        scripted_worker(coordinator, "survivor").run()
        progress = coordinator.campaign_progress(campaign_id)
        assert progress["complete"] and progress["steals"] == 1
        assert_bitwise_identical(paths)

    def test_every_worker_dies_then_the_fleet_recovers(
            self, coordinator_factory, fake_clock, tmp_path):
        # Repeated generations of workers die mid-lease; each generation's
        # spans are stolen and eventually one generation survives.
        coordinator = coordinator_factory(lease_timeout=60.0)
        campaign_id, _, paths = submit_fake(coordinator, tmp_path, 12, 6)
        for generation in range(3):
            coordinator.request_lease(f"doomed-{generation}-a")
            coordinator.request_lease(f"doomed-{generation}-b")
            fake_clock.advance(61)
        scripted_worker(coordinator, "survivor").run()
        progress = coordinator.campaign_progress(campaign_id)
        assert progress["complete"] and progress["steals"] == 6
        assert_bitwise_identical(paths)

    def test_two_campaigns_survive_interleaved_failures(
            self, coordinator_factory, fake_clock, tmp_path):
        coordinator = coordinator_factory(lease_timeout=60.0)
        first, _, first_paths = submit_fake(coordinator, tmp_path, 8, 4,
                                            name="alpha")
        second, _, second_paths = submit_fake(coordinator, tmp_path, 6, 3,
                                              name="beta")
        coordinator.request_lease("victim")  # one span of alpha, killed
        fake_clock.advance(61)
        scripted_worker(coordinator, "survivor").run()
        assert coordinator.campaign_progress(first)["complete"]
        assert coordinator.campaign_progress(second)["complete"]
        assert_bitwise_identical(first_paths)
        assert_bitwise_identical(second_paths)


# -- structured-log event streams under faults -------------------------------

def _killed_worker_scenario(coordinator, clock, log, tmp_path):
    """A worker takes a lease and dies; a survivor drains the campaign."""
    submit_fake(coordinator, tmp_path, 10, 5)
    coordinator.request_lease("victim")
    clock.advance(61)
    scripted_worker(coordinator, "survivor", log=log).run()


def _duplicated_completion_scenario(coordinator, clock, log, tmp_path):
    """A retry loop re-sends one completion three times."""
    submit_fake(coordinator, tmp_path, 9, 4)
    lease, shard = coordinator.request_lease("dup")
    document = scripted_executor(shard)
    assert coordinator.complete_lease(lease.lease_id, document) is True
    for _ in range(3):
        assert coordinator.complete_lease(lease.lease_id, document) is False
    scripted_worker(coordinator, "rest", log=log).run()


def _partition_scenario(coordinator, clock, log, tmp_path):
    """A worker partitions away mid-lease; the lease ages out and a
    survivor absorbs the work."""
    submit_fake(coordinator, tmp_path, 10, 5)
    flaky = FlakyClient(InProcessClient(coordinator))
    partitioned = scripted_worker(coordinator, "partitioned", client=flaky,
                                  max_idle_polls=10, log=log)
    coordinator.request_lease("partitioned")
    flaky.partition(1000)
    partitioned.run()
    clock.advance(61)
    scripted_worker(coordinator, "survivor", log=log).run()


class TestEventStreamPinning:
    """The structured log is an assertable artifact: under a fixed clock
    each fault scenario replays the exact same event stream, byte for byte
    — coordinator and worker events interleaved deterministically because
    everything runs in-process on one thread."""

    def run_logged(self, scenario, base_path) -> bytes:
        base_path.mkdir()
        log_path = base_path / "events.log"
        clock = FakeClock()
        log = StructuredLog(log_path, clock=clock)
        coordinator = Coordinator(lease_timeout=60.0, clock=clock, log=log)
        try:
            scenario(coordinator, clock, log, base_path)
            assert_metrics_match_status(coordinator)
        finally:
            coordinator.close()
            log.close()
        return log_path.read_bytes()

    def events(self, payload: bytes):
        return [json.loads(line) for line in
                payload.decode("utf-8").splitlines()]

    def test_killed_worker_event_stream_is_pinned(self, tmp_path):
        payload = self.run_logged(_killed_worker_scenario, tmp_path / "a")
        events = self.events(payload)
        span_cycle = ["lease", "worker-lease", "merge-drain", "complete",
                      "worker-complete"]
        expected = (["submit", "lease", "steal"]
                    + span_cycle * 4
                    + span_cycle[:4] + ["campaign-complete"]
                    + span_cycle[4:] + ["worker-exit"])
        assert [event["event"] for event in events] == expected
        steal = next(e for e in events if e["event"] == "steal")
        assert steal["worker"] == "victim" and steal["lease"] == 1
        assert steal["age"] == 61
        # The survivor's re-grant covers the stolen span first.
        regrant = events[3]
        assert regrant["event"] == "lease" and regrant["span"] == \
            steal["span"] and regrant["worker"] == "survivor"
        # Timestamps are monotone under the injected clock.
        stamps = [event["ts"] for event in events]
        assert stamps == sorted(stamps)
        # Replayable: a second run produces the byte-identical stream.
        assert payload == self.run_logged(_killed_worker_scenario,
                                          tmp_path / "b")

    def test_duplicated_completion_event_stream_is_pinned(self, tmp_path):
        payload = self.run_logged(_duplicated_completion_scenario,
                                  tmp_path / "a")
        events = self.events(payload)
        kinds = [event["event"] for event in events]
        assert kinds.count("stale-completion") == 3
        assert kinds.count("complete") == 4  # one per span, dups dropped
        assert kinds.count("merge-drain") == 4
        stale = [e for e in events if e["event"] == "stale-completion"]
        assert all(e["worker"] == "dup" and e["span"] == 0 and
                   e["lease"] == 1 for e in stale)
        assert payload == self.run_logged(_duplicated_completion_scenario,
                                          tmp_path / "b")

    def test_partition_event_stream_is_pinned(self, tmp_path):
        payload = self.run_logged(_partition_scenario, tmp_path / "a")
        events = self.events(payload)
        kinds = [event["event"] for event in events]
        # The partitioned worker exits on first contact, before any lease
        # of its own; its in-flight span is stolen and re-run.
        exits = [e for e in events if e["event"] == "worker-exit"]
        assert [e["reason"] for e in exits] == ["unreachable", "idle"]
        assert [e["worker"] for e in exits] == ["partitioned", "survivor"]
        assert kinds.count("steal") == 1
        assert kinds.count("complete") == 5
        assert kinds[-1] == "worker-exit"
        assert payload == self.run_logged(_partition_scenario,
                                          tmp_path / "b")


# -- hypothesis: arbitrary interleavings -------------------------------------

def assert_span_partition(coordinator) -> None:
    """Every span is exactly one of pending / leased / completed."""
    for state in coordinator._campaigns.values():
        pending = set(state.pending)
        leased = set(state.leases)
        completed = set(state.completed)
        assert not pending & leased
        assert not pending & completed
        assert not leased & completed
        assert pending | leased | completed == set(range(state.span_count))


def assert_metrics_match_status(coordinator) -> None:
    """Registry, status document and per-campaign bookkeeping agree.

    The status counters are *read from* the registry, so the real content
    of this invariant is the third leg: the independently maintained
    per-campaign state (heaps, lease maps, row counts) must sum to the
    event-sourced registry totals after any interleaving — the exporter
    and the CLI can never tell different stories.
    """
    status = coordinator.status()
    metrics = coordinator.metrics
    states = list(coordinator._campaigns.values())
    assert status["steals"] \
        == metrics.value("coordinator_leases_stolen_total") \
        == sum(state.steals for state in states)
    assert status["completed_spans"] \
        == metrics.value("coordinator_spans_completed_total") \
        == sum(len(state.completed) for state in states)
    assert status["completed_rows"] \
        == metrics.value("coordinator_rows_merged_total") \
        == sum(state.row_count for state in states)
    assert status["stale_completions"] \
        == metrics.value("coordinator_stale_completions_total")
    assert status["leases_granted"] \
        == metrics.value("coordinator_leases_granted_total")
    assert status["heartbeats"] \
        == metrics.value("coordinator_heartbeats_total")
    assert status["active_leases"] \
        == metrics.value("coordinator_active_leases") \
        == sum(len(state.leases) for state in states)
    for state in states:
        assert metrics.value("coordinator_queue_depth",
                             campaign=state.campaign_id) \
            == len(state.pending)
    # A lease ends exactly once, by completion or steal; the lease-age
    # histogram must have observed every ending and nothing else.
    assert metrics.get("coordinator_lease_age_seconds").count() \
        == status["completed_spans"] + status["steals"]
    assert metrics.get("coordinator_span_latency_seconds").count() \
        == status["completed_spans"]
    # And the registry must render as a valid exposition document.
    parse_prometheus_text(metrics.render())


class TestLeaseLifecycleProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_interleavings_never_double_merge_or_drop_a_span(self, data,
                                                             tmp_path_factory):
        """Exactly-once coverage: under arbitrary grant/complete/expire/
        heartbeat interleavings over N workers, the span partition invariant
        and the metrics/status consistency invariant hold after every step,
        and the final artifact is bitwise identical to the monolithic run
        (each span's rows exactly once, in order)."""
        job_count = data.draw(st.integers(2, 10), label="jobs")
        shard_count = data.draw(st.integers(1, job_count), label="spans")
        worker_count = data.draw(st.integers(1, 4), label="workers")
        script = data.draw(st.lists(
            st.tuples(st.sampled_from(["grant", "complete", "expire",
                                       "heartbeat"]),
                      st.integers(0, 10**6)),
            max_size=40), label="script")

        tmp_path = tmp_path_factory.mktemp("interleave")
        clock = FakeClock()
        coordinator = Coordinator(lease_timeout=60.0, clock=clock)
        try:
            _, _, paths = submit_fake(coordinator, tmp_path, job_count,
                                      shard_count)
            held = []  # (lease, shard) grants this test still "owns"
            for op, salt in script:
                if op == "grant":
                    granted = coordinator.request_lease(
                        f"w{salt % worker_count}")
                    if granted is not None:
                        held.append(granted)
                elif op == "complete" and held:
                    lease, shard = held.pop(salt % len(held))
                    coordinator.complete_lease(lease.lease_id,
                                               scripted_executor(shard))
                elif op == "expire":
                    clock.advance(61)
                    coordinator.tick()
                elif op == "heartbeat" and held:
                    lease, _ = held[salt % len(held)]
                    coordinator.heartbeat(lease.lease_id)
                assert_span_partition(coordinator)
                assert_metrics_match_status(coordinator)

            # Drain: an honest worker finishes whatever the script left.
            for _ in range(10 * shard_count + 10):
                granted = coordinator.request_lease("drain")
                if granted is None:
                    if coordinator.is_idle:
                        break
                    clock.advance(61)  # everything left is leased: steal it
                    continue
                lease, shard = granted
                coordinator.complete_lease(lease.lease_id,
                                           scripted_executor(shard))
                assert_span_partition(coordinator)
            assert_metrics_match_status(coordinator)
            status = coordinator.status()
            assert all(entry["complete"] for entry in status["campaigns"])
            assert_bitwise_identical(paths)
        finally:
            coordinator.close()


# -- differential: real execution through real workers -----------------------

AXES = {"core_count": [1, 2], "tam_width_bits": [16, 32]}
BASE = ScenarioSpec(name="base", patterns_per_core=16, seed=3)


@pytest.fixture(scope="module")
def monolithic_reference(tmp_path_factory):
    """The real 8-job campaign run once, artifacts kept as bytes."""
    campaign = campaign_from_axes(AXES, base=BASE)
    tmp_path = tmp_path_factory.mktemp("monolithic")
    run = campaign.run()
    json_path = tmp_path / "mono.json"
    csv_path = tmp_path / "mono.csv"
    run.write_json(json_path, deterministic=True)
    run.write_csv(csv_path, deterministic=True)
    return {"jobs": campaign.jobs(), "json": json_path.read_bytes(),
            "csv": csv_path.read_bytes()}


class TestDifferentialRealExecution:
    @pytest.mark.parametrize("worker_count", [1, 2, 4])
    def test_coordinated_run_matches_monolithic(self, worker_count, tmp_path,
                                                monolithic_reference):
        coordinator = Coordinator(lease_timeout=600.0)
        json_path = tmp_path / "coord.json"
        csv_path = tmp_path / "coord.csv"
        coordinator.submit_jobs(monolithic_reference["jobs"], 5,
                                json_path=str(json_path),
                                csv_path=str(csv_path))
        try:
            for index in range(worker_count):
                worker = CampaignWorker(InProcessClient(coordinator),
                                        f"w{index}", max_idle_polls=1,
                                        heartbeat_interval=0,
                                        sleep=lambda seconds: None)
                worker.run()
            assert json_path.read_bytes() == monolithic_reference["json"]
            assert csv_path.read_bytes() == monolithic_reference["csv"]
        finally:
            coordinator.close()

    def test_seven_workers_one_killed_mid_run(self, tmp_path,
                                              monolithic_reference):
        clock = FakeClock()
        coordinator = Coordinator(lease_timeout=60.0, clock=clock)
        json_path = tmp_path / "coord.json"
        csv_path = tmp_path / "coord.csv"
        coordinator.submit_jobs(monolithic_reference["jobs"], 7,
                                json_path=str(json_path),
                                csv_path=str(csv_path))
        try:
            coordinator.request_lease("w0")  # w0 dies holding this lease
            clock.advance(61)
            for index in range(1, 7):
                worker = CampaignWorker(InProcessClient(coordinator),
                                        f"w{index}", max_idle_polls=1,
                                        heartbeat_interval=0,
                                        sleep=lambda seconds: None)
                worker.run()
            assert coordinator.status()["steals"] == 1
            assert json_path.read_bytes() == monolithic_reference["json"]
            assert csv_path.read_bytes() == monolithic_reference["csv"]
        finally:
            coordinator.close()

    @pytest.mark.slow
    def test_at_scale_72_scenarios_with_worker_death(self, tmp_path):
        """The slow differential: 72 scenarios (144 jobs), 11 uneven spans,
        4 workers with one killed mid-lease — still byte-identical."""
        axes = {"core_count": [1, 2, 3, 4], "tam_width_bits": [16, 32, 64],
                "compression_ratio": [5.0, 50.0],
                "power_budget": [4.0, 6.0, 8.0]}
        base = ScenarioSpec(name="base", patterns_per_core=8, seed=3)
        campaign = campaign_from_axes(axes, base=base)
        assert len(campaign.specs) >= 50
        run = campaign.run()
        mono_json = tmp_path / "mono.json"
        mono_csv = tmp_path / "mono.csv"
        run.write_json(mono_json, deterministic=True)
        run.write_csv(mono_csv, deterministic=True)

        clock = FakeClock()
        coordinator = Coordinator(lease_timeout=60.0, clock=clock)
        json_path = tmp_path / "coord.json"
        csv_path = tmp_path / "coord.csv"
        coordinator.submit_jobs(campaign.jobs(), 11,
                                json_path=str(json_path),
                                csv_path=str(csv_path))
        try:
            coordinator.request_lease("victim")
            clock.advance(61)
            for index in range(3):
                CampaignWorker(InProcessClient(coordinator), f"w{index}",
                               max_idle_polls=1, heartbeat_interval=0,
                               sleep=lambda seconds: None).run()
            assert coordinator.status()["steals"] == 1
            assert json_path.read_bytes() == mono_json.read_bytes()
            assert csv_path.read_bytes() == mono_csv.read_bytes()
        finally:
            coordinator.close()


# -- the real socket protocol ------------------------------------------------

@pytest.fixture
def live_server():
    coordinator = Coordinator(lease_timeout=600.0)
    server = CoordinatorServer(coordinator)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield coordinator, server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5.0)
    coordinator.close()


class TestSocketProtocol:
    def test_two_tcp_workers_drain_a_real_campaign(self, live_server,
                                                   tmp_path):
        coordinator, server = live_server
        client = CoordinatorClient(port=server.port)
        campaign = campaign_from_axes(AXES, base=BASE)
        json_path = tmp_path / "coord.json"
        mono_json = tmp_path / "mono.json"
        campaign.run().write_json(mono_json, deterministic=True)
        campaign_id = client.submit(
            [job_to_dict(job) for job in campaign.jobs()], 4,
            label="tcp", json_path=str(json_path))
        threads = [
            threading.Thread(target=CampaignWorker(
                CoordinatorClient(port=server.port), f"tcp-w{index}",
                poll_interval=0.01, max_idle_polls=3).run)
            for index in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        progress = client.campaign_progress(campaign_id)
        assert progress["complete"]
        status = client.status()
        assert status["completed_spans"] == 4
        assert json_path.read_bytes() == mono_json.read_bytes()

    def test_protocol_errors_are_reported_not_fatal(self, live_server):
        coordinator, server = live_server
        client = CoordinatorClient(port=server.port)
        with pytest.raises(CoordinatorError, match="unknown op"):
            client.call({"op": "bogus"})
        with pytest.raises(CoordinatorError, match="unknown lease"):
            client.heartbeat(12345)
        # The server survives malformed traffic and still answers.
        assert client.status()["coordinator_schema_version"] == \
            COORDINATOR_SCHEMA_VERSION

    def test_metrics_endpoint_under_concurrent_scrapes(self, live_server,
                                                       tmp_path,
                                                       monolithic_reference):
        """A 2-worker TCP campaign drains while scraper threads hammer
        /metrics: every payload must parse as valid exposition format, the
        counters must be monotone scrape over scrape, and the final scrape
        must agree with the status document."""
        coordinator, server = live_server
        metrics_server = MetricsServer(coordinator.metrics)
        metrics_server.start()
        url = f"http://127.0.0.1:{metrics_server.port}/metrics"
        stop = threading.Event()
        scrapes = {"a": [], "b": []}
        failures = []

        def scraper(bucket):
            try:
                while not stop.is_set():
                    payload = urllib.request.urlopen(
                        url, timeout=10).read().decode("utf-8")
                    assert payload, "empty exposition payload"
                    bucket.append(parse_prometheus_text(payload))
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        client = CoordinatorClient(port=server.port)
        json_path = tmp_path / "coord.json"
        client.submit([job_to_dict(job)
                       for job in monolithic_reference["jobs"]], 4,
                      label="scraped", json_path=str(json_path))
        workers = [
            threading.Thread(target=CampaignWorker(
                CoordinatorClient(port=server.port), f"scrape-w{index}",
                poll_interval=0.01, max_idle_polls=3).run)
            for index in range(2)
        ]
        scrapers = [threading.Thread(target=scraper, args=(bucket,))
                    for bucket in scrapes.values()]
        try:
            for thread in scrapers + workers:
                thread.start()
            for thread in workers:
                thread.join(timeout=60.0)
        finally:
            stop.set()
            for thread in scrapers:
                thread.join(timeout=30.0)
        # One settled scrape after the campaign finished, for the finale.
        final = parse_prometheus_text(urllib.request.urlopen(
            url, timeout=10).read().decode("utf-8"))
        metrics_server.stop()
        assert not failures
        assert all(scrapes.values()), "scrapers never completed a scrape"
        for bucket in scrapes.values():
            for earlier, later in zip(bucket, bucket[1:]):
                for key, value in earlier.items():
                    name = key[0]
                    if name.endswith(("_total", "_bucket", "_count")):
                        assert later.get(key, 0) >= value, \
                            f"counter {key} went backwards"
        status = client.status()
        assert status["completed_spans"] == 4
        spans_key = ("coordinator_spans_completed_total", ())
        assert final[spans_key] == status["completed_spans"]
        assert final[("coordinator_rows_merged_total", ())] == \
            status["completed_rows"]
        assert final[("coordinator_queue_depth",
                      (("campaign", "c0001"),))] == 0
        assert json_path.read_bytes() == monolithic_reference["json"]

    def test_shutdown_op_drains_and_stops_the_server(self, live_server):
        import time

        coordinator, server = live_server
        client = CoordinatorClient(port=server.port, timeout=5.0)
        client.shutdown()
        assert coordinator.draining
        # The drained coordinator grants nothing, and the serving loop
        # closes its listening socket shortly after answering.
        assert coordinator.request_lease("late") is None
        for _ in range(100):
            try:
                client.status()
            except OSError:
                break
            time.sleep(0.05)
        else:
            pytest.fail("server kept answering after the shutdown op")
