"""Shared fakes for the explore test suite.

The coordinator's liveness machinery (leases, heartbeats, stealing) is
driven entirely by an injected clock and performs no waiting of its own, so
the fault-injection tests replace both sides of the wire:

* :class:`FakeClock` — a manually advanced monotonic clock; "a worker went
  silent for 90 s" is one ``advance(90)`` call, deterministic and instant.
* :class:`FlakyClient` — wraps a client and raises ``ConnectionError`` for
  a scripted number of calls: a network partition between worker and
  coordinator, without sockets.

Real sockets are exercised separately by the protocol tests in
``test_coordinator.py``; everything else runs through
:class:`repro.explore.worker.InProcessClient` so arbitrary interleavings
can be scripted without threads or sleeps.
"""

import re

import pytest

#: One Prometheus text-format sample line: name, optional {labels}, value.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[+-]?(?:Inf|NaN|[0-9.eE+-]+))$")
_LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def parse_prometheus_text(payload: str):
    """Validate a text-exposition payload line by line; return the samples.

    Every non-comment line must be a well-formed sample; HELP/TYPE comments
    must precede their metric's samples.  Returns ``{(name, labels): value}``
    with labels as a sorted tuple of (key, value) pairs — the shape the
    monotone-counter assertions diff between scrapes.
    """
    samples = {}
    typed = set()
    for line in payload.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            assert parts[1] in ("HELP", "TYPE"), f"bad comment: {line!r}"
            if parts[1] == "TYPE":
                typed.add(parts[2])
            continue
        match = _SAMPLE.match(line)
        assert match, f"malformed sample line: {line!r}"
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in typed or base in typed, \
            f"sample {name!r} before its # TYPE line"
        labels = []
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                label = _LABEL.match(pair)
                assert label, f"malformed label in line: {line!r}"
                labels.append((label.group(1), label.group(2)))
        value = match.group("value")
        samples[(name, tuple(sorted(labels)))] = float(
            value.replace("Inf", "inf").replace("NaN", "nan"))
    assert payload.endswith("\n"), "exposition must end with a newline"
    return samples


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        assert seconds >= 0, "monotonic clocks do not run backwards"
        self.now += seconds


class FlakyClient:
    """Delegate to *client*, failing the next *failures* calls.

    Models a partition between one worker and the coordinator: calls raise
    ``ConnectionError`` while the partition lasts, then heal.  The worker
    loop treats that as "coordinator unreachable" and exits; the remaining
    workers (and the lease-timeout steal) absorb its work.
    """

    def __init__(self, client, failures: int = 0):
        self._client = client
        self.failures = failures

    def partition(self, calls: int) -> None:
        self.failures = calls

    def _check(self):
        if self.failures > 0:
            self.failures -= 1
            raise ConnectionError("injected partition")

    def request_lease(self, worker):
        self._check()
        return self._client.request_lease(worker)

    def heartbeat(self, lease_id):
        self._check()
        return self._client.heartbeat(lease_id)

    def complete(self, lease_id, document):
        self._check()
        return self._client.complete(lease_id, document)


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()
