"""Unit tests for the observability plane (:mod:`repro.explore.metrics`).

The registry's rendering is pinned against a line-by-line text-exposition
parser (``tests.explore.conftest.parse_prometheus_text``) rather than a
handful of substring checks: every non-comment line must parse as a
sample, every sample must follow its ``# TYPE`` comment, and histogram
buckets must be cumulative — the properties a real Prometheus scraper
relies on.  The structured log's byte-stability contract (same fake clock
=> same bytes) is asserted here in isolation; the fault-injection suite in
``test_coordinator.py`` asserts it for whole coordinator runs.
"""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.explore.metrics import (
    LATENCY_BUCKETS,
    LOG_SCHEMA_VERSION,
    METRICS_CONTENT_TYPE,
    MetricsError,
    MetricsRegistry,
    MetricsServer,
    StructuredLog,
    read_log,
)
from tests.explore.conftest import FakeClock, parse_prometheus_text


class TestCounter:
    def test_counts_and_reads_back(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Operations.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total() == 3.5

    def test_labelsets_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Operations.")
        counter.inc(outcome="hit")
        counter.inc(3, outcome="miss")
        assert counter.value(outcome="hit") == 1
        assert counter.value(outcome="miss") == 3
        assert counter.value(outcome="other") == 0
        assert counter.total() == 4

    def test_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Operations.")
        with pytest.raises(MetricsError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_invalid_names(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError, match="invalid metric name"):
            registry.counter("bad-name", "Hyphens are not allowed.")
        counter = registry.counter("ops_total", "Operations.")
        with pytest.raises(MetricsError, match="invalid label name"):
            counter.inc(**{"0bad": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 6

    def test_callback_gauges_compute_at_read_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("cache", "Cache stats.")
        backing = {"hits": 0}
        gauge.set_function(lambda: backing["hits"], outcome="hit")
        assert gauge.value(outcome="hit") == 0
        backing["hits"] = 7
        assert gauge.value(outcome="hit") == 7
        assert registry.value("cache", outcome="hit") == 7

    def test_remove_drops_a_labelset(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(3, campaign="c0001")
        gauge.remove(campaign="c0001")
        assert gauge.samples() == []


class TestHistogram:
    def test_observations_land_in_the_right_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", "Latency.",
                                       buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.count() == 5
        assert histogram.sum() == pytest.approx(56.05)
        samples = parse_prometheus_text(registry.render())
        bucket = lambda le: samples[("latency_bucket", (("le", le),))]
        assert bucket("0.1") == 1
        assert bucket("1") == 3       # cumulative: 0.05, 0.5, 0.5
        assert bucket("10") == 4
        assert bucket("+Inf") == 5
        assert samples[("latency_count", ())] == 5

    def test_boundary_value_is_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", "Latency.", buckets=(1.0,))
        histogram.observe(1.0)
        samples = parse_prometheus_text(registry.render())
        assert samples[("latency_bucket", (("le", "1"),))] == 1

    def test_rejects_unsorted_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError, match="strictly increasing"):
            registry.histogram("latency", "Latency.", buckets=(1.0, 1.0))
        with pytest.raises(MetricsError, match="strictly increasing"):
            registry.histogram("latency2", "Latency.", buckets=())


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", "Operations.")
        second = registry.counter("ops_total", "Operations.")
        assert first is second

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "Operations.")
        with pytest.raises(MetricsError, match="already registered"):
            registry.gauge("ops_total", "Operations.")

    def test_render_is_valid_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Operations so far.")
        counter.inc(3, campaign="c0001", kind="lease")
        registry.gauge("depth", "Queue depth.").set(2.5)
        registry.histogram("age", "Lease age.", LATENCY_BUCKETS).observe(0.2)
        payload = registry.render()
        samples = parse_prometheus_text(payload)
        key = ("ops_total", (("campaign", "c0001"), ("kind", "lease")))
        assert samples[key] == 3
        assert samples[("depth", ())] == 2.5
        # Registration order is preserved so dashboards diff cleanly.
        names = [line.split()[2] for line in payload.splitlines()
                 if line.startswith("# TYPE")]
        assert names == ["ops_total", "depth", "age"]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "Operations.").inc(
            label='quote " slash \\ newline \n')
        payload = registry.render()
        assert ('ops_total{label="quote \\" slash \\\\ newline \\n"} 1'
                in payload)
        parse_prometheus_text(payload)

    def test_unregistered_value_reads_zero(self):
        assert MetricsRegistry().value("missing_total") == 0.0


class TestStructuredLog:
    def test_events_carry_schema_version_and_clock(self):
        clock = FakeClock(5.0)
        sink = io.StringIO()
        log = StructuredLog(sink, clock=clock)
        log.emit("lease", campaign="c0001", span=0)
        clock.advance(1.5)
        log.emit("complete", campaign="c0001", span=0)
        events = [json.loads(line) for line in
                  sink.getvalue().splitlines()]
        assert events[0] == {"v": LOG_SCHEMA_VERSION, "ts": 5.0,
                             "event": "lease", "campaign": "c0001",
                             "span": 0}
        assert events[1]["ts"] == 6.5

    def test_same_clock_means_identical_bytes(self):
        def run() -> bytes:
            clock = FakeClock()
            sink = io.StringIO()
            log = StructuredLog(sink, clock=clock)
            for span in range(3):
                log.emit("lease", span=span, worker="w1")
                clock.advance(0.25)
                log.emit("complete", span=span, worker="w1", rows=4)
            return sink.getvalue().encode("utf-8")

        assert run() == run()

    def test_file_sink_round_trips(self, tmp_path):
        path = tmp_path / "run.log"
        log = StructuredLog(path, clock=FakeClock(1.0))
        log.emit("submit", campaign="c0001")
        log.close()
        events = read_log(path)
        assert [event["event"] for event in events] == ["submit"]
        # Append mode: a second serve run extends the same file.
        log = StructuredLog(path, clock=FakeClock(2.0))
        log.emit("draining")
        log.close()
        assert [event["event"] for event in read_log(path)] == \
            ["submit", "draining"]


class TestMetricsServer:
    def test_serves_the_registry_on_metrics(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "Operations.").inc(9)
        server = MetricsServer(registry)
        server.start()
        try:
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/metrics",
                    timeout=10) as response:
                assert response.status == 200
                assert response.headers["Content-Type"] == \
                    METRICS_CONTENT_TYPE
                payload = response.read().decode("utf-8")
        finally:
            server.stop()
        assert parse_prometheus_text(payload)[("ops_total", ())] == 9

    def test_other_paths_are_404(self):
        server = MetricsServer(MetricsRegistry())
        server.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/", timeout=10)
            assert excinfo.value.code == 404
        finally:
            server.stop()

    def test_concurrent_scrapes_see_consistent_snapshots(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Operations.")
        server = MetricsServer(registry)
        server.start()
        url = f"http://127.0.0.1:{server.port}/metrics"
        failures = []

        def scrape():
            try:
                for _ in range(10):
                    payload = urllib.request.urlopen(
                        url, timeout=10).read().decode("utf-8")
                    parse_prometheus_text(payload)
            except Exception as error:  # pragma: no cover - failure path
                failures.append(error)

        threads = [threading.Thread(target=scrape) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            for _ in range(500):
                counter.inc()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            server.stop()
        assert not failures
        assert counter.value() == 500
