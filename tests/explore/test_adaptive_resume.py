"""Differential tests of adaptive warm-start resume: a run checkpointed at
any round boundary and resumed from its JSON artifact finishes with rows,
survivors, front and artifact bytes identical to the uninterrupted run."""

import json

import pytest

from repro.explore.adaptive import (
    ADAPTIVE_SCHEMA_VERSION,
    AdaptiveSearch,
    adaptive_search_from_axes,
    objective_vector,
    resume_search,
)
from repro.explore.campaign import SCHEMA_VERSION, clear_scenario_cache
from repro.explore.scenarios import ScenarioGrid, ScenarioSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


def small_search(**kwargs) -> AdaptiveSearch:
    return adaptive_search_from_axes(
        {"core_count": [1, 2], "tam_width_bits": [8, 32]},
        base=ScenarioSpec(name="base", patterns_per_core=16, seed=7),
        **kwargs,
    )


def round_trip(result, tmp_path, name="ckpt.json"):
    """Artifact as a real file: write JSON, load it back as a document."""
    path = tmp_path / name
    result.write_json(path)
    return json.loads(path.read_text()), path


class TestCheckpoints:
    def test_partial_run_is_a_checkpoint(self, tmp_path):
        search = small_search()
        partial = search.run(max_rounds=1)
        assert not partial.complete
        assert partial.front == []
        assert len(partial.rounds) == 1
        assert partial.planned_rounds == 3
        document, _ = round_trip(partial, tmp_path)
        assert document["complete"] is False
        assert document["completed_rounds"] == 1
        assert document["planned_rounds"] == 3
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["adaptive_schema_version"] == ADAPTIVE_SCHEMA_VERSION
        assert len(document["specs"]) == 4
        assert document["round_stats"][0]["simulated_jobs"] == 8

    def test_max_rounds_validation(self):
        with pytest.raises(ValueError, match="max_rounds"):
            small_search().run(max_rounds=0)

    def test_max_rounds_beyond_ladder_completes(self):
        result = small_search().run(max_rounds=99)
        assert result.complete
        assert result.front

    def test_documents_embed_the_search_definition(self, tmp_path):
        search = small_search(eta=2.0, min_budget=0.5)
        document, _ = round_trip(search.run(max_rounds=1), tmp_path)
        rebuilt = AdaptiveSearch.from_document(document)
        assert [s.name for s in rebuilt.specs] == [s.name for s in search.specs]
        assert rebuilt.specs == search.specs
        assert rebuilt.eta == search.eta
        assert rebuilt.min_budget == search.min_budget
        assert rebuilt.objectives == search.objectives
        assert rebuilt.schedules == search.schedules


class TestResumeDifferential:
    @pytest.fixture(scope="class")
    def uninterrupted(self):
        clear_scenario_cache()
        return small_search().run()

    def test_resume_at_every_round_boundary_reproduces_the_run(
            self, uninterrupted, tmp_path):
        full_document = uninterrupted.as_document()
        for boundary in range(1, uninterrupted.planned_rounds):
            clear_scenario_cache()
            partial = small_search().run(max_rounds=boundary)
            document, _ = round_trip(partial, tmp_path,
                                     name=f"ckpt{boundary}.json")
            clear_scenario_cache()
            resumed = resume_search(document)
            assert resumed.complete
            assert resumed.resumed_rounds == boundary
            # The front is identical (same pairs, same objective values)...
            assert [(o.spec.name, o.schedule) for o in resumed.front] == \
                [(o.spec.name, o.schedule) for o in uninterrupted.front]
            assert [objective_vector(o, resumed.objectives)
                    for o in resumed.front] == \
                [objective_vector(o, uninterrupted.objectives)
                 for o in uninterrupted.front]
            # ...and so is the whole artifact, byte for byte.
            assert resumed.as_document() == full_document

    def test_resumed_artifact_bytes_equal_uninterrupted(self, uninterrupted,
                                                        tmp_path):
        partial = small_search().run(max_rounds=1)
        document, _ = round_trip(partial, tmp_path)
        resumed = resume_search(document)
        resumed_path = tmp_path / "resumed.json"
        full_path = tmp_path / "full.json"
        resumed.write_json(resumed_path)
        uninterrupted.write_json(full_path)
        assert resumed_path.read_bytes() == full_path.read_bytes()
        resumed_csv, full_csv = tmp_path / "resumed.csv", tmp_path / "full.csv"
        resumed.write_csv(resumed_csv)
        uninterrupted.write_csv(full_csv)
        assert resumed_csv.read_bytes() == full_csv.read_bytes()

    def test_resume_on_a_worker_pool_stays_identical(self, uninterrupted,
                                                     tmp_path):
        partial = small_search().run(max_rounds=1)
        document, _ = round_trip(partial, tmp_path)
        resumed = resume_search(document, workers=2)
        assert resumed.as_document() == uninterrupted.as_document()

    def test_resume_only_simulates_the_remaining_rounds(self, tmp_path):
        partial = small_search().run(max_rounds=2)
        document, _ = round_trip(partial, tmp_path)
        resumed = resume_search(document)
        # Replayed rounds report their original simulation counters but cost
        # no simulations on resume: the new wall clock covers only round 2.
        assert resumed.resumed_rounds == 2
        assert [r.simulated_jobs for r in resumed.rounds] == \
            [r.simulated_jobs for r in partial.rounds] + \
            [resumed.rounds[-1].simulated_jobs]
        assert resumed.rounds[0].run.wall_seconds == 0.0
        assert resumed.rounds[1].run.wall_seconds == 0.0

    def test_recheckpointing_a_resumed_run(self, uninterrupted, tmp_path):
        # checkpoint after round 1, resume to round 2, resume to the end.
        first, _ = round_trip(small_search().run(max_rounds=1), tmp_path,
                              name="r1.json")
        second, _ = round_trip(resume_search(first, max_rounds=2), tmp_path,
                               name="r2.json")
        assert second["completed_rounds"] == 2
        final = resume_search(second)
        assert final.as_document() == uninterrupted.as_document()


class TestResumeValidation:
    def checkpoint(self, tmp_path, **kwargs):
        document, _ = round_trip(small_search().run(max_rounds=1), tmp_path)
        return document

    def test_complete_artifact_rejected(self, tmp_path):
        document, _ = round_trip(small_search().run(), tmp_path)
        with pytest.raises(ValueError, match="already complete"):
            resume_search(document)

    def test_wrong_schema_versions_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        stale = dict(document, schema_version=SCHEMA_VERSION - 1)
        with pytest.raises(ValueError, match="schema_version"):
            resume_search(stale)
        stale = dict(document,
                     adaptive_schema_version=ADAPTIVE_SCHEMA_VERSION - 1)
        with pytest.raises(ValueError, match="adaptive_schema_version"):
            resume_search(stale)

    def test_campaign_artifact_rejected(self, tmp_path):
        from repro.explore.campaign import Campaign

        run = Campaign([ScenarioSpec(name="c", patterns_per_core=8,
                                     core_count=1)]).run()
        path = tmp_path / "campaign.json"
        run.write_json(path, deterministic=True)
        with pytest.raises(ValueError, match="adaptive_schema_version"):
            resume_search(json.loads(path.read_text()))

    def test_budget_ladder_mismatch_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        other = small_search(min_budget=0.5)
        with pytest.raises(ValueError, match="budget ladder"):
            other.run(resume_from=document)

    def test_candidate_mismatch_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        for row in document["rows"]:
            row["scenario"] = "intruder"
        with pytest.raises(ValueError, match="different\\s+candidates"):
            AdaptiveSearch.from_document(document).run(resume_from=document)

    def test_tampered_survivors_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        for row in document["rows"]:
            row["survivor"] = not row["survivor"]
        with pytest.raises(ValueError, match="survivors"):
            resume_search(document)

    def test_tampered_simulation_counter_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        document["round_stats"][0]["simulated_jobs"] += 1
        with pytest.raises(ValueError, match="simulated job"):
            resume_search(document)

    def test_empty_checkpoint_rejected(self, tmp_path):
        document = self.checkpoint(tmp_path)
        document["completed_rounds"] = 0
        document["budgets"] = []
        with pytest.raises(ValueError, match="no completed rounds"):
            resume_search(document)


@pytest.mark.slow
def test_large_grid_resume_at_every_round_boundary_bitwise(tmp_path):
    """The ISSUE acceptance case: a large grid interrupted at each round
    boundary and resumed reproduces the uninterrupted front exactly."""
    def make_search():
        grid = ScenarioGrid(
            {"core_count": [1, 2, 3], "tam_width_bits": [8, 16, 32],
             "compression_ratio": [10.0, 100.0]},
            base=ScenarioSpec(name="base", patterns_per_core=16, seed=11),
        )
        return AdaptiveSearch(grid, eta=3.0, min_budget=0.25)

    clear_scenario_cache()
    uninterrupted = make_search().run(workers=2)
    full_path = tmp_path / "full.json"
    uninterrupted.write_json(full_path)
    for boundary in range(1, uninterrupted.planned_rounds):
        clear_scenario_cache()
        partial = make_search().run(workers=2, max_rounds=boundary)
        ckpt = tmp_path / f"ckpt{boundary}.json"
        partial.write_json(ckpt)
        clear_scenario_cache()
        resumed = resume_search(json.loads(ckpt.read_text()), workers=2)
        resumed_path = tmp_path / f"resumed{boundary}.json"
        resumed.write_json(resumed_path)
        assert resumed_path.read_bytes() == full_path.read_bytes()
        assert {(o.spec.name, o.schedule) for o in resumed.front} == \
            {(o.spec.name, o.schedule) for o in uninterrupted.front}
