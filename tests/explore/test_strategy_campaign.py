"""End-to-end tests of the scheduler-strategy axis through the campaign
stack: spec round-trips, schema-v4 artifacts, shard merge, adaptive search
and resume, the ``tracing_enabled`` exploration mode, and the acceptance
bar — a new strategy Pareto-dominating greedy on a ≥50-scenario grid."""

import json
from dataclasses import replace

import pytest

from repro.explore.adaptive import AdaptiveSearch, Objective
from repro.explore.campaign import (
    Campaign,
    CampaignJob,
    RESULT_COLUMNS,
    campaign_from_axes,
    clear_scenario_cache,
    execute_job,
)
from repro.explore.distrib import merge_shard_documents, plan_shards, run_shard
from repro.explore.scenarios import (
    ScenarioSpec,
    build_scenario,
    spec_from_dict,
    spec_to_dict,
)

#: The strategy mix exercised end to end (canonical forms).
STRATEGIES = ("sequential", "greedy", "binpack", "binpack:fit=worst",
              "anneal:steps=64,seed=3")


def strategy_spec(name="strat", **overrides) -> ScenarioSpec:
    parameters = {"core_count": 2, "patterns_per_core": 32, "seed": 7,
                  "schedules": STRATEGIES}
    parameters.update(overrides)
    return ScenarioSpec(name=name, **parameters)


class TestSpecRoundTrip:
    def test_schedules_canonicalized_at_construction(self):
        spec = ScenarioSpec(name="x", schedules=("anneal:seed=3,steps=64",
                                                 "binpack:fit=best"))
        assert spec.schedules == ("anneal:steps=64,seed=3", "binpack")

    def test_malformed_strategy_entries_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            ScenarioSpec(name="x", schedules=("greedy:bogus=1",))

    def test_spec_to_dict_round_trip_is_lossless(self):
        spec = strategy_spec(memory_words=256)
        document = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(document) == spec

    def test_specs_with_equal_recipes_hash_equal(self):
        a = ScenarioSpec(name="x", schedules=("anneal:seed=1,steps=64",))
        b = ScenarioSpec(name="x", schedules=("anneal:steps=64",))
        assert a == b and hash(a) == hash(b)

    def test_duplicate_recipes_collapse_to_one(self):
        # "greedy:max_concurrency=0" canonicalizes to "greedy": simulating
        # the identical schedule twice would only duplicate rows.
        spec = ScenarioSpec(name="x", schedules=("sequential", "greedy",
                                                 "greedy:max_concurrency=0"))
        assert spec.schedules == ("sequential", "greedy")
        campaign = Campaign([spec], schedules=("greedy", "binpack:fit=best",
                                               "binpack"))
        assert [job.schedule for job in campaign.jobs()] == \
            ["greedy", "binpack"]


class TestStrategySchedulesInScenarios:
    def test_all_strategy_entries_materialized(self):
        scenario = build_scenario(strategy_spec())
        for name in STRATEGIES:
            schedule = scenario.schedule_for(name)
            schedule.validate(scenario.tasks)
            assert sorted(schedule.task_names) == sorted(scenario.tasks)

    def test_lazy_strategies_equal_eager_ones(self):
        eager = build_scenario(strategy_spec())
        lazy = build_scenario(strategy_spec(schedules=("sequential",)))
        for name in STRATEGIES:
            assert lazy.schedule_for(name).phases == \
                eager.schedule_for(name).phases

    def test_power_budget_reaches_the_strategies(self):
        tight = build_scenario(strategy_spec(power_budget=2.0))
        loose = build_scenario(strategy_spec(power_budget=50.0))
        for name in ("greedy", "binpack"):
            # Concurrency (phases with >1 task) only under the budget; a
            # single task that exceeds the budget alone still runs (in a
            # phase of its own), like the greedy scheduler always did.
            for phase in tight.schedule_for(name).phases:
                if len(phase) > 1:
                    assert tight.power_model.phase_fits_budget(
                        phase, tight.tasks)
            assert tight.schedule_for(name).phase_count >= \
                loose.schedule_for(name).phase_count

    def test_jpeg_scenarios_build_strategy_entries(self):
        spec = ScenarioSpec(name="jpeg", kind="jpeg",
                            schedules=("schedule_1", "binpack"))
        scenario = build_scenario(spec)
        assert [s.name for s in scenario.selected_schedules()] == \
            ["schedule_1", "binpack"]

    def test_unknown_schedule_still_raises(self):
        scenario = build_scenario(strategy_spec(schedules=("sequential",)))
        with pytest.raises(KeyError, match="nope"):
            scenario.schedule_for("nope")


class TestSchemaV4Artifacts:
    @pytest.fixture(scope="class")
    def run(self):
        return Campaign([strategy_spec()]).run()

    def test_strategy_columns_present_and_ordered(self, run):
        for row in run.rows():
            assert tuple(row) == RESULT_COLUMNS
        assert RESULT_COLUMNS.index("strategy") == \
            RESULT_COLUMNS.index("schedule") + 1

    def test_strategy_fingerprints_recorded(self, run):
        by_schedule = {row["schedule"]: row for row in run.rows()}
        assert by_schedule["greedy"]["strategy"] == "greedy"
        assert by_schedule["greedy"]["strategy_params"] == ""
        assert by_schedule["binpack:fit=worst"]["strategy"] == "binpack"
        assert by_schedule["binpack:fit=worst"]["strategy_params"] == \
            "fit=worst"
        annealed = by_schedule["anneal:steps=64,seed=3"]
        assert annealed["strategy"] == "anneal"
        assert annealed["strategy_params"] == "steps=64,seed=3"

    def test_handwritten_schedules_have_empty_fingerprint(self):
        spec = ScenarioSpec(name="jpeg", kind="jpeg",
                            schedules=("schedule_4",))
        row = Campaign([spec]).run().rows()[0]
        assert row["strategy"] == "" and row["strategy_params"] == ""

    def test_parallel_equals_serial_with_strategies(self, run):
        parallel = Campaign([strategy_spec()]).run(workers=2)
        assert parallel.deterministic_rows() == run.deterministic_rows()

    def test_schedule_override_canonicalizes(self):
        campaign = Campaign([strategy_spec()],
                            schedules=("anneal:seed=3,steps=64",))
        assert [job.schedule for job in campaign.jobs()] == \
            ["anneal:steps=64,seed=3"]

    def test_override_strategy_not_in_spec_builds_lazily(self):
        clear_scenario_cache()
        outcome = execute_job(CampaignJob(
            spec=strategy_spec(schedules=("sequential",)),
            schedule="binpack:fit=worst"))
        assert outcome.test_length_cycles > 0


class TestStrategiesThroughShardsAndAdaptive:
    def test_shard_merge_bitwise_with_strategies(self):
        campaign = Campaign([strategy_spec("a"), strategy_spec("b", seed=9)])
        documents = [run_shard(shard).as_document()
                     for shard in plan_shards(campaign, 3)]
        merged = merge_shard_documents(documents)
        mono = campaign.run().as_document(deterministic=True)
        assert json.dumps(merged) == json.dumps(mono)

    def test_adaptive_selects_over_strategy_schedules(self):
        grid_specs = [strategy_spec(f"s{i}", seed=3 + i,
                                    schedules=("greedy", "binpack",
                                               "anneal:steps=48,seed=5"))
                      for i in range(3)]
        search = AdaptiveSearch(grid_specs, eta=2.0, min_budget=0.5)
        result = search.run()
        assert result.front
        schedules = {outcome.schedule for r in result.rounds
                     for outcome in r.run.outcomes}
        assert schedules == {"greedy", "binpack", "anneal:steps=48,seed=5"}

    def test_adaptive_resume_bitwise_with_strategies(self, tmp_path):
        def fresh_search():
            return AdaptiveSearch(
                [strategy_spec(f"s{i}", seed=3 + i,
                               schedules=("greedy", "binpack"))
                 for i in range(2)],
                eta=2.0, min_budget=0.5)

        checkpoint = fresh_search().run(max_rounds=1)
        assert not checkpoint.complete
        path = tmp_path / "ckpt.json"
        checkpoint.write_json(path)
        with open(path) as handle:
            document = json.load(handle)
        resumed = fresh_search().run(resume_from=document)
        full = fresh_search().run()
        assert resumed.as_document() == full.as_document()

    def test_strategy_objective_columns_rejected(self):
        for column in ("strategy", "strategy_params", "schedule"):
            with pytest.raises(ValueError, match="labels"):
                Objective(column)


class TestTracingDisabledMode:
    def test_disabled_tracing_keeps_simulated_behaviour(self):
        clear_scenario_cache()
        base = strategy_spec(schedules=("greedy",))
        traced = execute_job(CampaignJob(spec=base, schedule="greedy"))
        untraced = execute_job(CampaignJob(
            spec=replace(base, config_overrides=(("tracing_enabled", False),)),
            schedule="greedy"))
        # The simulation itself is unchanged...
        assert untraced.test_length_cycles == traced.test_length_cycles
        assert untraced.simulated_activations == traced.simulated_activations
        assert untraced.estimated_cycles == traced.estimated_cycles
        # ...only the trace-derived metrics are skipped.
        assert traced.peak_power > 0 and traced.avg_tam_utilization > 0
        assert untraced.peak_power == 0 and untraced.avg_tam_utilization == 0

    def test_disabled_tracer_retains_no_records(self):
        scenario = build_scenario(replace(
            strategy_spec(schedules=("sequential",)),
            config_overrides=(("tracing_enabled", False),)))
        soc = scenario.build_soc()
        assert not soc.tracer.enabled and not soc.activity_log.enabled
        soc.run_test_schedule(scenario.schedule_for("sequential"),
                              scenario.tasks)
        assert len(soc.tracer) == 0 and len(soc.activity_log) == 0

    def test_tracing_defaults_to_enabled(self):
        soc = build_scenario(strategy_spec(schedules=("sequential",))).build_soc()
        assert soc.tracer.enabled and soc.activity_log.enabled


@pytest.mark.slow
class TestStrategyAcceptanceAtScale:
    def test_a_new_strategy_pareto_dominates_greedy_somewhere(self):
        # The acceptance bar: on a >= 50-scenario grid, at least one of the
        # new optimizers beats greedy on *simulated* test time at equal or
        # lower *simulated* peak power on some scenario.  Everything is
        # seeded, so this demonstration is deterministic, not a flake.
        campaign = campaign_from_axes(
            {"core_count": [4, 5, 6], "power_budget": [2.0, 2.5, 3.0, 4.0],
             "seed": [3, 5, 7, 11, 13, 17, 19]},
            base=ScenarioSpec(
                name="base", patterns_per_core=32, seed=1,
                schedules=("greedy", "binpack",
                           "anneal:steps=512,peak_weight=0.25")),
        )
        assert len(campaign.specs) >= 50
        run = campaign.run(workers=2)
        by_scenario = {}
        for outcome in run.outcomes:
            by_scenario.setdefault(outcome.spec.name, {})[outcome.schedule] = \
                outcome
        dominations = {}
        for name, outcomes in by_scenario.items():
            greedy = outcomes["greedy"]
            for schedule, outcome in outcomes.items():
                if schedule == "greedy":
                    continue
                if (outcome.test_length_cycles < greedy.test_length_cycles
                        and outcome.peak_power <= greedy.peak_power):
                    dominations.setdefault(schedule, []).append(name)
        assert dominations, (
            "no strategy dominated greedy on any scenario of the grid")
        # The annealed schedule is the known winner on this grid.
        assert "anneal:steps=512,peak_weight=0.25" in dominations
