"""Tests for the exploration/reporting layer (Table I, sweeps, speedup)."""

import pytest

from repro.explore.experiments import (
    PAPER_TABLE1,
    ScenarioResult,
    run_scenario,
    run_table1,
    table1_rows,
)
from repro.explore.report import format_table, format_table1
from repro.explore.speedup import SpeedupResult, run_speed_comparison
from repro.soc import SocConfiguration


class TestReportFormatting:
    def test_format_table_basic(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}]
        text = format_table(rows, ["a", "b"], headers={"a": "Alpha"})
        lines = text.splitlines()
        assert lines[0].startswith("Alpha")
        assert len(lines) == 4
        assert "2.50" in lines[2]

    def test_format_table_missing_column(self):
        text = format_table([{"a": 1}], ["a", "missing"])
        assert "missing" in text

    def test_format_table_empty_rows(self):
        text = format_table([], ["a"])
        assert "a" in text


class TestScenarioRunner:
    @pytest.fixture(scope="class")
    def scenario(self, request):
        # One representative scenario, shared by the assertions below.
        from repro.soc import build_test_schedules, build_test_tasks

        schedules = build_test_schedules()
        tasks = build_test_tasks()
        return run_scenario(schedules["schedule_4"], tasks)

    def test_metrics_filled(self, scenario):
        metrics = scenario.metrics
        assert metrics.schedule_name == "schedule_4"
        assert metrics.cpu_seconds > 0
        assert metrics.test_length_mcycles > 100
        assert 0 < metrics.avg_tam_utilization <= metrics.peak_tam_utilization <= 1.0

    def test_validation_report_attached(self, scenario):
        assert scenario.validation.schedule_name == "schedule_4"
        assert scenario.validation.simulated_cycles == \
            scenario.metrics.test_length_cycles
        assert abs(scenario.validation.deviation) < 0.25

    def test_paper_row_lookup(self, scenario):
        paper = scenario.paper_row()
        assert paper["test_length_mcycles"] == 167.0

    def test_table_rows_and_formatting(self, scenario):
        rows = table1_rows([scenario])
        assert rows[0]["scenario"] == "schedule_4"
        assert rows[0]["paper_test_length_mcycles"] == 167.0
        text = format_table1([scenario])
        assert "schedule_4" in text
        assert "167" in text

    def test_paper_table_has_all_scenarios(self):
        assert set(PAPER_TABLE1) == {"schedule_1", "schedule_2", "schedule_3",
                                     "schedule_4"}


class TestSpeedComparison:
    def test_speedup_result_arithmetic(self):
        result = SpeedupResult(
            gate_level_cycles_simulated=100, gate_level_seconds=10.0,
            tlm_cycles_simulated=1_000_000, tlm_seconds=1.0,
            reference_cycles=1_000_000,
        )
        assert result.gate_level_cycles_per_second == pytest.approx(10.0)
        assert result.tlm_cycles_per_second == pytest.approx(1e6)
        assert result.speedup == pytest.approx(1e5)
        assert result.tlm_projection_seconds == pytest.approx(1.0)
        assert result.gate_level_projection_seconds == pytest.approx(1e5)
        assert "speedup" in result.summary()

    def test_small_speed_comparison_run(self):
        result = run_speed_comparison(gate_level_cycles=20,
                                      core_flip_flops=100, core_gates=500,
                                      schedule_name="schedule_4")
        assert result.gate_level_cycles_simulated == 20
        assert result.tlm_cycles_simulated > 100_000_000
        assert result.speedup > 100

    def test_invalid_cycle_count(self):
        with pytest.raises(ValueError):
            run_speed_comparison(gate_level_cycles=0)
