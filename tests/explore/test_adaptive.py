"""Tests of the adaptive exploration engine (Pareto + successive halving)."""

import csv
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore.adaptive import (
    ADAPTIVE_SCHEMA_VERSION,
    DEFAULT_OBJECTIVES,
    PROVENANCE_COLUMNS,
    AdaptiveSearch,
    Objective,
    ParetoFront,
    adaptive_search_from_axes,
    dominates,
    objective_vector,
    parse_objective,
    pareto_front_mask,
    pareto_ranks,
)
from repro.explore.campaign import (
    NONDETERMINISTIC_COLUMNS,
    RESULT_COLUMNS,
    SCHEMA_VERSION,
    Campaign,
    clear_scenario_cache,
)
from repro.explore.scenarios import ScenarioGrid, ScenarioSpec


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_scenario_cache()
    yield
    clear_scenario_cache()


# -- dominance unit tests -----------------------------------------------------
class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))
        assert not dominates((2, 2), (1, 1))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((2, 1), (2, 2))

    def test_trade_off_is_incomparable(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((2, 2), (2, 2))

    def test_single_objective_degenerate_case(self):
        # With one objective, dominance collapses to strict 'less than'.
        assert dominates((1,), (2,))
        assert not dominates((2,), (1,))
        assert not dominates((2,), (2,))


class TestParetoFront:
    def test_front_keeps_trade_offs_and_drops_dominated(self):
        front = ParetoFront()
        assert front.add("a", (1, 3))
        assert front.add("b", (3, 1))
        assert not front.add("c", (4, 4))        # dominated by both
        assert front.add("d", (0, 0))            # dominates everything
        assert front.points == ["d"]

    def test_equal_vectors_coexist(self):
        front = ParetoFront()
        assert front.add("a", (2, 2))
        assert front.add("b", (2, 2))
        assert sorted(front.points) == ["a", "b"]

    def test_tie_on_one_axis(self):
        front = ParetoFront()
        front.add("a", (1, 2))
        assert not front.add("b", (1, 3))        # same x, worse y
        assert front.add("c", (1, 1))            # same x, better y: evicts a
        assert front.points == ["c"]

    def test_single_objective_front_is_the_minimum(self):
        front = ParetoFront(objectives=(Objective("test_length_cycles"),))
        front.add("a", (5,))
        front.add("b", (3,))
        front.add("c", (7,))
        front.add("d", (3,))                     # ties with the minimum
        assert sorted(front.points) == ["b", "d"]

    def test_vector_length_is_validated(self):
        front = ParetoFront()
        with pytest.raises(ValueError):
            front.add("a", (1,))


def test_pareto_ranks_peel_front_by_front():
    vectors = [(0, 0), (1, 1), (2, 2), (0, 3)]
    # (0, 0) dominates everything; (1, 1) and (0, 3) are mutually
    # incomparable and form the second front; (2, 2) peels last.
    assert pareto_ranks(vectors) == [0, 1, 2, 1]


def test_objective_parsing_and_validation():
    assert parse_objective("peak_power") == Objective("peak_power")
    assert parse_objective("avg_power:max") == Objective("avg_power", maximize=True)
    with pytest.raises(ValueError):
        parse_objective("peak_power:upwards")
    with pytest.raises(ValueError):
        Objective("not_a_column")
    for column in NONDETERMINISTIC_COLUMNS:
        # Searching on timing/placement columns would break the bitwise
        # artifact-determinism guarantee.
        with pytest.raises(ValueError):
            Objective(column)
    for column in ("scenario", "kind", "schedule"):
        # Label columns cannot be minimized/maximized; reject up front
        # instead of crashing after the first simulated round.
        with pytest.raises(ValueError):
            Objective(column)


def test_objective_vector_negates_maximized_columns():
    class FakeOutcome:
        @staticmethod
        def as_row():
            return {"test_length_cycles": 10, "peak_power": 2.5}

    vector = objective_vector(
        FakeOutcome(),
        (Objective("test_length_cycles"), Objective("peak_power", maximize=True)),
    )
    assert vector == (10.0, -2.5)


# -- search mechanics ---------------------------------------------------------
def small_search(**kwargs) -> AdaptiveSearch:
    return adaptive_search_from_axes(
        {"core_count": [1, 2], "tam_width_bits": [8, 32]},
        base=ScenarioSpec(name="base", patterns_per_core=16, seed=7),
        **kwargs,
    )


def test_budget_ladder_ends_at_full_fidelity():
    search = small_search(eta=2.0, min_budget=0.25)
    assert search.budgets() == [0.25, 0.5, 1.0]
    assert small_search(min_budget=1.0).budgets() == [1.0]


def test_budget_ladder_starts_at_min_budget():
    # min_budget is always the cheapest round, even when eta overshoots 1.0
    # in one step or 1.0 is not an exact power of eta away.
    assert small_search(eta=8.0, min_budget=0.25).budgets() == [0.25, 1.0]
    assert small_search(eta=2.0, min_budget=0.2).budgets() == [0.2, 0.4, 0.8, 1.0]


def test_budgeted_spec_scales_patterns_only():
    spec = ScenarioSpec(name="s", patterns_per_core=100, seed=3)
    thinned = AdaptiveSearch.budgeted_spec(spec, 0.25)
    assert thinned.patterns_per_core == 25
    assert thinned.name == spec.name and thinned.seed == spec.seed
    assert AdaptiveSearch.budgeted_spec(spec, 1.0) is spec
    # The budget never starves a candidate completely.
    tiny = AdaptiveSearch.budgeted_spec(
        ScenarioSpec(name="t", patterns_per_core=2), 0.1)
    assert tiny.patterns_per_core == 1


def test_parameter_validation():
    specs = [ScenarioSpec(name="a")]
    with pytest.raises(ValueError):
        AdaptiveSearch(specs, eta=1.0)
    with pytest.raises(ValueError):
        AdaptiveSearch(specs, min_budget=0.0)
    with pytest.raises(ValueError):
        AdaptiveSearch(specs, objectives=())
    with pytest.raises(ValueError):
        AdaptiveSearch([])
    with pytest.raises(ValueError):
        AdaptiveSearch([ScenarioSpec(name="a"), ScenarioSpec(name="a")])


def test_rounds_halve_candidates_and_finish_at_full_budget():
    result = small_search(eta=2.0, min_budget=0.25).run()
    assert [r.budget for r in result.rounds] == [0.25, 0.5, 1.0]
    assert result.rounds[0].job_count == 8      # 4 scenarios x 2 schedules
    assert result.rounds[1].job_count == 4
    assert result.rounds[2].job_count == 2
    assert result.full_fidelity_jobs == 2
    assert result.exhaustive_jobs == 8
    assert result.total_jobs == 14


def test_quantized_budgets_reuse_outcomes_instead_of_resimulating():
    # patterns_per_core=1 quantizes every budget to 1 pattern: only the
    # first round simulates anything; later rounds reuse cached outcomes,
    # so the search never costs more than the exhaustive grid.
    search = adaptive_search_from_axes(
        {"core_count": [1, 2], "tam_width_bits": [8, 32]},
        base=ScenarioSpec(name="base", patterns_per_core=1, seed=7),
        eta=2.0, min_budget=0.25,
    )
    result = search.run()
    assert [r.simulated_jobs for r in result.rounds] == [8, 0, 0]
    assert [r.job_count for r in result.rounds] == [8, 4, 2]
    assert result.total_jobs == 8 <= result.exhaustive_jobs
    assert result.full_fidelity_jobs == 0
    # Reused rows are present in the artifacts with their round provenance.
    rows = result.rows()
    assert len(rows) == 14


def test_final_front_is_mutually_non_dominated():
    result = small_search().run()
    assert result.front                          # never empty
    vectors = [objective_vector(o, result.objectives) for o in result.front]
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            if i != j:
                assert not dominates(a, b)
    # The front is drawn from the final round's survivors.
    final_keys = set(result.rounds[-1].survivors)
    assert {(o.spec.name, o.schedule) for o in result.front} == final_keys


def test_deterministic_artifacts_bitwise_identical(tmp_path):
    paths = []
    # Serial vs worker pool: same seed must yield bitwise-identical files.
    for run_index, workers in enumerate((1, 2)):
        clear_scenario_cache()
        result = small_search(eta=2.0, min_budget=0.25).run(workers=workers)
        csv_path = tmp_path / f"run{run_index}.csv"
        json_path = tmp_path / f"run{run_index}.json"
        result.write_csv(csv_path)
        result.write_json(json_path)
        paths.append((csv_path, json_path))
    assert paths[0][0].read_bytes() == paths[1][0].read_bytes()
    assert paths[0][1].read_bytes() == paths[1][1].read_bytes()


def test_artifact_schema(tmp_path):
    result = small_search().run()
    csv_path = tmp_path / "adaptive.csv"
    result.write_csv(csv_path)
    expected = [c for c in RESULT_COLUMNS
                if c not in NONDETERMINISTIC_COLUMNS] + list(PROVENANCE_COLUMNS)
    with open(csv_path) as handle:
        reader = csv.DictReader(handle)
        assert reader.fieldnames == expected
        rows = list(reader)
    # One CSV row per result row (simulated or reused); total_jobs counts
    # only simulated jobs and can be smaller under budget quantization.
    assert len(rows) == sum(r.job_count for r in result.rounds)

    json_path = tmp_path / "adaptive.json"
    result.write_json(json_path)
    document = json.loads(json_path.read_text())
    assert document["schema_version"] == SCHEMA_VERSION
    assert document["adaptive_schema_version"] == ADAPTIVE_SCHEMA_VERSION
    assert document["columns"] == expected
    assert document["full_fidelity_jobs"] == result.full_fidelity_jobs
    assert len(document["front"]) == len(result.front)
    assert "wall_seconds" not in document and "workers" not in document
    # Non-deterministic rows keep the timing/placement columns and metadata.
    loose = result.as_document(deterministic=False)
    assert "cpu_seconds" in loose["columns"]
    assert "wall_seconds" in loose and "workers" in loose


def test_survivor_specs_resume_into_campaign_or_search():
    result = small_search().run()
    specs = result.survivor_specs()
    assert specs
    by_name = {spec.name: spec for spec in specs}
    for outcome in result.front:
        assert outcome.schedule in by_name[outcome.spec.name].schedules
    # The survivors are directly runnable, both exhaustively and adaptively.
    assert len(Campaign(specs).jobs()) == len(result.front)
    AdaptiveSearch(specs, min_budget=0.5)


def test_single_objective_search_degenerates_to_minimization():
    result = small_search(
        objectives=(Objective("test_length_cycles"),)).run()
    lengths = [o.test_length_cycles for o in result.rounds[-1].run.outcomes]
    front_lengths = {o.test_length_cycles for o in result.front}
    assert front_lengths == {min(lengths)}


def test_intermediate_survivors_prefer_non_dominated_pairs():
    search = small_search(eta=2.0, min_budget=0.5)
    result = search.run()
    first = result.rounds[0]
    vectors = {
        (o.spec.name, o.schedule): objective_vector(o, result.objectives)
        for o in first.run.outcomes
    }
    survivors = set(first.survivors)
    ranks = pareto_ranks(list(vectors.values()))
    rank_by_key = dict(zip(vectors.keys(), ranks))
    worst_kept = max(rank_by_key[key] for key in survivors)
    best_cut = min((rank for key, rank in rank_by_key.items()
                    if key not in survivors), default=None)
    # Selection is rank-monotonic: no pruned pair out-ranks a survivor.
    if best_cut is not None:
        assert best_cut >= worst_kept


@pytest.mark.slow
def test_large_space_runs_fewer_full_fidelity_jobs_than_grid():
    grid = ScenarioGrid(
        {
            "core_count": [1, 2, 3],
            "tam_width_bits": [8, 16, 32],
            "compression_ratio": [10.0, 100.0],
            "wrapper_parallel_width_bits": [0, 4],
            "ate_vector_memory_words": [0, 2048],
        },
        base=ScenarioSpec(name="base", patterns_per_core=16, seed=11),
    )
    specs = grid.specs()
    assert len(specs) >= 50
    search = AdaptiveSearch(grid, eta=3.0, min_budget=0.25)
    result = search.run(workers=2)
    exhaustive = len(Campaign(specs).jobs())
    assert result.exhaustive_jobs == exhaustive
    assert result.full_fidelity_jobs < exhaustive
    vectors = [objective_vector(o, result.objectives) for o in result.front]
    for i, a in enumerate(vectors):
        for j, b in enumerate(vectors):
            if i != j:
                assert not dominates(a, b)


class TestRoundSharding:
    """Adaptive rounds executed through the shard plan/run/merge machinery
    (the ROADMAP item: each round's job list is a plain CampaignJob list)."""

    @staticmethod
    def search():
        return adaptive_search_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [16, 32]},
            base=ScenarioSpec(name="base", patterns_per_core=32, seed=5),
            eta=2.0, min_budget=0.5)

    def test_sharded_rounds_bitwise_identical_to_unsharded(self):
        unsharded = self.search().run()
        for shards in (2, 3):
            clear_scenario_cache()
            sharded = self.search().run(round_shards=shards)
            assert sharded.as_document() == unsharded.as_document()
            assert sharded.round_shards == shards

    def test_lead_shard_rotation_does_not_change_results(self):
        baseline = self.search().run(round_shards=3, lead_shard=0)
        for lead in (1, 2):
            clear_scenario_cache()
            rotated = self.search().run(round_shards=3, lead_shard=lead)
            assert rotated.as_document() == baseline.as_document()

    def test_more_shards_than_round_jobs_degrades_gracefully(self):
        tiny = AdaptiveSearch(
            [ScenarioSpec(name="one", core_count=1, patterns_per_core=16,
                          seed=3, schedules=("sequential", "greedy"))],
            eta=2.0, min_budget=0.5)
        sharded = tiny.run(round_shards=64)
        clear_scenario_cache()
        plain = tiny.run()
        assert sharded.as_document() == plain.as_document()

    def test_sharded_resume_matches_unsharded_run(self, tmp_path):
        checkpoint = self.search().run(max_rounds=1, round_shards=2)
        path = tmp_path / "ckpt.json"
        checkpoint.write_json(path)
        with open(path) as handle:
            document = json.load(handle)
        from repro.explore.adaptive import resume_search
        resumed = resume_search(document, round_shards=2)
        clear_scenario_cache()
        full = self.search().run()
        assert resumed.as_document() == full.as_document()

    def test_invalid_shard_parameters_rejected(self):
        with pytest.raises(ValueError, match="round_shards"):
            self.search().run(round_shards=0)
        with pytest.raises(ValueError, match="lead_shard"):
            self.search().run(round_shards=2, lead_shard=2)

    def test_round_shards_not_serialized(self):
        result = self.search().run(round_shards=2)
        document = result.as_document()
        assert "round_shards" not in json.dumps(document)


# -- vectorized Pareto analytics vs the definitional reference ----------------

objective_values = st.integers(min_value=0, max_value=6)
vector_lists = st.integers(min_value=1, max_value=4).flatmap(
    lambda dims: st.lists(
        st.tuples(*[objective_values] * dims), max_size=40))


#: Real result columns standing in for up-to-4-dimensional objectives
#: (Objective validates its column against RESULT_COLUMNS).
_OBJECTIVE_COLUMNS = ("test_length_cycles", "peak_power", "avg_power",
                      "estimated_cycles")


class _Point:
    """A payload whose as_row() exposes one column per objective dim."""

    def __init__(self, index, vector):
        self.index = index
        self._row = dict(zip(_OBJECTIVE_COLUMNS, vector))

    def as_row(self):
        return self._row


def reference_ranks(vectors):
    """Literal front-by-front peeling with scalar dominates()."""
    vectors = [tuple(float(v) for v in vector) for vector in vectors]
    ranks = [-1] * len(vectors)
    remaining = set(range(len(vectors)))
    rank = 0
    while remaining:
        front = [i for i in remaining
                 if not any(dominates(vectors[j], vectors[i])
                            for j in remaining if j != i)]
        for index in front:
            ranks[index] = rank
        remaining.difference_update(front)
        rank += 1
    return ranks


class TestVectorizedPareto:
    """The numpy pareto_ranks / pareto_front_mask / ParetoFront.extend
    must be indistinguishable from the scalar definitions — small integer
    coordinates force plenty of ties, duplicates and dominance chains."""

    @settings(max_examples=120, deadline=None)
    @given(vectors=vector_lists)
    def test_pareto_ranks_match_reference_peeling(self, vectors):
        assert pareto_ranks(vectors) == reference_ranks(vectors)

    @settings(max_examples=120, deadline=None)
    @given(vectors=vector_lists)
    def test_front_mask_is_rank_zero(self, vectors):
        ranks = reference_ranks(vectors)
        assert pareto_front_mask(vectors) \
            == [rank == 0 for rank in ranks]

    @settings(max_examples=80, deadline=None)
    @given(batches=st.integers(min_value=1, max_value=4).flatmap(
        lambda dims: st.lists(
            st.lists(st.tuples(*[objective_values] * dims), max_size=15),
            min_size=1, max_size=3)))
    def test_extend_equals_sequential_adds(self, batches):
        """Bulk extend() after any prefix of adds leaves exactly the points
        (and insertion order) that one-at-a-time add() would have kept."""
        dims = len(batches[0][0]) if batches[0] else \
            next((len(b[0]) for b in batches if b), 2)
        batches = [[v for v in batch if len(v) == dims] for batch in batches]
        objectives = tuple(Objective(column)
                           for column in _OBJECTIVE_COLUMNS[:dims])

        sequential = ParetoFront(objectives=objectives)
        staged = ParetoFront(objectives=objectives)
        index = 0
        for batch in batches:
            points = [_Point(index + offset, vector)
                      for offset, vector in enumerate(batch)]
            index += len(batch)
            for point in points:
                sequential.add(point,
                               vector=objective_vector(point, objectives))
            staged.extend(points)
            assert [p.index for p in staged.points] \
                == [p.index for p in sequential.points]
            assert staged.vectors == sequential.vectors
