"""Unit tests of the scheduler-strategy subsystem: registry, canonical spec
strings, and the two new optimizers (binpack, anneal)."""

import pytest

from repro.schedule import (
    PowerModel,
    TestKind,
    TestTask,
    binpack_power_schedule,
    local_search_schedule,
)
from repro.schedule.scheduler import (
    greedy_concurrent_schedule,
    schedule_makespan_estimate,
)
from repro.schedule.strategies import (
    AnnealParams,
    BinpackParams,
    PortfolioParams,
    ScheduleStrategySpec,
    SchedulerStrategy,
    StrategyParams,
    build_strategy_schedule,
    canonical_schedule_name,
    estimated_makespan,
    get_strategy,
    is_strategy,
    register_strategy,
    strategy_fingerprint,
    strategy_names,
)


@pytest.fixture
def tasks():
    def bist(name, core, power):
        return TestTask(name=name, kind=TestKind.LOGIC_BIST, core=core,
                        pattern_count=100, power=power)
    return {
        "a": bist("a", "c0", 2.0),
        "b": bist("b", "c1", 1.5),
        "c": bist("c", "c2", 1.0),
        "d": TestTask(name="d", kind=TestKind.EXTERNAL_SCAN, core="c3",
                      pattern_count=100, power=1.2),
        "e": TestTask(name="e", kind=TestKind.EXTERNAL_SCAN, core="c4",
                      pattern_count=100, power=0.8),
    }


@pytest.fixture
def estimates():
    return {"a": 1000, "b": 800, "c": 300, "d": 700, "e": 250}


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert strategy_names() == ["sequential", "greedy", "binpack",
                                    "anneal", "portfolio"]
        for name in strategy_names():
            assert is_strategy(name)
            assert get_strategy(name).summary

    def test_unknown_strategy_raises_with_listing(self):
        with pytest.raises(KeyError, match="registered"):
            get_strategy("nope")
        assert not is_strategy("nope")
        assert is_strategy("anneal:steps=3")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(SchedulerStrategy(
                name="greedy", params_type=StrategyParams,
                builder=lambda *args: None))

    def test_invalid_names_rejected(self):
        for bad in ("", "a:b", "x,y", "k=v"):
            with pytest.raises(ValueError, match="invalid strategy name"):
                register_strategy(SchedulerStrategy(
                    name=bad, params_type=StrategyParams,
                    builder=lambda *args: None))


class TestCanonicalSpecStrings:
    def test_defaults_render_to_the_bare_name(self):
        for name in strategy_names():
            spec = ScheduleStrategySpec.parse(name)
            assert spec.canonical == name
            assert spec.fingerprint == ""

    def test_parameters_canonicalize_in_declaration_order(self):
        assert canonical_schedule_name("anneal:seed=9,steps=512") == \
            "anneal:steps=512,seed=9"
        assert canonical_schedule_name("binpack:fit=worst") == "binpack:fit=worst"

    def test_default_valued_parameters_are_dropped(self):
        assert canonical_schedule_name("binpack:fit=best") == "binpack"
        assert canonical_schedule_name("anneal:steps=256,seed=1") == "anneal"

    def test_canonicalization_is_idempotent(self):
        text = canonical_schedule_name("anneal:seed=3,cost=makespan")
        assert canonical_schedule_name(text) == text

    def test_non_strategy_names_pass_through(self):
        assert canonical_schedule_name("schedule_1") == "schedule_1"
        assert ScheduleStrategySpec.parse("schedule_1") is None

    def test_float_parameters_round_trip(self):
        spec = ScheduleStrategySpec.parse("anneal:peak_weight=0.25")
        assert spec.params.peak_weight == 0.25
        assert ScheduleStrategySpec.parse(spec.canonical) == spec

    @pytest.mark.parametrize("bad", [
        "greedy:max_concurrency=x",   # wrong value type
        "greedy:nope=1",              # unknown parameter
        "greedy:",                    # empty parameter list
        "greedy:max_concurrency",     # missing '='
        "greedy:max_concurrency=1,max_concurrency=2",  # duplicate key
        "anneal:cost=bogus",          # invalid enum value
        "anneal:peak_weight=2.0",     # out of range
        "typo:steps=1",               # unknown strategy *with* parameters
    ])
    def test_malformed_spec_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            ScheduleStrategySpec.parse(bad)

    def test_reserved_delimiters_in_string_values_rejected_at_render(self):
        # A third-party strategy with a free-form str parameter must not be
        # able to render a canonical string that cannot be re-parsed.
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class TagParams(StrategyParams):
            tag: str = "ok"

        spec = ScheduleStrategySpec(strategy="x", params=TagParams(tag="a,b"))
        with pytest.raises(ValueError, match="reserved"):
            spec.canonical

    def test_canonical_schedule_names_dedupes_recipes(self):
        from repro.schedule.strategies import canonical_schedule_names

        names = canonical_schedule_names(
            ["greedy", "greedy:max_concurrency=0", "schedule_1",
             "binpack:fit=best", "binpack", "schedule_1"])
        assert names == ("greedy", "schedule_1", "binpack")

    def test_fingerprint_for_artifacts(self):
        assert strategy_fingerprint("greedy") == ("greedy", "")
        assert strategy_fingerprint("anneal:steps=512,seed=9") == \
            ("anneal", "steps=512,seed=9")
        # Hand-written schedules and malformed names never raise on the
        # artifact-writing path.
        assert strategy_fingerprint("schedule_4") == ("", "")
        assert strategy_fingerprint("greedy:bogus") == ("", "")


class TestBuildThroughRegistry:
    def test_schedule_named_by_canonical_string(self, tasks, estimates):
        schedule = build_strategy_schedule("binpack:fit=best", tasks, estimates)
        assert schedule.name == "binpack"
        schedule.validate(tasks)
        assert sorted(schedule.task_names) == sorted(tasks)

    def test_unregistered_name_raises_keyerror(self, tasks, estimates):
        with pytest.raises(KeyError, match="schedule_1"):
            build_strategy_schedule("schedule_1", tasks, estimates)

    def test_wrong_params_type_rejected(self, tasks, estimates):
        with pytest.raises(TypeError, match="GreedyParams"):
            get_strategy("greedy").build(tasks, estimates,
                                         params=BinpackParams())

    def test_sequential_orderings(self, tasks, estimates):
        longest = build_strategy_schedule("sequential", tasks, estimates)
        assert longest.task_names == ["a", "b", "d", "c", "e"]
        by_name = build_strategy_schedule("sequential:order=name", tasks,
                                          estimates)
        assert by_name.task_names == sorted(tasks)


class TestBinpack:
    def test_respects_budget_and_conflicts(self, tasks, estimates):
        model = PowerModel(budget=3.0)
        schedule = binpack_power_schedule("bp", tasks, estimates,
                                          power_model=model)
        schedule.validate(tasks)
        for phase in schedule.phases:
            assert model.phase_fits_budget(phase, tasks)

    def test_best_fit_hides_short_tasks_under_long_phases(self, tasks,
                                                          estimates):
        # Budget 3.5: greedy first-fit parks "c" (1.0) with "b" in the first
        # phase it fits; best-fit prefers the tightest makespan fit.
        model = PowerModel(budget=3.5)
        greedy = greedy_concurrent_schedule("g", tasks, estimates,
                                            power_model=model)
        packed = binpack_power_schedule("bp", tasks, estimates,
                                        power_model=model)
        assert schedule_makespan_estimate(packed, estimates) <= \
            schedule_makespan_estimate(greedy, estimates)

    def test_worst_fit_lowers_phase_power(self, tasks, estimates):
        model = PowerModel(budget=6.0)
        best = binpack_power_schedule("best", tasks, estimates,
                                      power_model=model, fit="best")
        worst = binpack_power_schedule("worst", tasks, estimates,
                                       power_model=model, fit="worst")
        assert model.schedule_peak_power(worst, tasks) <= \
            model.schedule_peak_power(best, tasks)

    def test_unlimited_budget_matches_conflict_only_packing(self, tasks,
                                                            estimates):
        schedule = binpack_power_schedule("bp", tasks, estimates)
        # Only the two external-scan tests conflict (shared ATE channel), so
        # an unlimited budget packs everything into two phases.
        assert schedule.phase_count == 2

    def test_max_concurrency_enforced(self, tasks, estimates):
        schedule = binpack_power_schedule("bp", tasks, estimates,
                                          max_concurrency=2)
        assert all(len(phase) <= 2 for phase in schedule.phases)

    def test_invalid_fit_rejected(self, tasks, estimates):
        with pytest.raises(ValueError, match="fit"):
            binpack_power_schedule("bp", tasks, estimates, fit="middle")

    def test_missing_estimate_rejected(self, tasks, estimates):
        estimates = dict(estimates)
        estimates.pop("a")
        with pytest.raises(KeyError, match="a"):
            binpack_power_schedule("bp", tasks, estimates)


class TestAnneal:
    def test_never_worse_than_its_initial_schedule(self, tasks, estimates):
        model = PowerModel(budget=3.0)
        initial = greedy_concurrent_schedule("init", tasks, estimates,
                                             power_model=model)
        annealed = local_search_schedule("an", tasks, estimates,
                                         power_model=model, seed=3, steps=200,
                                         cost="makespan", initial=initial)
        assert schedule_makespan_estimate(annealed, estimates) <= \
            schedule_makespan_estimate(initial, estimates)
        annealed.validate(tasks)
        for phase in annealed.phases:
            assert model.phase_fits_budget(phase, tasks)

    def test_peak_power_cost_flattens_the_profile(self, tasks, estimates):
        model = PowerModel(budget=10.0)
        initial = binpack_power_schedule("init", tasks, estimates,
                                         power_model=model)
        annealed = local_search_schedule("an", tasks, estimates,
                                         power_model=model, seed=5, steps=300,
                                         cost="peak_power", initial=initial)
        assert model.schedule_peak_power(annealed, tasks) <= \
            model.schedule_peak_power(initial, tasks)

    def test_same_seed_is_bitwise_deterministic(self, tasks, estimates):
        model = PowerModel(budget=3.0)
        first = local_search_schedule("an", tasks, estimates,
                                      power_model=model, seed=7, steps=150)
        second = local_search_schedule("an", tasks, estimates,
                                       power_model=model, seed=7, steps=150)
        assert first.phases == second.phases

    def test_zero_steps_returns_the_initial_schedule(self, tasks, estimates):
        model = PowerModel(budget=3.0)
        initial = greedy_concurrent_schedule("init", tasks, estimates,
                                             power_model=model)
        annealed = local_search_schedule("an", tasks, estimates,
                                         power_model=model, seed=1, steps=0)
        assert sorted(map(tuple, annealed.phases)) == \
            sorted(map(tuple, initial.phases))

    @pytest.mark.parametrize("kwargs", [
        {"cost": "bogus"}, {"peak_weight": 1.5}, {"steps": -1},
    ])
    def test_invalid_parameters_rejected(self, tasks, estimates, kwargs):
        with pytest.raises(ValueError):
            local_search_schedule("an", tasks, estimates, **kwargs)

    def test_anneal_params_validation(self):
        with pytest.raises(ValueError):
            AnnealParams(cost="x")
        with pytest.raises(ValueError):
            AnnealParams(init="x")
        with pytest.raises(ValueError):
            AnnealParams(peak_weight=-0.1)


class TestPortfolio:
    def test_picks_the_best_member_under_the_estimator(self, tasks,
                                                       estimates):
        model = PowerModel(budget=3.5)
        portfolio = build_strategy_schedule(
            "portfolio:members=greedy|binpack", tasks, estimates,
            power_model=model)
        members = [build_strategy_schedule(member, tasks, estimates,
                                           power_model=model)
                   for member in ("greedy", "binpack")]
        best = min(
            (estimated_makespan(m, estimates),
             model.schedule_peak_power(m, tasks)) for m in members)
        assert (estimated_makespan(portfolio, estimates),
                model.schedule_peak_power(portfolio, tasks)) == best

    def test_never_worse_than_any_member(self, tasks, estimates):
        model = PowerModel(budget=6.0)
        portfolio = build_strategy_schedule(
            "portfolio", tasks, estimates, power_model=model)
        portfolio.validate(tasks)
        for member in PortfolioParams().member_names:
            schedule = build_strategy_schedule(member, tasks, estimates,
                                               power_model=model)
            assert estimated_makespan(portfolio, estimates) <= \
                estimated_makespan(schedule, estimates)

    def test_description_names_the_winner(self, tasks, estimates):
        model = PowerModel(budget=3.0)
        schedule = build_strategy_schedule(
            "portfolio:members=greedy|binpack", tasks, estimates,
            power_model=model)
        assert "portfolio best-of-2" in schedule.description
        assert ("picked greedy" in schedule.description
                or "picked binpack" in schedule.description)

    def test_member_order_breaks_exact_ties_deterministically(self, tasks,
                                                              estimates):
        # binpack|greedy vs greedy|binpack must both resolve ties by member
        # *name*, not list position, so the two spellings agree.
        model = PowerModel(budget=3.0)
        first = build_strategy_schedule(
            "portfolio:members=greedy|binpack", tasks, estimates,
            power_model=model)
        second = build_strategy_schedule(
            "portfolio:members=binpack|greedy", tasks, estimates,
            power_model=model)
        assert sorted(map(tuple, first.phases)) == \
            sorted(map(tuple, second.phases))

    @pytest.mark.parametrize("members", [
        "", "greedy|", "greedy|greedy", "portfolio", "greedy|nope",
        "greedy|anneal:steps=5",
    ])
    def test_invalid_member_lists_rejected(self, members):
        with pytest.raises(ValueError):
            PortfolioParams(members=members)

    def test_canonical_spec_string_round_trips(self):
        name = canonical_schedule_name("portfolio:members=binpack|greedy")
        assert name == "portfolio:members=binpack|greedy"
        assert canonical_schedule_name("portfolio") == "portfolio"
