"""Unit tests for test tasks and schedules."""

import pytest

from repro.memory.march import MATS_PLUS
from repro.schedule import TestKind, TestSchedule, TestTask


def make_task(name="t", kind=TestKind.LOGIC_BIST, core="cpu", patterns=100,
              **kwargs):
    return TestTask(name=name, kind=kind, core=core, pattern_count=patterns,
                    **kwargs)


class TestTestTask:
    def test_pattern_tests_need_patterns(self):
        with pytest.raises(ValueError):
            TestTask(name="t", kind=TestKind.EXTERNAL_SCAN, core="cpu")

    def test_march_tests_need_a_march(self):
        with pytest.raises(ValueError):
            TestTask(name="t", kind=TestKind.MEMORY_BIST_CONTROLLER, core="mem")
        task = TestTask(name="t", kind=TestKind.MEMORY_BIST_CONTROLLER,
                        core="mem", march=MATS_PLUS)
        assert task.march is MATS_PLUS

    def test_invalid_compression_ratio(self):
        with pytest.raises(ValueError):
            make_task(kind=TestKind.EXTERNAL_SCAN_COMPRESSED,
                      compression_ratio=0.5)

    def test_resources_core_only_for_bist(self):
        task = make_task(kind=TestKind.LOGIC_BIST, core="dct")
        assert task.resources == frozenset({"core:dct"})

    def test_resources_external_tests_need_ate_channel(self):
        task = make_task(kind=TestKind.EXTERNAL_SCAN, core="dct")
        assert "ate_channel" in task.resources

    def test_resources_processor_march_occupies_processor(self):
        task = TestTask(name="t", kind=TestKind.MEMORY_MARCH_PROCESSOR,
                        core="memory", march=MATS_PLUS,
                        attributes={"processor_core": "cpu0"})
        assert task.resources == frozenset({"core:memory", "core:cpu0"})

    def test_conflicts(self):
        bist = make_task(name="a", kind=TestKind.LOGIC_BIST, core="cpu")
        external_same_core = make_task(name="b", kind=TestKind.EXTERNAL_SCAN,
                                       core="cpu")
        external_other = make_task(name="c", kind=TestKind.EXTERNAL_SCAN,
                                   core="dct")
        bist_other = make_task(name="d", kind=TestKind.LOGIC_BIST, core="cc")
        assert bist.conflicts_with(external_same_core)
        assert external_same_core.conflicts_with(external_other)  # ATE channel
        assert not bist.conflicts_with(external_other)
        assert not bist.conflicts_with(bist_other)


class TestTestSchedule:
    @pytest.fixture
    def tasks(self):
        return {
            "a": make_task(name="a", kind=TestKind.LOGIC_BIST, core="cpu"),
            "b": make_task(name="b", kind=TestKind.EXTERNAL_SCAN, core="dct"),
            "c": make_task(name="c", kind=TestKind.LOGIC_BIST, core="cc"),
        }

    def test_sequential_builder(self, tasks):
        schedule = TestSchedule.sequential("seq", ["a", "b", "c"])
        assert schedule.is_sequential
        assert schedule.phase_count == 3
        assert schedule.task_names == ["a", "b", "c"]
        schedule.validate(tasks)

    def test_concurrent_phases(self, tasks):
        schedule = TestSchedule(name="conc", phases=[["a", "b"], ["c"]])
        assert not schedule.is_sequential
        schedule.validate(tasks)

    def test_validate_rejects_unknown_task(self, tasks):
        schedule = TestSchedule(name="bad", phases=[["zzz"]])
        with pytest.raises(ValueError):
            schedule.validate(tasks)

    def test_validate_rejects_duplicate_task(self, tasks):
        schedule = TestSchedule(name="bad", phases=[["a"], ["a"]])
        with pytest.raises(ValueError):
            schedule.validate(tasks)

    def test_validate_rejects_empty_phase(self, tasks):
        schedule = TestSchedule(name="bad", phases=[[]])
        with pytest.raises(ValueError):
            schedule.validate(tasks)

    def test_validate_rejects_conflicting_phase(self, tasks):
        conflicting = {
            "a": make_task(name="a", kind=TestKind.EXTERNAL_SCAN, core="cpu"),
            "b": make_task(name="b", kind=TestKind.EXTERNAL_SCAN, core="dct"),
        }
        schedule = TestSchedule(name="bad", phases=[["a", "b"]])
        with pytest.raises(ValueError, match="ate_channel"):
            schedule.validate(conflicting)

    def test_str_representation(self, tasks):
        schedule = TestSchedule(name="s", phases=[["a", "b"], ["c"]])
        assert "{a, b}" in str(schedule)
