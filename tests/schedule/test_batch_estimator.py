"""Differential tests of the vectorized batch estimator.

The batch estimator advertises bit-exactness with
``TestTimeEstimator.estimate_task_cycles``; these tests hold it to that
over hypothesis-generated platforms and task sets covering every test
kind, every bandwidth-limited regime (ATE-, TAM- and shift-limited) and
the ATE vector-memory reload branch.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dft.ctl import CoreTestDescription
from repro.memory.march import MARCH_C_MINUS, MATS_PLUS
from repro.schedule import (
    PlatformParameters,
    TestKind,
    TestSchedule,
    TestTask,
    TestTimeEstimator,
)
from repro.schedule.estimator import BatchEstimator, estimate_batch

_MARCHES = (MATS_PLUS, MARCH_C_MINUS)


@st.composite
def platforms(draw):
    """Platforms spanning the estimator's branch space, including finite
    ATE vector memories (the reload-stall branch) and narrow wrapper
    parallel ports."""
    return PlatformParameters(
        tam_width_bits=draw(st.sampled_from([8, 16, 32, 64])),
        ate_width_bits=draw(st.sampled_from([1, 8, 16, 32])),
        tam_overhead_cycles=draw(st.integers(min_value=0, max_value=4)),
        configuration_cycles=draw(st.integers(min_value=0, max_value=128)),
        setup_transactions=draw(st.integers(min_value=0, max_value=8)),
        wrapper_parallel_width_bits=draw(st.sampled_from([0, 1, 2, 8, 64])),
        ate_vector_memory_words=draw(st.sampled_from([0, 64, 1000, 100_000])),
        ate_reload_cycles=draw(st.integers(min_value=0, max_value=50_000)),
        controller_cycles_per_memory_op=draw(st.floats(
            min_value=0.5, max_value=8.0, allow_nan=False)),
        processor_cycles_per_memory_op=draw(st.floats(
            min_value=0.5, max_value=8.0, allow_nan=False)),
    )


@st.composite
def scenario_tasks(draw):
    """(descriptions, memory_words, tasks) with one task per test kind
    drawn for a handful of random cores."""
    descriptions = {}
    memory_words = {}
    tasks = {}
    for index in range(draw(st.integers(min_value=1, max_value=5))):
        core = f"core{index}"
        chain_count = draw(st.integers(min_value=1, max_value=48))
        cells = draw(st.integers(min_value=chain_count, max_value=60_000))
        internal = draw(st.one_of(
            st.none(), st.integers(min_value=1, max_value=256)))
        descriptions[core] = CoreTestDescription.describe(
            core, chain_count, cells, internal_chain_count=internal,
            has_logic_bist=True)
        memory_words[core] = draw(st.integers(min_value=1, max_value=65_536))
        kind = draw(st.sampled_from(list(TestKind)))
        name = f"t{index}"
        if kind in (TestKind.LOGIC_BIST, TestKind.EXTERNAL_SCAN,
                    TestKind.EXTERNAL_SCAN_COMPRESSED):
            tasks[name] = TestTask(
                name=name, kind=kind, core=core,
                pattern_count=draw(st.integers(min_value=1, max_value=5000)),
                compression_ratio=(draw(st.floats(
                    min_value=1.0, max_value=200.0, allow_nan=False))
                    if kind is TestKind.EXTERNAL_SCAN_COMPRESSED else 1.0))
        elif kind in (TestKind.MEMORY_BIST_CONTROLLER,
                      TestKind.MEMORY_MARCH_PROCESSOR):
            tasks[name] = TestTask(
                name=name, kind=kind, core=core,
                march=draw(st.sampled_from(_MARCHES)),
                pattern_backgrounds=draw(st.integers(min_value=0,
                                                     max_value=4)))
        else:
            tasks[name] = TestTask(
                name=name, kind=kind, core=core,
                attributes={"functional_cycles": draw(
                    st.integers(min_value=0, max_value=10**7))})
    return descriptions, memory_words, tasks


@settings(max_examples=60, deadline=None)
@given(platforms(), scenario_tasks())
def test_batch_matches_scalar_estimator(platform, scenario):
    descriptions, memory_words, tasks = scenario
    estimator = TestTimeEstimator(descriptions, platform,
                                  memory_words=memory_words)
    scalar = estimator.estimate_all(tasks)
    assert estimate_batch(estimator, tasks) == scalar


@settings(max_examples=25, deadline=None)
@given(platforms(), st.lists(scenario_tasks(), min_size=2, max_size=4))
def test_batch_mixes_platforms_across_scenarios(platform, scenarios):
    """Rows from different estimators (different platforms per scenario)
    evaluate independently inside one batch."""
    batch = BatchEstimator()
    rows = []
    expected = []
    for index, (descriptions, memory_words, tasks) in enumerate(scenarios):
        # Vary the platform per scenario so cross-row mixups would show.
        scenario_platform = PlatformParameters(
            tam_width_bits=platform.tam_width_bits,
            ate_width_bits=platform.ate_width_bits,
            tam_overhead_cycles=platform.tam_overhead_cycles + index,
            configuration_cycles=platform.configuration_cycles,
            setup_transactions=platform.setup_transactions,
            wrapper_parallel_width_bits=platform.wrapper_parallel_width_bits,
            ate_vector_memory_words=platform.ate_vector_memory_words,
            ate_reload_cycles=platform.ate_reload_cycles)
        estimator = TestTimeEstimator(descriptions, scenario_platform,
                                      memory_words=memory_words)
        rows.append(batch.add_estimator_tasks(estimator, tasks))
        expected.append(estimator.estimate_all(tasks))
    cycles = batch.task_cycles()
    for scenario_rows, scenario_expected in zip(rows, expected):
        for name, row in scenario_rows.items():
            assert int(cycles[row]) == scenario_expected[name]


def _reload_platform():
    # 400-bit patterns over a 16-bit link: 25 ATE words per pattern, so a
    # 100-word vector memory holds 4 patterns -> ceil(10/4)-1 = 2 reloads.
    return PlatformParameters(ate_width_bits=16,
                              ate_vector_memory_words=100,
                              ate_reload_cycles=7_000)


class TestReloadBranch:
    """The ATE vector-memory reload stalls, pinned by construction."""

    def setup_method(self):
        self.platform = _reload_platform()
        self.descriptions = {
            "c": CoreTestDescription.describe("c", 4, 400,
                                              internal_chain_count=16)}
        self.estimator = TestTimeEstimator(self.descriptions, self.platform)
        self.task = TestTask(name="x", kind=TestKind.EXTERNAL_SCAN, core="c",
                             pattern_count=10)

    def test_scalar_counts_two_reloads(self):
        without = TestTimeEstimator(
            self.descriptions,
            PlatformParameters(ate_width_bits=16))
        delta = (self.estimator.estimate_task_cycles(self.task)
                 - without.estimate_task_cycles(self.task))
        assert delta == 2 * 7_000

    def test_batch_matches_scalar_with_reloads(self):
        assert (estimate_batch(self.estimator, {"x": self.task})
                == self.estimator.estimate_all({"x": self.task}))

    def test_compressed_reload_uses_compressed_ate_words(self):
        task = TestTask(name="x", kind=TestKind.EXTERNAL_SCAN_COMPRESSED,
                        core="c", pattern_count=500, compression_ratio=50.0)
        assert (estimate_batch(self.estimator, {"x": task})
                == self.estimator.estimate_all({"x": task}))


class TestBatchScheduleCycles:
    def test_matches_estimate_schedule_cycles(self):
        descriptions = {
            "a": CoreTestDescription.describe("a", 8, 4_000),
            "b": CoreTestDescription.describe("b", 4, 1_000),
        }
        estimator = TestTimeEstimator(descriptions, PlatformParameters())
        tasks = {
            "ta": TestTask(name="ta", kind=TestKind.EXTERNAL_SCAN, core="a",
                           pattern_count=100),
            "tb": TestTask(name="tb", kind=TestKind.LOGIC_BIST, core="b",
                           pattern_count=300),
        }
        schedule = TestSchedule(name="s", phases=[["ta", "tb"]])
        batch = BatchEstimator()
        rows = batch.add_estimator_tasks(estimator, tasks)
        assert (batch.schedule_cycles(schedule, rows)
                == estimator.estimate_schedule_cycles(schedule, tasks))


class TestBatchErrors:
    def test_scan_task_requires_description(self):
        batch = BatchEstimator()
        task = TestTask(name="x", kind=TestKind.EXTERNAL_SCAN, core="c",
                        pattern_count=1)
        with pytest.raises(KeyError):
            batch.add_task(task, PlatformParameters())

    def test_memory_task_requires_words(self):
        batch = BatchEstimator()
        task = TestTask(name="m", kind=TestKind.MEMORY_BIST_CONTROLLER,
                        core="c", march=MATS_PLUS)
        with pytest.raises(KeyError):
            batch.add_task(task, PlatformParameters())

    def test_empty_batch_evaluates_to_nothing(self):
        assert len(BatchEstimator().task_cycles()) == 0


class TestPlatformValidation:
    """Regression: a zero or negative clock silently produced inf/negative
    seconds from cycles_to_seconds instead of failing at construction."""

    @pytest.mark.parametrize("clock", [0.0, -100.0])
    def test_non_positive_clock_rejected(self, clock):
        with pytest.raises(ValueError, match="clock_mhz"):
            PlatformParameters(clock_mhz=clock)

    def test_positive_clock_accepted(self):
        assert PlatformParameters(clock_mhz=50.0).cycles_to_seconds(
            50_000_000) == pytest.approx(1.0)
