"""Property tests of the scheduler-strategy invariants.

For every registered strategy (across a spread of parameterizations) and
arbitrary generated task sets:

* the schedule runs each task exactly once,
* no phase contains resource-conflicting tasks,
* no phase exceeds the power budget (every generated task fits it alone,
  so a correct scheduler can always comply),
* construction is bitwise-deterministic from ``(seed, params)``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.schedule import PowerModel, TestKind, TestTask
from repro.schedule.strategies import build_strategy_schedule, strategy_names

#: Parameterizations exercised per strategy (base name -> spec strings).
PARAMETERIZED = {
    "sequential": ["sequential", "sequential:order=name"],
    "greedy": ["greedy", "greedy:max_concurrency=2"],
    "binpack": ["binpack", "binpack:fit=worst",
                "binpack:fit=worst,max_concurrency=3"],
    "anneal": ["anneal:steps=32,seed=5", "anneal:steps=24,cost=makespan",
               "anneal:steps=24,cost=peak_power,seed=11",
               "anneal:steps=24,init=binpack,peak_weight=0.25"],
    "portfolio": ["portfolio", "portfolio:members=greedy|binpack"],
}

ALL_SPECS = [spec for specs in PARAMETERIZED.values() for spec in specs]

_KINDS = [TestKind.LOGIC_BIST, TestKind.EXTERNAL_SCAN,
          TestKind.EXTERNAL_SCAN_COMPRESSED]


@st.composite
def task_sets(draw):
    """A task set plus estimates and a budget every single task fits."""
    count = draw(st.integers(min_value=1, max_value=9))
    tasks, estimates = {}, {}
    for index in range(count):
        name = f"t{index}"
        kind = draw(st.sampled_from(_KINDS))
        core = f"c{draw(st.integers(min_value=0, max_value=4))}"
        power = draw(st.floats(min_value=0.25, max_value=3.0,
                               allow_nan=False, allow_infinity=False))
        compression = (2.0 if kind is TestKind.EXTERNAL_SCAN_COMPRESSED
                       else 1.0)
        tasks[name] = TestTask(name=name, kind=kind, core=core,
                               pattern_count=10, power=round(power, 3),
                               compression_ratio=compression)
        estimates[name] = draw(st.integers(min_value=1, max_value=10_000))
    budget = round(max(task.power for task in tasks.values())
                   + draw(st.floats(min_value=0.0, max_value=4.0,
                                    allow_nan=False)), 3)
    return tasks, estimates, budget


@settings(max_examples=25, deadline=None)
@given(task_sets())
def test_registry_covers_all_builtin_strategies(data):
    # Guard: the parameterization table tracks the registry.
    assert sorted(PARAMETERIZED) == sorted(strategy_names())


@settings(max_examples=40, deadline=None)
@given(data=task_sets(), spec=st.sampled_from(ALL_SPECS))
def test_every_task_exactly_once_and_no_conflicts(data, spec):
    tasks, estimates, budget = data
    schedule = build_strategy_schedule(spec, tasks, estimates,
                                       power_model=PowerModel(budget=budget))
    # validate() rejects unknown tasks, duplicate tasks and conflicting
    # phases; full coverage is the remaining half of "exactly once".
    schedule.validate(tasks)
    assert sorted(schedule.task_names) == sorted(tasks)


@settings(max_examples=40, deadline=None)
@given(data=task_sets(), spec=st.sampled_from(ALL_SPECS))
def test_power_budget_never_violated(data, spec):
    tasks, estimates, budget = data
    model = PowerModel(budget=budget)
    schedule = build_strategy_schedule(spec, tasks, estimates,
                                       power_model=model)
    assert model.validate_schedule(schedule, tasks) == []


@settings(max_examples=25, deadline=None)
@given(data=task_sets(), spec=st.sampled_from(ALL_SPECS))
def test_bitwise_deterministic_from_seed_and_params(data, spec):
    tasks, estimates, budget = data
    model = PowerModel(budget=budget)
    first = build_strategy_schedule(spec, tasks, estimates, power_model=model)
    second = build_strategy_schedule(spec, tasks, estimates, power_model=model)
    assert first.phases == second.phases
    assert first.name == second.name


@settings(max_examples=25, deadline=None)
@given(data=task_sets(),
       seeds=st.tuples(st.integers(0, 100), st.integers(101, 200)))
def test_anneal_seed_actually_drives_the_walk(data, seeds):
    # Different seeds may produce different schedules, but each seed must
    # reproduce its own schedule exactly.
    tasks, estimates, budget = data
    model = PowerModel(budget=budget)
    for seed in seeds:
        spec = f"anneal:steps=32,seed={seed}"
        first = build_strategy_schedule(spec, tasks, estimates,
                                        power_model=model)
        second = build_strategy_schedule(spec, tasks, estimates,
                                         power_model=model)
        assert first.phases == second.phases
