"""Unit tests for estimation, power modeling, scheduling and validation."""

import pytest

from repro.memory.march import MATS_PLUS
from repro.schedule import (
    PlatformParameters,
    PowerModel,
    TestKind,
    TestSchedule,
    TestTask,
    TestTimeEstimator,
    greedy_concurrent_schedule,
    schedule_makespan_estimate,
    sequential_schedule,
    validate_schedule,
)
from repro.schedule.scheduler import compare_schedules
from repro.soc import build_core_descriptions, build_test_tasks
from repro.soc.testplan import MEMORY, MEMORY_WORDS


@pytest.fixture
def platform():
    return PlatformParameters()


@pytest.fixture
def estimator(core_descriptions, platform):
    return TestTimeEstimator(core_descriptions, platform,
                             memory_words={MEMORY: MEMORY_WORDS})


class TestPlatformParameters:
    def test_cycles_to_seconds(self, platform):
        assert platform.cycles_to_seconds(100_000_000) == pytest.approx(1.0)


class TestTaskEstimates:
    def test_logic_bist_estimate(self, estimator, paper_tasks):
        cycles = estimator.estimate_task_cycles(paper_tasks["t1_processor_bist"])
        assert cycles == pytest.approx(100_000 * 1451, rel=0.01)

    def test_external_scan_is_ate_limited(self, estimator, paper_tasks):
        cycles = estimator.estimate_task_cycles(paper_tasks["t2_processor_external"])
        assert cycles == pytest.approx(20_000 * 2900, rel=0.01)

    def test_compressed_scan_is_tam_limited(self, estimator, paper_tasks):
        cycles = estimator.estimate_task_cycles(paper_tasks["t3_processor_compressed"])
        per_pattern = cycles / 20_000
        assert 1400 < per_pattern < 1600

    def test_memory_controller_vs_processor(self, estimator, paper_tasks):
        controller = estimator.estimate_task_cycles(paper_tasks["t6_memory_bist"])
        processor = estimator.estimate_task_cycles(
            paper_tasks["t7_memory_march_processor"])
        assert processor > 4 * controller

    def test_functional_task_uses_attribute(self, estimator):
        task = TestTask(name="f", kind=TestKind.FUNCTIONAL, core="processor",
                        attributes={"functional_cycles": 12345})
        assert estimator.estimate_task_cycles(task) >= 12345

    def test_unknown_core_rejected(self, estimator):
        task = TestTask(name="x", kind=TestKind.LOGIC_BIST, core="nope",
                        pattern_count=10)
        with pytest.raises(KeyError):
            estimator.estimate_task_cycles(task)

    def test_unknown_memory_rejected(self, core_descriptions, platform):
        estimator = TestTimeEstimator(core_descriptions, platform)
        task = TestTask(name="m", kind=TestKind.MEMORY_BIST_CONTROLLER,
                        core=MEMORY, march=MATS_PLUS)
        with pytest.raises(KeyError):
            estimator.estimate_task_cycles(task)

    def test_estimate_all(self, estimator, paper_tasks):
        estimates = estimator.estimate_all(paper_tasks)
        assert set(estimates) == set(paper_tasks)
        assert all(value > 0 for value in estimates.values())


class TestScheduleEstimates:
    def test_schedule_ordering_matches_paper(self, estimator, paper_tasks,
                                             paper_schedules):
        estimates = {
            name: estimator.estimate_schedule_cycles(schedule, paper_tasks)
            for name, schedule in paper_schedules.items()
        }
        assert estimates["schedule_4"] < estimates["schedule_2"] \
            < estimates["schedule_3"] < estimates["schedule_1"]

    def test_estimate_in_seconds(self, estimator, paper_tasks, paper_schedules):
        seconds = estimator.estimate_schedule_seconds(
            paper_schedules["schedule_4"], paper_tasks)
        assert 1.0 < seconds < 3.0


class TestPowerModel:
    def test_phase_power_sums_active_tasks(self, paper_tasks):
        model = PowerModel(budget=10.0, static_power=0.5)
        power = model.phase_power(["t1_processor_bist", "t5_dct_external"],
                                  paper_tasks)
        assert power == pytest.approx(0.5 + 3.0 + 1.5)

    def test_idle_power_of_inactive_cores(self, paper_tasks):
        model = PowerModel(budget=10.0, idle_power={"memory": 0.2, "dct": 0.1})
        power = model.phase_power(["t5_dct_external"], paper_tasks)
        assert power == pytest.approx(1.5 + 0.2)

    def test_budget_check_and_violations(self, paper_tasks, paper_schedules):
        tight = PowerModel(budget=3.5)
        violations = tight.validate_schedule(paper_schedules["schedule_4"],
                                             paper_tasks)
        assert violations  # concurrent phase draws more than 3.5
        generous = PowerModel(budget=100.0)
        assert generous.validate_schedule(paper_schedules["schedule_4"],
                                          paper_tasks) == []

    def test_schedule_peak_power(self, paper_tasks, paper_schedules):
        model = PowerModel()
        sequential_peak = model.schedule_peak_power(paper_schedules["schedule_1"],
                                                    paper_tasks)
        concurrent_peak = model.schedule_peak_power(paper_schedules["schedule_4"],
                                                    paper_tasks)
        assert concurrent_peak > sequential_peak


class TestSchedulers:
    def test_sequential_schedule_builder(self, paper_tasks):
        schedule = sequential_schedule("seq", paper_tasks)
        assert schedule.is_sequential
        assert len(schedule.task_names) == len(paper_tasks)

    def test_sequential_schedule_unknown_task(self, paper_tasks):
        with pytest.raises(KeyError):
            sequential_schedule("seq", paper_tasks, order=["nope"])

    def test_greedy_respects_conflicts_and_budget(self, estimator, paper_tasks):
        estimates = estimator.estimate_all(paper_tasks)
        power_model = PowerModel(budget=6.0)
        schedule = greedy_concurrent_schedule("greedy", paper_tasks, estimates,
                                              power_model=power_model)
        schedule.validate(dict(paper_tasks))
        for phase in schedule.phases:
            assert power_model.phase_fits_budget(phase, paper_tasks)
        assert set(schedule.task_names) == set(paper_tasks)

    def test_greedy_beats_sequential_estimate(self, estimator, paper_tasks):
        estimates = estimator.estimate_all(paper_tasks)
        greedy = greedy_concurrent_schedule("greedy", paper_tasks, estimates,
                                            power_model=PowerModel(budget=8.0))
        sequential = sequential_schedule("seq", paper_tasks)
        assert schedule_makespan_estimate(greedy, estimates) < \
            schedule_makespan_estimate(sequential, estimates)

    def test_greedy_max_concurrency(self, estimator, paper_tasks):
        estimates = estimator.estimate_all(paper_tasks)
        schedule = greedy_concurrent_schedule("greedy", paper_tasks, estimates,
                                              max_concurrency=1)
        assert schedule.is_sequential

    def test_greedy_requires_estimates_for_all_tasks(self, paper_tasks):
        with pytest.raises(KeyError):
            greedy_concurrent_schedule("greedy", paper_tasks, {})

    def test_compare_schedules(self, estimator, paper_tasks, paper_schedules):
        estimates = estimator.estimate_all(paper_tasks)
        comparison = compare_schedules(list(paper_schedules.values()), estimates)
        assert set(comparison) == set(paper_schedules)


class TestValidation:
    def test_accurate_estimate_passes(self, estimator, paper_tasks, paper_schedules):
        schedule = paper_schedules["schedule_1"]
        estimated = estimator.estimate_schedule_cycles(schedule, paper_tasks)
        report = validate_schedule(schedule, paper_tasks, estimator,
                                   simulated_cycles=round(estimated * 1.02))
        assert report.estimate_is_accurate
        assert report.passed
        assert abs(report.deviation) < 0.05

    def test_inaccurate_estimate_fails(self, estimator, paper_tasks, paper_schedules):
        schedule = paper_schedules["schedule_1"]
        estimated = estimator.estimate_schedule_cycles(schedule, paper_tasks)
        report = validate_schedule(schedule, paper_tasks, estimator,
                                   simulated_cycles=round(estimated * 2.0))
        assert not report.estimate_is_accurate
        assert not report.passed

    def test_power_violation_reported(self, estimator, paper_tasks, paper_schedules):
        schedule = paper_schedules["schedule_4"]
        estimated = estimator.estimate_schedule_cycles(schedule, paper_tasks)
        report = validate_schedule(schedule, paper_tasks, estimator,
                                   simulated_cycles=estimated,
                                   power_model=PowerModel(budget=3.0),
                                   simulated_peak_power=5.0)
        assert report.power_violations
        assert not report.passed

    def test_summary_mentions_key_figures(self, estimator, paper_tasks,
                                          paper_schedules):
        schedule = paper_schedules["schedule_2"]
        estimated = estimator.estimate_schedule_cycles(schedule, paper_tasks)
        report = validate_schedule(schedule, paper_tasks, estimator,
                                   simulated_cycles=estimated,
                                   simulated_peak_tam_utilization=0.67,
                                   simulated_avg_tam_utilization=0.58)
        text = report.summary()
        assert "schedule_2" in text
        assert "67%" in text
        assert "58%" in text
