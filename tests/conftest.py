"""Shared pytest fixtures."""

import numpy as np
import pytest

from repro.kernel import NS, Clock, SimTime, Simulator, TransactionTracer
from repro.rtl import SyntheticCoreSpec, generate_netlist, insert_scan
from repro.soc import build_test_schedules, build_test_tasks
from repro.soc.testplan import build_core_descriptions


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator("test")


@pytest.fixture
def clock(sim):
    """A 100 MHz clock on the fresh simulator."""
    return Clock(sim, "clk", SimTime(10, NS))


@pytest.fixture
def tracer():
    return TransactionTracer()


@pytest.fixture(scope="session")
def small_netlist():
    """A small synthetic scan core shared by RTL tests (read-only)."""
    spec = SyntheticCoreSpec(name="small_core", flip_flops=48, gates=240, seed=9)
    return generate_netlist(spec)


@pytest.fixture(scope="session")
def small_scan_config(small_netlist):
    return insert_scan(small_netlist, 4)


@pytest.fixture(scope="session")
def paper_tasks():
    return build_test_tasks()


@pytest.fixture(scope="session")
def paper_schedules():
    return build_test_schedules()


@pytest.fixture(scope="session")
def core_descriptions():
    return build_core_descriptions()


@pytest.fixture
def test_image():
    """A deterministic 16x16 RGB test image."""
    rng = np.random.default_rng(3)
    return rng.integers(0, 256, size=(16, 16, 3), dtype=np.uint8)
