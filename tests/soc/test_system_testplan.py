"""Unit tests for the assembled JPEG SoC and the paper's test plan."""

import numpy as np
import pytest

from repro.dft.tam import TamSlaveInterface
from repro.schedule import TestKind
from repro.soc import (
    JpegSocTlm,
    SocConfiguration,
    build_core_descriptions,
    build_platform_parameters,
    build_test_schedules,
    build_test_tasks,
)
from repro.soc.jpeg import JpegEncoder
from repro.soc.testplan import (
    ADDRESS_MAP,
    COLOR_CONVERSION,
    DCT,
    MEMORY,
    MEMORY_WORDS,
    PROCESSOR,
)


class TestTestplanDefinitions:
    def test_seven_sequences_defined(self, paper_tasks):
        assert len(paper_tasks) == 7
        sequences = {task.attributes["paper_sequence"]
                     for task in paper_tasks.values()}
        assert sequences == set(range(1, 8))

    def test_paper_pattern_counts(self, paper_tasks):
        assert paper_tasks["t1_processor_bist"].pattern_count == 100_000
        assert paper_tasks["t2_processor_external"].pattern_count == 20_000
        assert paper_tasks["t3_processor_compressed"].pattern_count == 20_000
        assert paper_tasks["t3_processor_compressed"].compression_ratio == 50.0
        assert paper_tasks["t4_colorconv_bist"].pattern_count == 10_000
        assert paper_tasks["t5_dct_external"].pattern_count == 10_000

    def test_memory_is_one_megabyte(self):
        assert MEMORY_WORDS == 1 << 20

    def test_four_schedules_matching_paper_structure(self, paper_schedules,
                                                     paper_tasks):
        assert len(paper_schedules) == 4
        assert paper_schedules["schedule_1"].is_sequential
        assert paper_schedules["schedule_2"].is_sequential
        assert paper_schedules["schedule_3"].phases[0] == \
            ["t1_processor_bist", "t5_dct_external"]
        assert paper_schedules["schedule_4"].phases[1] == \
            ["t3_processor_compressed", "t4_colorconv_bist", "t6_memory_bist"]
        for schedule in paper_schedules.values():
            schedule.validate(paper_tasks)

    def test_core_descriptions_match_paper(self, core_descriptions):
        assert core_descriptions[PROCESSOR].chain_count == 32
        assert core_descriptions[PROCESSOR].has_logic_bist
        assert core_descriptions[DCT].chain_count == 8
        assert not core_descriptions[DCT].has_logic_bist
        assert core_descriptions[COLOR_CONVERSION].has_logic_bist

    def test_descriptions_with_validation_netlists(self):
        descriptions = build_core_descriptions(with_validation_netlists=True)
        assert descriptions[PROCESSOR].validation_netlist is not None
        assert descriptions[DCT].validation_netlist is not None

    def test_platform_parameters(self):
        platform = build_platform_parameters()
        assert platform.tam_width_bits == 32
        assert platform.ate_width_bits == 16
        assert platform.clock_mhz == 100.0

    def test_address_map_is_disjoint(self):
        addresses = sorted(ADDRESS_MAP.values())
        assert len(set(addresses)) == len(addresses)


class TestJpegSocAssembly:
    @pytest.fixture(scope="class")
    def soc(self):
        return JpegSocTlm(SocConfiguration(memory_words=4096))

    def test_wrappers_for_all_cores(self, soc):
        assert set(soc.wrappers) == {PROCESSOR, COLOR_CONVERSION, DCT, MEMORY}
        for wrapper in soc.wrappers.values():
            assert TamSlaveInterface.is_implemented_by(wrapper)

    def test_bus_slave_decode(self, soc):
        slave, offset = soc.bus.decode(ADDRESS_MAP[DCT] + 0x20)
        assert slave is soc.wrappers[DCT]
        assert offset == 0x20

    def test_config_ring_contains_all_infrastructure(self, soc):
        names = {register.name for register in soc.config_bus.registers}
        assert any("wrapper.wir" in name for name in names)
        assert "decompressor.config" in names
        assert "compactor.config" in names
        assert "test_controller.config" in names
        assert "ebi.config" in names

    def test_architecture_handles(self, soc):
        architecture = soc.architecture
        assert architecture.wrapper_for(PROCESSOR) is soc.wrappers[PROCESSOR]
        assert architecture.address_of(MEMORY) == ADDRESS_MAP[MEMORY]
        with pytest.raises(KeyError):
            architecture.wrapper_for("unknown")

    def test_decompressor_targets_processor_wrapper(self, soc):
        assert soc.decompressor.target_wrapper is soc.wrappers[PROCESSOR]
        assert soc.decompressor.compression_ratio == 50.0


class TestFunctionalMode:
    def test_encode_matches_software_reference(self, test_image):
        soc = JpegSocTlm(SocConfiguration(memory_words=65_536))
        encoded, cycles = soc.run_functional_encode(test_image, quality=75)
        reference = JpegEncoder(quality=75).encode(test_image)
        assert encoded.bitstream == reference.bitstream
        assert cycles > 0
        assert soc.dct.blocks_processed == 12  # 4 blocks x 3 channels
        assert soc.bus.functional_reads > 0
        assert soc.bus.functional_writes > 0

    def test_encode_at_different_quality(self, test_image):
        soc = JpegSocTlm(SocConfiguration(memory_words=65_536))
        encoded, _ = soc.run_functional_encode(test_image, quality=40)
        reference = JpegEncoder(quality=40).encode(test_image)
        assert encoded.bitstream == reference.bitstream


class TestTestMode:
    def test_small_schedule_metrics_consistency(self, test_image):
        from repro.schedule.model import TestSchedule, TestTask

        soc = JpegSocTlm(SocConfiguration(memory_words=8192))
        tasks = {
            "bist": TestTask(name="bist", kind=TestKind.LOGIC_BIST,
                             core=COLOR_CONVERSION, pattern_count=500, power=1.0),
            "ext": TestTask(name="ext", kind=TestKind.EXTERNAL_SCAN, core=DCT,
                            pattern_count=32, power=1.5),
        }
        schedule = TestSchedule(name="mini", phases=[["bist", "ext"]])
        metrics = soc.run_test_schedule(schedule, tasks)
        assert metrics.test_length_cycles > 0
        assert 0.0 <= metrics.avg_tam_utilization <= metrics.peak_tam_utilization <= 1.0
        assert metrics.peak_power >= 1.5
        assert metrics.simulated_activations > 0
        assert set(metrics.execution.task_results) == {"bist", "ext"}
        row = metrics.as_row()
        assert row["scenario"] == "mini"
        assert row["test_length_mcycles"] == pytest.approx(
            metrics.test_length_cycles / 1e6)

    def test_functional_then_test_mode_on_same_model(self, test_image):
        """The same model instance supports mission mode followed by test mode."""
        from repro.schedule.model import TestSchedule, TestTask

        soc = JpegSocTlm(SocConfiguration(memory_words=65_536))
        encoded, _ = soc.run_functional_encode(test_image)
        assert encoded.compressed_bits > 0
        tasks = {"bist": TestTask(name="bist", kind=TestKind.LOGIC_BIST,
                                  core=COLOR_CONVERSION, pattern_count=100,
                                  power=1.0)}
        schedule = TestSchedule.sequential("after_mission", ["bist"])
        metrics = soc.run_test_schedule(schedule, tasks)
        assert metrics.test_length_cycles > 0
        assert soc.wrappers[COLOR_CONVERSION].bist_patterns_applied == 100
