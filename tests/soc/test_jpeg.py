"""Unit tests for the functional JPEG pipeline."""

import numpy as np
import pytest

from repro.soc.jpeg import (
    CHROMINANCE_TABLE,
    HuffmanCodec,
    JpegEncoder,
    LUMINANCE_TABLE,
    blockwise,
    dct_2d,
    dequantize_block,
    from_zigzag,
    idct_2d,
    psnr,
    quality_scaled_table,
    quantize_block,
    rgb_to_ycbcr,
    run_length_decode,
    run_length_encode,
    to_zigzag,
    ycbcr_to_rgb,
    zigzag_order,
)


class TestColorConversion:
    def test_known_values(self):
        white = np.full((1, 1, 3), 255.0)
        ycbcr = rgb_to_ycbcr(white)
        assert ycbcr[0, 0, 0] == pytest.approx(255.0, abs=0.5)
        assert ycbcr[0, 0, 1] == pytest.approx(128.0, abs=0.5)
        assert ycbcr[0, 0, 2] == pytest.approx(128.0, abs=0.5)

    def test_pure_red(self):
        red = np.zeros((1, 1, 3))
        red[0, 0, 0] = 255.0
        ycbcr = rgb_to_ycbcr(red)
        assert ycbcr[0, 0, 0] == pytest.approx(0.299 * 255, abs=0.5)
        assert ycbcr[0, 0, 2] > 200  # red pushes Cr high

    def test_roundtrip(self, test_image):
        ycbcr = rgb_to_ycbcr(test_image)
        rgb = ycbcr_to_rgb(ycbcr)
        assert np.max(np.abs(rgb - test_image)) < 2.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            ycbcr_to_rgb(np.zeros((4, 4, 2)))


class TestDct:
    def test_constant_block_concentrates_in_dc(self):
        block = np.full((8, 8), 10.0)
        coefficients = dct_2d(block)
        assert coefficients[0, 0] == pytest.approx(80.0)
        assert np.max(np.abs(coefficients[1:, :])) < 1e-9
        assert np.max(np.abs(coefficients[:, 1:])) < 1e-9

    def test_dct_idct_roundtrip(self):
        rng = np.random.default_rng(2)
        block = rng.uniform(-128, 127, size=(8, 8))
        assert np.allclose(idct_2d(dct_2d(block)), block, atol=1e-9)

    def test_orthonormality_preserves_energy(self):
        rng = np.random.default_rng(5)
        block = rng.uniform(-128, 127, size=(8, 8))
        assert np.sum(block ** 2) == pytest.approx(np.sum(dct_2d(block) ** 2))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            dct_2d(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            idct_2d(np.zeros((8, 7)))

    def test_blockwise_covers_plane_with_padding(self):
        plane = np.arange(10 * 12, dtype=float).reshape(10, 12)
        blocks = list(blockwise(plane))
        assert len(blocks) == 2 * 2
        for row, col, block in blocks:
            assert block.shape == (8, 8)
            assert row % 8 == 0 and col % 8 == 0


class TestQuantization:
    def test_quality_scaling_monotone(self):
        low = quality_scaled_table(LUMINANCE_TABLE, 10)
        mid = quality_scaled_table(LUMINANCE_TABLE, 50)
        high = quality_scaled_table(LUMINANCE_TABLE, 95)
        assert np.all(low >= mid)
        assert np.all(mid >= high)
        assert np.all(high >= 1)

    def test_quality_50_is_base_table(self):
        assert np.allclose(quality_scaled_table(LUMINANCE_TABLE, 50),
                           LUMINANCE_TABLE)

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            quality_scaled_table(LUMINANCE_TABLE, 0)
        with pytest.raises(ValueError):
            quality_scaled_table(CHROMINANCE_TABLE, 101)

    def test_quantize_dequantize(self):
        rng = np.random.default_rng(3)
        coefficients = rng.uniform(-500, 500, size=(8, 8))
        quantized = quantize_block(coefficients, LUMINANCE_TABLE)
        assert quantized.dtype == np.int32
        restored = dequantize_block(quantized, LUMINANCE_TABLE)
        assert np.max(np.abs(restored - coefficients)) <= np.max(LUMINANCE_TABLE) / 2


class TestZigzagAndRle:
    def test_zigzag_order_properties(self):
        order = zigzag_order()
        assert len(order) == 64
        assert len(set(order)) == 64
        assert order[0] == (0, 0)
        assert order[1] == (0, 1)
        assert order[2] == (1, 0)
        assert order[-1] == (7, 7)

    def test_zigzag_roundtrip(self):
        rng = np.random.default_rng(4)
        block = rng.integers(-50, 50, size=(8, 8))
        assert np.array_equal(from_zigzag(to_zigzag(block)), block)

    def test_run_length_roundtrip(self):
        values = [12] + [0] * 20 + [3] + [0] * 42
        pairs = run_length_encode(values)
        assert pairs[0] == (0, 12)
        assert pairs[-1] == (0, 0)
        assert run_length_decode(pairs) == values

    def test_run_length_long_zero_runs_use_zrl(self):
        values = [5] + [0] * 40 + [1] + [0] * 22
        pairs = run_length_encode(values)
        assert (15, 0) in pairs
        assert run_length_decode(pairs) == values

    def test_all_zero_ac(self):
        values = [7] + [0] * 63
        pairs = run_length_encode(values)
        assert pairs == [(0, 7), (0, 0)]
        assert run_length_decode(pairs) == values


class TestHuffman:
    def test_roundtrip(self):
        symbols = ["a", "b", "a", "c", "a", "b", "a"]
        codec = HuffmanCodec.from_symbols(symbols)
        assert codec.decode(codec.encode(symbols)) == symbols

    def test_frequent_symbols_get_shorter_codes(self):
        frequencies = {"common": 100, "rare": 1, "other": 1}
        codec = HuffmanCodec.from_frequencies(frequencies)
        assert len(codec.code_table["common"]) <= len(codec.code_table["rare"])

    def test_prefix_free(self):
        codec = HuffmanCodec.from_frequencies({s: i + 1 for i, s in
                                               enumerate("abcdefgh")})
        codes = list(codec.code_table.values())
        for i, first in enumerate(codes):
            for j, second in enumerate(codes):
                if i != j:
                    assert not second.startswith(first)

    def test_tuple_symbols_supported(self):
        symbols = [(0, 5), (1, -2), (0, 5), (0, 0)]
        codec = HuffmanCodec.from_symbols(symbols)
        assert codec.decode(codec.encode(symbols)) == symbols

    def test_single_symbol_alphabet(self):
        codec = HuffmanCodec.from_symbols(["only", "only"])
        assert codec.encode(["only", "only"]) == "00"
        assert codec.decode("00") == ["only", "only"]

    def test_unknown_symbol_rejected(self):
        codec = HuffmanCodec.from_symbols(["a", "b"])
        with pytest.raises(KeyError):
            codec.encode(["z"])

    def test_invalid_bitstream_rejected(self):
        codec = HuffmanCodec.from_symbols(["a", "b", "c"])
        with pytest.raises(ValueError):
            codec.decode("2")
        with pytest.raises(ValueError):
            codec.decode(codec.encode(["a"]) + "1" * 51)

    def test_average_code_length_bounds_entropy(self):
        frequencies = {"a": 50, "b": 25, "c": 15, "d": 10}
        codec = HuffmanCodec.from_frequencies(frequencies)
        average = codec.average_code_length(frequencies)
        assert 1.0 <= average <= 2.1


class TestJpegEncoder:
    def test_encode_produces_compression(self, test_image):
        encoded = JpegEncoder(quality=75).encode(test_image)
        assert encoded.compressed_bits > 0
        assert encoded.compression_ratio > 1.0
        assert encoded.width == encoded.height == 16

    def test_decode_roundtrip_quality(self, test_image):
        encoder = JpegEncoder(quality=90)
        decoded = encoder.decode(encoder.encode(test_image))
        assert decoded.shape == test_image.shape
        assert psnr(test_image.astype(float), decoded) > 20.0

    def test_higher_quality_larger_output_better_psnr(self, test_image):
        low = JpegEncoder(quality=20)
        high = JpegEncoder(quality=90)
        low_encoded = low.encode(test_image)
        high_encoded = high.encode(test_image)
        assert high_encoded.compressed_bits > low_encoded.compressed_bits
        assert high.roundtrip_error(test_image) > low.roundtrip_error(test_image)

    def test_smooth_image_compresses_better_than_noise(self):
        smooth = np.full((32, 32, 3), 128, dtype=np.uint8)
        noisy = np.random.default_rng(0).integers(0, 256, size=(32, 32, 3),
                                                  dtype=np.uint8)
        encoder = JpegEncoder(quality=75)
        assert encoder.encode(smooth).compressed_bits < \
            encoder.encode(noisy).compressed_bits

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            JpegEncoder(quality=0)

    def test_invalid_image_shape(self):
        with pytest.raises(ValueError):
            JpegEncoder().encode(np.zeros((8, 8)))

    def test_psnr_identical_images_is_infinite(self, test_image):
        assert psnr(test_image, test_image) == float("inf")

    def test_psnr_shape_mismatch(self, test_image):
        with pytest.raises(ValueError):
            psnr(test_image, test_image[:8])
