"""Unit tests for the SoC cores and the system bus."""

import numpy as np
import pytest

from repro.dft.payload import TamCommand, TamPayload, TamResponse
from repro.kernel import NS, SimTime
from repro.memory.march import MATS
from repro.soc.bus import SystemBus
from repro.soc.cores import (
    ColorConversionCore,
    DctCore,
    MemoryCore,
    ProcessorCore,
)
from repro.soc.jpeg import rgb_to_ycbcr


@pytest.fixture
def bus(sim, clock, tracer):
    return SystemBus(sim, "bus", width_bits=32, clock=clock, tracer=tracer)


class TestSystemBus:
    def test_is_a_tam_channel(self, bus):
        from repro.dft.tam import TamInterface

        assert TamInterface.is_implemented_by(bus)

    def test_functional_write_and_read(self, sim, bus):
        memory = MemoryCore(sim, "mem", words=256, word_bits=8)

        class Passthrough:
            def tam_access(self, payload):
                return memory.functional_access(payload)

        bus.bind_slave(Passthrough(), 0x0, 0x1000)
        results = {}

        def master():
            yield from bus.functional_write("cpu", 0x10, [1, 2, 3, 4],
                                            data_bits=32)
            payload_words = {"words": 4}
            data = yield from bus.functional_read("cpu", 0x10, bits=32)
            results["data"] = data

        sim.spawn(master())
        sim.run()
        assert memory.array.dump(0x10, 4) == [1, 2, 3, 4]
        assert bus.functional_writes == 1
        assert bus.functional_reads == 1

    def test_functional_access_to_unmapped_address_raises(self, sim, bus):
        def master():
            yield from bus.functional_write("cpu", 0x5000, 1)

        sim.spawn(master())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_estimate_bits(self, bus):
        assert bus._estimate_bits(None) == 32
        assert bus._estimate_bits(np.zeros(4, dtype=np.uint8)) == 32
        assert bus._estimate_bits(b"abcd") == 32
        assert bus._estimate_bits(7) == 32
        assert bus._estimate_bits([1, 2, 3]) == 96
        assert bus._estimate_bits({"command": "x"}) == 64

    def test_word_transfer_cycles(self, bus):
        assert bus.word_transfer_cycles(10) == 11


class TestMemoryCore:
    def test_block_write_and_read(self, sim):
        memory = MemoryCore(sim, "mem", words=128, word_bits=8)
        write = TamPayload(TamCommand.WRITE, data=np.array([9, 8, 7]),
                           data_bits=24, attributes={"offset": 5})
        memory.functional_access(write)
        read = TamPayload(TamCommand.READ, response_bits=24,
                          attributes={"offset": 5, "words": 3})
        memory.functional_access(read)
        assert read.response_data == [9, 8, 7]

    def test_single_word_write(self, sim):
        memory = MemoryCore(sim, "mem", words=16)
        payload = TamPayload(TamCommand.WRITE, data=0x3C, data_bits=8,
                             attributes={"offset": 2})
        memory.functional_access(payload)
        assert memory.array.raw_read(2) == 0x3C

    def test_write_without_data_is_noop(self, sim):
        memory = MemoryCore(sim, "mem", words=16)
        payload = TamPayload(TamCommand.WRITE, data=None, data_bits=8)
        assert memory.functional_access(payload).status is TamResponse.OK


class TestColorConversionCore:
    def test_conversion_matches_reference(self, sim, test_image):
        core = ColorConversionCore(sim, "cc")
        write = TamPayload(TamCommand.WRITE, data=test_image.astype(float),
                           data_bits=test_image.size * 8)
        core.functional_access(write)
        read = TamPayload(TamCommand.READ, response_bits=32)
        core.functional_access(read)
        assert np.allclose(read.response_data, rgb_to_ycbcr(test_image))
        assert core.pixels_processed == 256
        assert write.attributes["processing_cycles"] == 256

    def test_rejects_malformed_pixels(self, sim):
        core = ColorConversionCore(sim, "cc")
        payload = TamPayload(TamCommand.WRITE, data=np.zeros((4, 4)), data_bits=8)
        assert core.functional_access(payload).status is TamResponse.MODE_ERROR


class TestDctCore:
    def test_block_processing_matches_reference(self, sim):
        from repro.soc.jpeg import JpegEncoder, dct_2d, quantize_block

        core = DctCore(sim, "dct", quality=75)
        rng = np.random.default_rng(8)
        block = rng.uniform(-128, 127, size=(8, 8))
        write = TamPayload(TamCommand.WRITE, data={"block": block, "channel": 0},
                           data_bits=512)
        core.functional_access(write)
        read = TamPayload(TamCommand.READ, response_bits=1024)
        core.functional_access(read)
        reference = quantize_block(dct_2d(block),
                                   JpegEncoder(75).luminance_table)
        assert np.array_equal(read.response_data, reference)
        assert core.blocks_processed == 1

    def test_rejects_wrong_block_shape(self, sim):
        core = DctCore(sim, "dct")
        payload = TamPayload(TamCommand.WRITE,
                             data={"block": np.zeros((4, 4)), "channel": 0},
                             data_bits=128)
        assert core.functional_access(payload).status is TamResponse.MODE_ERROR

    def test_set_quality(self, sim):
        core = DctCore(sim, "dct", quality=75)
        core.set_quality(30)
        assert core.quality == 30


class TestProcessorCore:
    def test_mailbox_command_interface(self, sim, bus):
        processor = ProcessorCore(sim, "cpu", bus=bus)
        command = TamPayload(TamCommand.WRITE, data={"command": "run"},
                             data_bits=64)
        processor.functional_access(command)
        readback = TamPayload(TamCommand.READ, response_bits=64)
        processor.functional_access(readback)
        assert readback.response_data == {"command": "run"}

    def test_run_memory_march_timing_and_bus_usage(self, sim, bus, tracer, clock):
        processor = ProcessorCore(sim, "cpu", bus=bus,
                                  cycles_per_memory_op=6.0,
                                  bus_busy_cycles_per_memory_op=2.0)
        memory = MemoryCore(sim, "mem", words=4096, word_bits=8)
        holder = {}

        def flow():
            status = yield from processor.run_memory_march(
                memory, MATS, pattern_backgrounds=1, chunks=16,
                validation_stride=13,
            )
            holder["status"] = status

        sim.spawn(flow())
        sim.run()
        status = holder["status"]
        operations = 4 * 4096 + 2 * 4096
        assert status["operations"] == operations
        assert status["failures"] == 0
        assert status["cycles"] == pytest.approx(operations * 6.0, rel=0.02)
        # About a third of the march occupies the bus.
        busy_cycles = clock.cycles_between(SimTime(0), tracer.total_busy_time("bus"))
        assert busy_cycles == pytest.approx(operations * 2.0, rel=0.05)

    def test_run_memory_march_detects_fault(self, sim, bus):
        from repro.memory import StuckAtCellFault

        processor = ProcessorCore(sim, "cpu", bus=bus)
        memory = MemoryCore(sim, "mem", words=512, word_bits=8)
        memory.array.inject_fault(StuckAtCellFault(address=3, bit=0, value=1))
        holder = {}

        def flow():
            status = yield from processor.run_memory_march(
                memory, MATS, validation_stride=1,
            )
            holder["status"] = status

        sim.spawn(flow())
        sim.run()
        assert holder["status"]["failures"] > 0
