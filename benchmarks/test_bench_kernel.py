"""Micro-benchmarks of the simulation kernel and substrates.

Not part of the paper's evaluation, but useful to track the cost of the
building blocks everything else stands on: event throughput of the kernel,
TAM transaction throughput, gate-level fault simulation and the functional
JPEG pipeline.

Run with::

    pytest benchmarks/test_bench_kernel.py --benchmark-only
"""

import numpy as np
import pytest

from repro.kernel import NS, Clock, SimTime, Simulator, Timeout
from repro.rtl import (
    FaultSimulator,
    LFSR,
    SyntheticCoreSpec,
    enumerate_faults,
    generate_netlist,
    insert_scan,
)
from repro.rtl.simulation import ScanPattern
from repro.soc.jpeg import JpegEncoder
from repro.dft import TamChannel, TamPayload

#: Benchmarks stay out of the fast CI path (run them with `-m slow`).
pytestmark = pytest.mark.slow


def test_kernel_event_throughput(benchmark):
    """Events dispatched per second by the kernel (ping-pong processes)."""
    EVENTS = 20_000

    def run():
        sim = Simulator()

        def ticker():
            for _ in range(EVENTS):
                yield Timeout(SimTime(10, NS))

        sim.spawn(ticker(), name="ticker")
        sim.run()
        return sim

    sim = benchmark(run)
    assert sim.dispatched_activations >= EVENTS


def test_tam_transaction_throughput(benchmark):
    """Timed, arbitrated TAM transactions per second."""
    TRANSACTIONS = 5_000

    def run():
        sim = Simulator()
        clock = Clock(sim, "clk", SimTime(10, NS))
        tam = TamChannel(sim, "tam", width_bits=32, clock=clock)

        class Sink:
            def tam_access(self, payload):
                return payload.complete()

        tam.bind_slave(Sink(), 0, 0x1000)

        def master():
            for index in range(TRANSACTIONS):
                payload = TamPayload.write(0, data_bits=128)
                payload.initiator = "bench"
                yield from tam.write(payload)

        sim.spawn(master(), name="master")
        sim.run()
        return tam

    tam = benchmark(run)
    assert tam.transaction_count == TRANSACTIONS


def test_fault_simulation_throughput(benchmark):
    """Stuck-at fault simulation of LFSR patterns on a synthetic core."""
    spec = SyntheticCoreSpec(name="bench_fault_core", flip_flops=64, gates=320,
                             seed=5)
    netlist = generate_netlist(spec)
    scan_config = insert_scan(netlist, 4)
    faults = enumerate_faults(netlist, sample=100, seed=5)
    lfsr = LFSR(32, seed=17)
    flip_flops = sorted(netlist.flip_flops)
    inputs = list(netlist.primary_inputs)
    patterns = []
    for _ in range(64):
        ff_values = {name: lfsr.step() for name in flip_flops}
        pi_values = {name: lfsr.step() for name in inputs}
        patterns.append(ScanPattern(ff_values, pi_values))

    def run():
        simulator = FaultSimulator(netlist, scan_config)
        return simulator.fault_coverage(patterns, faults)

    coverage = benchmark(run)
    assert 0.3 < coverage <= 1.0


def test_jpeg_pipeline_throughput(benchmark):
    """Functional JPEG encoding of a 64x64 image (software reference)."""
    rng = np.random.default_rng(11)
    image = rng.integers(0, 256, size=(64, 64, 3), dtype=np.uint8)
    encoder = JpegEncoder(quality=75)

    encoded = benchmark(encoder.encode, image)
    assert encoded.compressed_bits > 0
    assert encoded.compression_ratio > 1.0
