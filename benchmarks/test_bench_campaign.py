"""Benchmark harness for campaign throughput (scenarios per second).

The campaign engine exists so that test-infrastructure design-space
exploration scales beyond the single JPEG case study: many generated SoC
scenarios, fanned out to a worker pool.  These benches measure the serial
baseline and the pool throughput on the same scenario grid, and assert that
parallel execution keeps the results bitwise identical to the serial run.
On hosts with at least two CPUs the pool must reach >= 2x the serial
scenarios/second.

Run with::

    pytest benchmarks/test_bench_campaign.py --benchmark-only
"""

import os

import pytest

from repro.explore.campaign import Campaign, campaign_from_axes
from repro.explore.scenarios import ScenarioSpec

#: Benchmarks stay out of the fast CI path (run them with `-m slow`).
pytestmark = pytest.mark.slow

#: Worker processes of the parallel benchmark: enough headroom over the 2x
#: speedup bar (2 workers cap at exactly 2x in theory), bounded for CI hosts.
WORKERS = max(2, min(4, os.cpu_count() or 1))


def _campaign() -> Campaign:
    return campaign_from_axes(
        {"core_count": [1, 2, 3], "tam_width_bits": [16, 32],
         "compression_ratio": [10.0, 100.0]},
        base=ScenarioSpec(name="base", patterns_per_core=128,
                          memory_words=2048, seed=13,
                          schedules=("sequential", "greedy")),
    )


def test_campaign_serial_throughput(benchmark):
    """Scenario rows simulated per second, single process."""
    campaign = _campaign()

    run = benchmark.pedantic(campaign.run, kwargs={"workers": 1},
                             iterations=1, rounds=3)
    assert len(run.outcomes) == len(campaign)
    benchmark.extra_info["rows"] = len(run.outcomes)
    benchmark.extra_info["rows_per_second"] = round(run.rows_per_second, 2)


def test_campaign_pool_throughput(benchmark):
    """Scenario rows per second on a worker pool, checked against serial.

    The pool run must reproduce the serial rows bitwise; the >= 2x speedup
    bar is enforced only with CAMPAIGN_SPEEDUP_STRICT=1 on dedicated
    multi-core hardware (a single-core container cannot speed anything up,
    but must still be correct).
    """
    campaign = _campaign()
    serial = campaign.run(workers=1)

    run = benchmark.pedantic(campaign.run, kwargs={"workers": WORKERS},
                             iterations=1, rounds=3)
    assert run.deterministic_rows() == serial.deterministic_rows()
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["rows"] = len(run.outcomes)
    benchmark.extra_info["rows_per_second"] = round(run.rows_per_second, 2)
    benchmark.extra_info["serial_rows_per_second"] = round(
        serial.rows_per_second, 2)

    cpus = os.cpu_count() or 1
    speedup = run.rows_per_second / max(serial.rows_per_second, 1e-9)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # The hard speedup bar only applies on dedicated hardware: shared CI
    # runners and single-core containers measure co-tenant noise, not the
    # engine.  Opt in with CAMPAIGN_SPEEDUP_STRICT=1.
    if os.environ.get("CAMPAIGN_SPEEDUP_STRICT") == "1":
        assert cpus >= 4, (
            f"CAMPAIGN_SPEEDUP_STRICT needs >= 4 CPUs (host has {cpus})"
        )
        assert speedup >= 2.0, (
            f"campaign pool speedup {speedup:.2f}x below the 2x bar "
            f"with {WORKERS} workers on a {cpus}-CPU host"
        )
