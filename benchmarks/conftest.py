"""Shared fixtures for the benchmark harness."""

import pytest

from repro.soc import build_test_schedules, build_test_tasks


@pytest.fixture(scope="session")
def paper_tasks():
    """The seven test sequences of the paper (shared across benchmarks)."""
    return build_test_tasks()


@pytest.fixture(scope="session")
def paper_schedules():
    """The four test schedules of the paper (shared across benchmarks)."""
    return build_test_schedules()
