"""Ablation benchmarks: design choices the paper leaves to exploration.

These benches exercise the exploration studies DESIGN.md calls out:

* compression-ratio sweep of the deterministic processor test,
* TAM-width sweep for the best schedule,
* automatically generated schedules versus the paper's hand-written ones.

Run with::

    pytest benchmarks/test_bench_ablation.py --benchmark-only
"""

import pytest

from repro.explore.sweeps import (
    compression_ratio_sweep,
    schedule_exploration,
    tam_width_sweep,
)

#: Benchmarks stay out of the fast CI path (run them with `-m slow`).
pytestmark = pytest.mark.slow

COMPRESSION_RATIOS = (1, 10, 50, 1000)
TAM_WIDTHS = (8, 32, 64)


def test_compression_ratio_ablation(benchmark):
    """Test length must fall monotonically as the compression ratio rises
    until the core-internal shift time becomes the bottleneck."""
    points = benchmark.pedantic(
        compression_ratio_sweep, kwargs={"ratios": COMPRESSION_RATIOS},
        iterations=1, rounds=1,
    )
    lengths = [point.metrics.test_length_mcycles for point in points]
    for ratio, point in zip(COMPRESSION_RATIOS, points):
        benchmark.extra_info[f"length_mcycles_at_{ratio}x"] = round(
            point.metrics.test_length_mcycles, 1
        )
    assert all(earlier >= later - 1e-6
               for earlier, later in zip(lengths, lengths[1:]))
    # Uncompressed external test is ATE-limited and much longer than 50x.
    assert lengths[0] > 1.5 * lengths[2]


def test_tam_width_ablation(benchmark):
    """Wider TAMs shorten (or at least never lengthen) schedule 4."""
    points = benchmark.pedantic(
        tam_width_sweep, kwargs={"widths": TAM_WIDTHS}, iterations=1, rounds=1,
    )
    lengths = [point.metrics.test_length_mcycles for point in points]
    for width, point in zip(TAM_WIDTHS, points):
        benchmark.extra_info[f"length_mcycles_at_{width}bit"] = round(
            point.metrics.test_length_mcycles, 1
        )
    assert all(earlier >= later - 1e-6
               for earlier, later in zip(lengths, lengths[1:]))


def test_schedule_exploration_ablation(benchmark):
    """Generated schedules are valid and the greedy one beats the sequential
    baseline; the coarse estimates stay close to the simulated lengths."""
    comparisons = benchmark.pedantic(
        schedule_exploration, kwargs={"power_budget": 6.0},
        iterations=1, rounds=1,
    )
    by_name = {comparison.schedule.name: comparison for comparison in comparisons}
    benchmark.extra_info["schedules_simulated"] = len(comparisons)
    for name, comparison in by_name.items():
        benchmark.extra_info[f"simulated_mcycles_{name}"] = round(
            comparison.metrics.test_length_mcycles, 1
        )

    greedy = by_name["generated_greedy"]
    sequential = by_name["generated_sequential"]
    assert greedy.metrics.test_length_cycles < sequential.metrics.test_length_cycles
    for comparison in comparisons:
        deviation = abs(comparison.estimated_cycles
                        - comparison.metrics.test_length_cycles)
        assert deviation <= 0.2 * comparison.metrics.test_length_cycles
