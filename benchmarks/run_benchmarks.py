#!/usr/bin/env python
"""Hot-path benchmark runner emitting machine-readable ``BENCH_*.json``.

Measures the performance-critical layers of the stack:

* ``kernel``   -- scheduler dispatch throughput on a short-delay-Timeout
                  dominated workload (many concurrent clocked processes) plus
                  a delta-cycle (zero-delay) drain workload,
* ``tracing``  -- per-transaction append cost of the transaction tracer and
                  activity log (enabled and disabled) and columnar query time,
* ``lfsr``     -- bit-accurate pattern generation (LFSR) and signature
                  compaction (MISR) throughput,
* ``schedule`` -- builds/second of every registered scheduler strategy on a
                  generated task set, plus schedule-quality deltas
                  (estimated makespan / peak power) vs the greedy baseline,
* ``campaign`` -- rows/second of the 50-scenario pool run (serial and
                  worker pool),
* ``distrib``  -- shard planning/merge throughput of the distribution layer,
* ``store``    -- columnar store vs dict-of-lists: streaming shard merge,
                  vectorized Pareto ranking/pruning and store aggregation
                  on a >=100k-row synthetic campaign,
* ``coordinator`` -- live-coordination overhead: lease/complete operation
                  throughput of the span queue, steal-path scan cost, and
                  out-of-order streamed-merge rows/second (with the bitwise
                  identity of the regenerated artifact asserted),
* ``metrics``  -- observability overhead: instrumented (structured log +
                  live /metrics exporter) vs bare coordinator drain, with
                  the within-5% invariant, plus exporter scrape latency.

Each benchmark writes ``BENCH_<name>.json`` with the measured numbers under a
run label (``--label``).  Passing ``--baseline-dir`` merges previously
recorded numbers into the same document and computes speedups, which is how
the checked-in artifacts record the before/after trajectory of a PR::

    # on the old tree
    python benchmarks/run_benchmarks.py --label baseline --out /tmp/bench
    # on the new tree
    python benchmarks/run_benchmarks.py --label after --out . \
        --baseline-dir /tmp/bench

The script only uses public APIs, so it runs unchanged on older revisions
(it adapts to either the record-object or the columnar tracer interface).

CI runs ``--quick`` as a smoke job and uploads the JSON as an artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.kernel import NS, SimTime, Simulator, Timeout  # noqa: E402
from repro.kernel.tracing import TransactionRecord, TransactionTracer  # noqa: E402
from repro.rtl.lfsr import LFSR, MISR  # noqa: E402

SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------

#: Repetitions per timed workload; the best (shortest) run is reported so
#: that co-tenant noise on shared hosts does not masquerade as a slowdown.
REPEATS = 3


def _best_of(repeats, run) -> tuple:
    """Run *run()* repeatedly; returns (best_wall_seconds, last_result)."""
    best = None
    result = None
    for _ in range(repeats):
        wall, result = run()
        if best is None or wall < best:
            best = wall
    return best, result


def bench_kernel(scale: float) -> dict:
    """Dispatch throughput of the scheduler.

    The *timeout* workload is the paper-shaped hot path: many concurrent
    processes (cores shifting patterns, clock edges, status polls) each
    waiting short, clock-period-sized delays, so the pending set stays large
    and almost every activation is a near-future Timeout.  The *delta*
    workload drains long same-timestamp chains (update-phase style).
    """
    procs = 160
    steps = max(1, int(1200 * scale))
    periods = [SimTime(7, NS), SimTime(10, NS), SimTime(13, NS), SimTime(10, NS)]

    def ticker(period, count):
        for _ in range(count):
            yield Timeout(period)

    def run_timeout_workload():
        sim = Simulator("bench_timeout")
        for index in range(procs):
            sim.spawn(ticker(periods[index % len(periods)], steps),
                      name=f"t{index}")
        start = time.perf_counter()
        sim.run()
        return time.perf_counter() - start, sim.dispatched_activations

    timeout_wall, timeout_dispatched = _best_of(REPEATS, run_timeout_workload)

    def delta_chain(count):
        for _ in range(count):
            yield  # bare yield: next delta cycle, zero-delay fast lane

    delta_steps = max(1, int(40_000 * scale))

    def run_delta_workload():
        sim = Simulator("bench_delta")
        for index in range(8):
            sim.spawn(delta_chain(delta_steps), name=f"d{index}")
        start = time.perf_counter()
        sim.run(until=SimTime(0))
        return time.perf_counter() - start, sim.dispatched_activations

    delta_wall, delta_dispatched = _best_of(REPEATS, run_delta_workload)

    return {
        "workload": {
            "timeout_processes": procs,
            "timeout_steps_per_process": steps,
            "delta_processes": 8,
            "delta_steps_per_process": delta_steps,
            "repeats_best_of": REPEATS,
        },
        "timeout_dispatched": timeout_dispatched,
        "timeout_wall_seconds": round(timeout_wall, 6),
        "timeout_dispatch_per_second": round(timeout_dispatched / timeout_wall, 1),
        "delta_dispatched": delta_dispatched,
        "delta_wall_seconds": round(delta_wall, 6),
        "delta_dispatch_per_second": round(delta_dispatched / delta_wall, 1),
        "dispatch_per_second": round(
            (timeout_dispatched + delta_dispatched) / (timeout_wall + delta_wall), 1
        ),
    }


# ---------------------------------------------------------------------------
# tracing
# ---------------------------------------------------------------------------

def _trace_append(tracer: TransactionTracer, count: int) -> float:
    """Append *count* transactions the way the TAM channel hot path does."""
    start = time.perf_counter()
    if hasattr(tracer, "record_fs"):  # columnar fast path (new interface)
        for index in range(count):
            # The real call-site pattern: re-test the flag per transaction.
            if tracer.enabled:
                tracer.record_fs(
                    "tam", "burst", index * 1000, index * 1000 + 640,
                    initiator="bench", address=0x1000, data_bits=640,
                    attributes={"busy_cycles": 64},
                )
    else:  # record-object path (seed interface)
        for index in range(count):
            tracer.record(TransactionRecord(
                channel="tam", kind="burst", start=SimTime(index * 1000),
                end=SimTime(index * 1000 + 640), initiator="bench",
                address=0x1000, data_bits=640,
                attributes={"busy_cycles": 64},
            ))
    return time.perf_counter() - start


def bench_tracing(scale: float) -> dict:
    count = max(1, int(60_000 * scale))

    def run_enabled():
        tracer = TransactionTracer(enabled=True)
        return _trace_append(tracer, count), tracer

    def run_disabled():
        tracer = TransactionTracer(enabled=False)
        return _trace_append(tracer, count), tracer

    enabled_wall, enabled = _best_of(REPEATS, run_enabled)
    disabled_wall, _ = _best_of(REPEATS, run_disabled)

    start = time.perf_counter()
    busy = enabled.total_busy_time("tam")
    utilization = enabled.utilization(
        "tam", SimTime(0), SimTime(count * 1000))
    query_wall = time.perf_counter() - start

    # Windowed profile query (the Table-I peak-utilization path): many
    # busy-in-window probes over the same channel, which is where the
    # merged-interval cache + searchsorted implementation earns its keep.
    profile_result: dict = {}
    if hasattr(enabled, "utilization_profile"):
        window_fs = 50_000  # ~20 windows per 1000 appended transactions

        def run_profile():
            start = time.perf_counter()
            profile = enabled.utilization_profile("tam", SimTime(window_fs))
            return time.perf_counter() - start, profile

        profile_wall, profile = _best_of(REPEATS, run_profile)
        profile_result = {
            "profile_wall_seconds": round(profile_wall, 6),
            "profile_windows": len(profile),
            "profile_windows_per_second": round(
                len(profile) / profile_wall, 1),
            "profile_checksum": round(sum(profile), 6),
        }

    log_result: dict = {}
    try:
        from repro.dft.monitor import ActivityLog

        log = ActivityLog()
        start = time.perf_counter()
        for index in range(count // 4):
            log.record(core="c", kind="scan", start=SimTime(index * 100),
                       end=SimTime(index * 100 + 50), power=1.0)
        log_result["activity_append_wall_seconds"] = round(
            time.perf_counter() - start, 6)
        log_result["activity_appends"] = count // 4
    except Exception:  # pragma: no cover - layout drift on old revisions
        pass

    return {
        "workload": {"transactions": count},
        "enabled_wall_seconds": round(enabled_wall, 6),
        "enabled_appends_per_second": round(count / enabled_wall, 1),
        "disabled_wall_seconds": round(disabled_wall, 6),
        "disabled_appends_per_second": round(count / disabled_wall, 1),
        "query_wall_seconds": round(query_wall, 6),
        "query_check": {
            "busy_fs": busy.femtoseconds,
            "utilization": round(utilization, 6),
        },
        **profile_result,
        **log_result,
    }


# ---------------------------------------------------------------------------
# lfsr / misr
# ---------------------------------------------------------------------------

def bench_lfsr(scale: float) -> dict:
    words = max(1, int(20_000 * scale))
    word_bits = 64

    def run_words():
        lfsr = LFSR(32, seed=0xACE1)
        start = time.perf_counter()
        checksum = 0
        for _ in range(words):
            checksum ^= lfsr.next_word(word_bits)
        return time.perf_counter() - start, checksum

    word_wall, checksum = _best_of(REPEATS, run_words)

    patterns = max(1, int(4_000 * scale))
    pattern_bits = 128

    def run_patterns():
        lfsr = LFSR(32, seed=7)
        start = time.perf_counter()
        ones = 0
        for _ in range(patterns):
            ones += sum(lfsr.next_pattern(pattern_bits))
        return time.perf_counter() - start, ones

    pattern_wall, ones = _best_of(REPEATS, run_patterns)

    misr_words = max(1, int(120_000 * scale))

    def run_misr():
        misr = MISR(32)
        start = time.perf_counter()
        signature = misr.compact_sequence(range(misr_words))
        return time.perf_counter() - start, signature

    misr_wall, signature = _best_of(REPEATS, run_misr)

    return {
        "workload": {
            "words": words, "word_bits": word_bits,
            "patterns": patterns, "pattern_bits": pattern_bits,
            "misr_words": misr_words,
        },
        "word_wall_seconds": round(word_wall, 6),
        "word_bits_per_second": round(words * word_bits / word_wall, 1),
        "pattern_wall_seconds": round(pattern_wall, 6),
        "pattern_bits_per_second": round(
            patterns * pattern_bits / pattern_wall, 1),
        "misr_wall_seconds": round(misr_wall, 6),
        "misr_words_per_second": round(misr_words / misr_wall, 1),
        "checks": {
            "word_checksum": checksum,
            "pattern_ones": ones,
            "misr_signature": signature,
        },
    }


# ---------------------------------------------------------------------------
# schedule strategies
# ---------------------------------------------------------------------------

def bench_schedule(scale: float) -> dict:
    """Strategy build throughput and schedule quality vs the greedy baseline.

    Builds every registered scheduler strategy (default parameters, plus a
    representative annealing configuration) over a generated multi-core task
    set and reports builds/second next to the estimated makespan and peak
    power relative to greedy — the coarse preview of the estimate-vs-
    simulation comparison the campaign layer runs at scale.
    """
    from repro.explore.scenarios import ScenarioSpec, build_scenario
    from repro.schedule.scheduler import schedule_makespan_estimate
    from repro.schedule.strategies import build_strategy_schedule

    builds = max(3, int(60 * scale))
    scenario = build_scenario(ScenarioSpec(
        name="bench", core_count=6, patterns_per_core=64, power_budget=3.5,
        seed=13, schedules=("sequential",)))
    tasks = scenario.tasks
    estimates = scenario.estimator.estimate_all(tasks)
    power_model = scenario.power_model

    specs = ["sequential", "greedy", "binpack", "binpack:fit=worst",
             "anneal:steps=256,peak_weight=0.25"]
    result: dict = {
        "workload": {"tasks": len(tasks), "builds_per_strategy": builds,
                     "power_budget": power_model.budget},
        "strategies": {},
    }

    greedy = build_strategy_schedule("greedy", tasks, estimates,
                                     power_model=power_model)
    greedy_makespan = schedule_makespan_estimate(greedy, estimates)
    greedy_peak = power_model.schedule_peak_power(greedy, tasks)

    for text in specs:
        def run_builds(text=text):
            start = time.perf_counter()
            schedule = None
            for _ in range(builds):
                schedule = build_strategy_schedule(
                    text, tasks, estimates, power_model=power_model)
            return time.perf_counter() - start, schedule

        wall, schedule = _best_of(REPEATS, run_builds)
        makespan = schedule_makespan_estimate(schedule, estimates)
        peak = power_model.schedule_peak_power(schedule, tasks)
        result["strategies"][text] = {
            "builds_per_second": round(builds / wall, 1),
            "phase_count": schedule.phase_count,
            "makespan_estimate": makespan,
            "peak_power_estimate": round(peak, 3),
            "makespan_vs_greedy": round(makespan / greedy_makespan, 4),
            "peak_power_vs_greedy": round(peak / greedy_peak, 4),
        }
    result["greedy_builds_per_second"] = \
        result["strategies"]["greedy"]["builds_per_second"]
    return result


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------

def _pool_campaign(quick: bool):
    from dataclasses import replace

    from repro.explore.campaign import Campaign, campaign_from_axes
    from repro.explore.scenarios import ScenarioSpec

    if quick:
        return campaign_from_axes(
            {"core_count": [1, 2], "tam_width_bits": [16, 32]},
            base=ScenarioSpec(name="base", patterns_per_core=32, seed=5,
                              schedules=("sequential", "greedy")),
        )
    # The 50-scenario pool workload of the at-scale campaign test.
    campaign = campaign_from_axes(
        {"core_count": [1, 2], "tam_width_bits": [8, 16, 32, 64],
         "compression_ratio": [10.0, 100.0], "power_budget": [3.0, 8.0]},
        base=ScenarioSpec(name="base", patterns_per_core=48, seed=5,
                          schedules=("sequential", "greedy")),
    )
    specs = campaign.specs
    extra = [replace(spec, name=f"{spec.name}_s2", seed=spec.seed + 1)
             for spec in specs]
    return Campaign(specs + extra)


def bench_campaign(scale: float, quick: bool = False) -> dict:
    campaign = _pool_campaign(quick=quick or scale < 1.0)
    workers = max(2, min(4, os.cpu_count() or 1))

    def run_serial():
        run = campaign.run(workers=1)
        return run.wall_seconds, run

    def run_pool():
        run = campaign.run(workers=workers)
        return run.wall_seconds, run

    serial_wall, serial = _best_of(REPEATS, run_serial)
    pool_wall, pool = _best_of(REPEATS, run_pool)
    serial.wall_seconds = serial_wall
    pool.wall_seconds = pool_wall
    if pool.deterministic_rows() != serial.deterministic_rows():
        raise AssertionError("pool campaign rows diverged from serial rows")
    return {
        "workload": {
            "scenarios": len({spec.name for spec in campaign.specs}),
            "jobs": len(campaign),
            "pool_workers": workers,
        },
        "serial_wall_seconds": round(serial.wall_seconds, 6),
        "serial_rows_per_second": round(serial.rows_per_second, 3),
        "pool_wall_seconds": round(pool.wall_seconds, 6),
        "pool_rows_per_second": round(pool.rows_per_second, 3),
        "rows_identical": True,
    }


def bench_distrib(scale: float) -> dict:
    """Shard plan/serialize/merge overhead (the non-simulation cost of
    distributing a campaign).

    Uses synthetic outcomes so the numbers isolate the distribution layer:
    planning a large job list into shards, JSON-round-tripping the shard
    artifacts and merging them back.  Merge throughput (rows/second) is the
    headline — it bounds how fast a coordinator can recombine a fleet's
    results.
    """
    from repro.explore.campaign import CampaignJob, CampaignOutcome, CampaignRun
    from repro.explore.distrib import (
        ShardRun, merge_shard_documents, plan_shards,
    )
    from repro.explore.scenarios import ScenarioSpec

    jobs = []
    for index in range(max(64, int(4000 * scale))):
        spec = ScenarioSpec(name=f"s{index:05d}", core_count=1 + index % 3,
                            patterns_per_core=16 + index % 7, seed=index + 1)
        jobs.append(CampaignJob(spec=spec, schedule="sequential"))
    shard_count = 8

    def outcome(job, salt):
        return CampaignOutcome(
            spec=job.spec, schedule=job.schedule, phase_count=1, task_count=2,
            estimated_cycles=1000 + salt, test_length_cycles=5000 + salt,
            peak_tam_utilization=0.5, avg_tam_utilization=0.25,
            peak_power=2.0, avg_power=1.0, simulated_activations=100 + salt,
        )

    def run_plan():
        start = time.perf_counter()
        shards = plan_shards(jobs, shard_count)
        return time.perf_counter() - start, shards

    plan_wall, shards = _best_of(REPEATS, run_plan)

    documents = []
    for shard in shards:
        run = CampaignRun(outcomes=[outcome(job, shard.start + i)
                                    for i, job in enumerate(shard.jobs)])
        documents.append(json.loads(json.dumps(
            ShardRun(shard, run).as_document())))

    def run_merge():
        start = time.perf_counter()
        merged = merge_shard_documents(documents)
        return time.perf_counter() - start, merged

    merge_wall, merged = _best_of(REPEATS, run_merge)
    if merged["row_count"] != len(jobs):
        raise AssertionError("merged row count diverged from the job list")
    return {
        "workload": {"jobs": len(jobs), "shards": shard_count},
        "plan_wall_seconds": round(plan_wall, 6),
        "plan_jobs_per_second": round(len(jobs) / plan_wall, 1),
        "merge_wall_seconds": round(merge_wall, 6),
        "merge_rows_per_second": round(len(jobs) / merge_wall, 1),
    }


# ---------------------------------------------------------------------------
# columnar store
# ---------------------------------------------------------------------------

def _synthetic_rows(start: int, stop: int) -> list:
    """Deterministic campaign rows (result_columns(deterministic=True) order,
    realistic value shapes) without running simulations."""
    schedules = ("sequential", "greedy", "binpack:fit=worst",
                 "anneal:steps=512")
    strategies = ("", "", "binpack", "anneal")
    params = ("", "", "fit=worst", "steps=512")
    rows = []
    for i in range(start, stop):
        cycles = 100_000 + 19 * (i % 9931)
        rows.append({
            "scenario": f"scenario_{i:06d}",
            "kind": "generated",
            "seed": i + 1,
            "core_count": 1 + i % 4,
            "tam_width_bits": (8, 16, 32, 64)[i % 4],
            "ate_width_bits": 32,
            "compression_ratio": float((i % 7) * 16.5 + 1.0),
            "power_budget": 3.0 + (i % 5),
            "patterns_per_core": 64 + i % 33,
            "memory_words": 0,
            "wrapper_parallel_width_bits": 0,
            "wrapper_serial_width_bits": 1,
            "ate_vector_memory_words": 0,
            "schedule": schedules[i % 4],
            "strategy": strategies[i % 4],
            "strategy_params": params[i % 4],
            "phase_count": 1 + i % 3,
            "task_count": 2 + i % 5,
            "estimated_cycles": 100_000 + 17 * i,
            "test_length_cycles": cycles,
            "test_length_mcycles": cycles / 1e6,
            "peak_tam_utilization": 0.25 + (i % 64) / 128.0,
            "avg_tam_utilization": 0.125 + (i % 64) / 256.0,
            "peak_power": 1.0 + (i % 97) / 19.0,
            "avg_power": 0.5 + (i % 97) / 38.0,
            "simulated_activations": 1000 + i % 701,
        })
    return rows


def bench_store(scale: float) -> dict:
    """Columnar store vs the dict-of-lists path on a synthetic campaign.

    Four head-to-head measurements at >=100k rows (scale 1.0):

    * *merge* — recombining shard documents into a persisted artifact:
      ``merge_shard_documents`` + ``write_merged_json`` (in-memory row
      concatenation, indented JSON dump) vs ``merge_documents_to_store``
      (plan-validated typed column chunks),
    * *pareto_ranks* — python peeling vs the vectorized dominator counting,
      on a round-sized sample of the (length, power) objective vectors,
    * *front_prune* — incremental python ``ParetoFront`` vs the
      ``pareto_front_mask`` sweep over every row,
    * *aggregate* — python per-row group-by vs the numpy ``summarize_store``.

    The merged store is additionally streamed back to JSON and compared
    byte-for-byte against the dict-path artifact (``bitwise_identical``).
    """
    import tempfile
    from pathlib import Path as _Path

    from repro.explore.adaptive import (
        ParetoFront, dominates, pareto_front_mask, pareto_ranks,
    )
    from repro.explore.campaign import SCHEMA_VERSION, result_columns
    from repro.explore.distrib import (
        DISTRIB_SCHEMA_VERSION, merge_shard_documents, shard_span,
        write_merged_json,
    )
    from repro.explore.report import summarize_store
    from repro.explore.store import (
        ColumnarStore, merge_documents_to_store, write_document_json,
    )

    total = max(800, int(120_000 * scale))
    shard_count = 8
    columns = result_columns(deterministic=True)
    documents = []
    for index in range(shard_count):
        start, stop = shard_span(index, shard_count, total)
        documents.append({
            "schema_version": SCHEMA_VERSION,
            "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
            "shard": {"index": index, "count": shard_count, "start": start,
                      "stop": stop, "total_jobs": total,
                      "fingerprint": "0" * 64},
            "columns": columns,
            "row_count": stop - start,
            "rows": _synthetic_rows(start, stop),
        })

    tmp = _Path(tempfile.mkdtemp(prefix="bench_store_"))

    # -- merge: dict-of-lists vs columnar store
    def run_dict_merge():
        start = time.perf_counter()
        merged = merge_shard_documents(documents)
        write_merged_json(merged, tmp / "merged_dict.json")
        return time.perf_counter() - start, merged

    dict_wall, merged = _best_of(REPEATS, run_dict_merge)

    def run_store_merge():
        start = time.perf_counter()
        store = merge_documents_to_store(documents, tmp / "merged.store")
        return time.perf_counter() - start, store

    store_wall, _ = _best_of(REPEATS, run_store_merge)
    store = ColumnarStore.open(tmp / "merged.store")
    if store.row_count != total or merged["row_count"] != total:
        raise AssertionError("merge row counts diverged")

    write_document_json(store, tmp / "merged_store.json")
    bitwise = ((tmp / "merged_store.json").read_bytes()
               == (tmp / "merged_dict.json").read_bytes())
    if not bitwise:
        raise AssertionError("store-regenerated JSON diverged from the "
                             "dict-path artifact")

    # -- pareto_ranks: python peeling vs vectorized dominator counting
    def ranks_python(vectors):
        vectors = [tuple(v) for v in vectors]
        ranks = [-1] * len(vectors)
        remaining = set(range(len(vectors)))
        rank = 0
        while remaining:
            front = [i for i in remaining
                     if not any(dominates(vectors[j], vectors[i])
                                for j in remaining if j != i)]
            for i in front:
                ranks[i] = rank
            remaining.difference_update(front)
            rank += 1
        return ranks

    lengths = store.column("test_length_cycles")
    powers = store.column("peak_power")
    sample = max(64, min(int(4096 * scale) or 64, total))
    sample_vectors = list(zip(lengths[:sample].tolist(),
                              powers[:sample].tolist()))

    def run_py_ranks():
        start = time.perf_counter()
        ranks = ranks_python(sample_vectors)
        return time.perf_counter() - start, ranks

    # The python peeling is quadratic — one timing pass is plenty at scale.
    py_ranks_wall, py_ranks = _best_of(1 if scale >= 1.0 else REPEATS,
                                       run_py_ranks)

    def run_np_ranks():
        start = time.perf_counter()
        ranks = pareto_ranks(sample_vectors)
        return time.perf_counter() - start, ranks

    np_ranks_wall, np_ranks = _best_of(REPEATS, run_np_ranks)
    if np_ranks != py_ranks:
        raise AssertionError("vectorized pareto_ranks diverged from the "
                             "python reference")

    # -- front pruning over every row: python ParetoFront vs the 2-D sweep
    all_vectors = list(zip(lengths.tolist(), powers.tolist()))

    def run_py_front():
        start = time.perf_counter()
        front = ParetoFront()
        for index, vector in enumerate(all_vectors):
            front.add(index, vector=vector)
        return time.perf_counter() - start, front

    py_front_wall, py_front = _best_of(REPEATS, run_py_front)

    def run_np_front():
        start = time.perf_counter()
        mask = pareto_front_mask(all_vectors)
        return time.perf_counter() - start, mask

    np_front_wall, np_mask = _best_of(REPEATS, run_np_front)
    if sorted(py_front.points) != [i for i, keep in enumerate(np_mask)
                                   if keep]:
        raise AssertionError("pareto_front_mask diverged from the "
                             "incremental ParetoFront")

    # -- aggregation over the persisted artifact: JSON parse + python row
    # loop vs store open + numpy summarize_store (both start from disk, the
    # workflow being "summarize an artifact somebody handed you").
    def run_py_aggregate():
        start = time.perf_counter()
        with open(tmp / "merged_dict.json") as handle:
            document = json.load(handle)
        groups: dict = {}
        for row in document["rows"]:
            entry = groups.setdefault(
                row["schedule"], {"rows": 0, "sum": 0.0,
                                  "min": float("inf"), "max": float("-inf")})
            entry["rows"] += 1
            value = row["test_length_cycles"]
            entry["sum"] += value
            entry["min"] = min(entry["min"], value)
            entry["max"] = max(entry["max"], value)
        return time.perf_counter() - start, groups

    py_agg_wall, py_groups = _best_of(REPEATS, run_py_aggregate)

    def run_np_aggregate():
        start = time.perf_counter()
        reopened = ColumnarStore.open(tmp / "merged.store")
        summary = summarize_store(reopened, metrics=("test_length_cycles",))
        return time.perf_counter() - start, summary

    np_agg_wall, summary = _best_of(REPEATS, run_np_aggregate)
    for entry in summary:
        reference = py_groups[entry["schedule"]]
        if entry["rows"] != reference["rows"] or \
                entry["min_test_length_cycles"] != reference["min"]:
            raise AssertionError("summarize_store diverged from the python "
                                 "group-by")

    return {
        "workload": {
            "rows": total, "shards": shard_count, "columns": len(columns),
            "pareto_sample": sample, "repeats_best_of": REPEATS,
        },
        "merge": {
            "dict_wall_seconds": round(dict_wall, 6),
            "dict_rows_per_second": round(total / dict_wall, 1),
            "store_wall_seconds": round(store_wall, 6),
            "store_rows_per_second": round(total / store_wall, 1),
            "speedup": round(dict_wall / store_wall, 2),
        },
        "pareto_ranks": {
            "python_wall_seconds": round(py_ranks_wall, 6),
            "numpy_wall_seconds": round(np_ranks_wall, 6),
            "speedup": round(py_ranks_wall / np_ranks_wall, 2),
            "identical": True,
        },
        "front_prune": {
            "python_wall_seconds": round(py_front_wall, 6),
            "numpy_wall_seconds": round(np_front_wall, 6),
            "speedup": round(py_front_wall / np_front_wall, 2),
            "front_size": int(sum(np_mask)),
            "identical": True,
        },
        "aggregate": {
            "python_wall_seconds": round(py_agg_wall, 6),
            "numpy_wall_seconds": round(np_agg_wall, 6),
            "speedup": round(py_agg_wall / np_agg_wall, 2),
            "groups": len(summary),
            "identical": True,
        },
        "bitwise_identical": bitwise,
        "merge_speedup": round(dict_wall / store_wall, 2),
        "pareto_speedup": round(py_ranks_wall / np_ranks_wall, 2),
        "store_merge_rows_per_second": round(total / store_wall, 1),
    }


# ---------------------------------------------------------------------------
# surrogate tier
# ---------------------------------------------------------------------------

def _surrogate_space(quick: bool):
    """The surrogate acceptance space: >=50 scenarios x 4 strategy recipes.

    The ``patterns_per_core`` axis deliberately includes a dominated half
    (64-pattern scenarios can never beat their 32-pattern siblings), the
    shape of real design-space sweeps and the region the estimator screen
    is supposed to prune without simulating.
    """
    from repro.explore.scenarios import ScenarioGrid, ScenarioSpec

    schedules = ("sequential", "greedy", "binpack",
                 "portfolio:members=greedy|binpack|anneal")
    if quick:
        axes = {"core_count": [1, 2], "tam_width_bits": [16, 32],
                "patterns_per_core": [24, 48]}
    else:
        axes = {"core_count": [1, 2], "tam_width_bits": [8, 16, 32, 64],
                "compression_ratio": [10.0, 100.0],
                "power_budget": [3.0, 8.0],
                "patterns_per_core": [32, 64]}
    grid = ScenarioGrid(axes, base=ScenarioSpec(name="base", seed=5,
                                                schedules=schedules))
    return grid.specs()


def bench_surrogate(scale: float, quick: bool = False) -> dict:
    """The surrogate-tier win: batch estimator throughput and the
    full-fidelity jobs avoided by ``--surrogate --race``.

    Four measurements on the 64-scenario acceptance space:

    * *estimation* — task cycles/second under N scalar
      ``estimate_task_cycles`` calls vs one vectorized
      :class:`BatchEstimator` pass over the same rows (bit-exactness
      asserted),
    * *screen* — candidates/second through the end-to-end surrogate
      screen (batch build + scoring + Pareto ranking),
    * *search* — one full-simulation adaptive run vs the identical search
      with ``surrogate=True, race=True``: wall-clock speedup and the
      full-fidelity job reduction (the headline),
    * *front* — the two runs must reach the identical final Pareto front;
      divergence is an error, not a data point.

    Everything here is deterministic (same seeds, same selection order), so
    the reduction and front-equality numbers are exactly reproducible.
    """
    from repro.explore.adaptive import (
        DEFAULT_OBJECTIVES, AdaptiveSearch, surrogate_screen_candidates,
    )
    from repro.explore.campaign import cached_scenario
    from repro.schedule.estimator import BatchEstimator

    quick = quick or scale < 1.0
    specs = _surrogate_space(quick)
    search = AdaptiveSearch(specs)
    candidates = search.candidates()

    # Warm the scenario/schedule caches so the timed regions measure
    # estimation and screening, not task generation or strategy builds.
    for spec, schedule_name in candidates:
        cached_scenario(spec).schedule_for(schedule_name)

    # Task-cycle estimation throughput: N python estimate_task_cycles calls
    # vs one vectorized pass over the same N task rows.  The batch is built
    # outside the timed region on both sides — the comparison isolates the
    # arithmetic, which is what repeated scoring (budget ladders, sweeps)
    # actually re-runs.
    def run_scalar_eval():
        start = time.perf_counter()
        estimates = {}
        for spec in specs:
            scenario = cached_scenario(spec)
            per_task = scenario.estimator.estimate_all(scenario.tasks)
            for name, cycles in per_task.items():
                estimates[(spec.name, name)] = cycles
        return time.perf_counter() - start, estimates

    scalar_wall, scalar_estimates = _best_of(REPEATS, run_scalar_eval)

    batch = BatchEstimator()
    batch_rows = {}
    for spec in specs:
        scenario = cached_scenario(spec)
        batch_rows[spec.name] = batch.add_estimator_tasks(scenario.estimator,
                                                          scenario.tasks)

    def run_batch_eval():
        batch._cycles = None  # force a fresh vectorized pass
        start = time.perf_counter()
        cycles = batch.task_cycles()
        return time.perf_counter() - start, cycles

    batch_wall, batch_cycles = _best_of(REPEATS, run_batch_eval)
    batch_estimates = {
        (spec_name, task_name): int(batch_cycles[row])
        for spec_name, rows in batch_rows.items()
        for task_name, row in rows.items()
    }
    if batch_estimates != scalar_estimates:
        raise AssertionError("batch estimator task cycles diverged from the "
                             "scalar estimator")
    task_count = len(scalar_estimates)

    def run_screen():
        start = time.perf_counter()
        screen, kept = surrogate_screen_candidates(
            specs, candidates, DEFAULT_OBJECTIVES, 0.25)
        return time.perf_counter() - start, screen

    screen_wall, screen = _best_of(REPEATS, run_screen)

    # End-to-end searches are the expensive part: one timed pass each
    # (the searches are deterministic, so repetition buys nothing but heat).
    start = time.perf_counter()
    full = AdaptiveSearch(specs).run()
    full_wall = time.perf_counter() - start
    start = time.perf_counter()
    raced = AdaptiveSearch(specs, surrogate=True, surrogate_keep=0.25,
                           race=True).run()
    raced_wall = time.perf_counter() - start

    if quick:
        # The tiny smoke space makes every strategy tie on the same
        # objective vector, so member identity is down to which duplicate
        # survives selection; compare the objective-vector front instead.
        full_front = sorted(set((o.test_length_cycles, round(o.peak_power, 9))
                                for o in full.front))
        raced_front = sorted(set((o.test_length_cycles, round(o.peak_power, 9))
                                 for o in raced.front))
    else:
        full_front = sorted((o.spec.name, o.schedule) for o in full.front)
        raced_front = sorted((o.spec.name, o.schedule) for o in raced.front)
    if full_front != raced_front:
        raise AssertionError(
            "surrogate+race search reached a different Pareto front than "
            "the full-simulation search")

    reduction = full.full_fidelity_jobs / max(1, raced.full_fidelity_jobs)
    return {
        "workload": {
            "scenarios": len(specs),
            "candidates": len(candidates),
            "surrogate_keep": 0.25,
            "repeats_best_of": REPEATS,
        },
        "estimation": {
            "tasks": task_count,
            "scalar_wall_seconds": round(scalar_wall, 6),
            "scalar_tasks_per_second": round(task_count / scalar_wall, 1),
            "batch_wall_seconds": round(batch_wall, 6),
            "batch_tasks_per_second": round(task_count / batch_wall, 1),
            "speedup": round(scalar_wall / batch_wall, 2),
            "bit_exact": True,
        },
        "screen": {
            "wall_seconds": round(screen_wall, 6),
            "candidates_per_second": round(len(candidates) / screen_wall, 1),
            "screened": screen.screened,
            "kept": screen.kept,
        },
        "search": {
            "full_wall_seconds": round(full_wall, 6),
            "raced_wall_seconds": round(raced_wall, 6),
            "wall_speedup": round(full_wall / raced_wall, 2),
            "full_fidelity_jobs_full": full.full_fidelity_jobs,
            "full_fidelity_jobs_raced": raced.full_fidelity_jobs,
            "total_jobs_full": full.total_jobs,
            "total_jobs_raced": raced.total_jobs,
            "race_stopped_jobs": raced.race_stopped_jobs,
            "front_size": len(full.front),
            "same_front": True,
        },
        "batch_candidates_per_second": round(
            len(candidates) / screen_wall, 1),
        "batch_tasks_per_second": round(task_count / batch_wall, 1),
        "full_fidelity_reduction": round(reduction, 2),
    }


# ---------------------------------------------------------------------------
# coordinator
# ---------------------------------------------------------------------------

class _ManualClock:
    """Injected monotonic clock: lease expiry without real waiting."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def bench_coordinator(scale: float) -> dict:
    """Live-coordination overhead: the non-simulation cost of running a
    campaign through the coordinator instead of ``--shard I/N`` hosts.

    Three measurements, all with synthetic shard results so the numbers
    isolate the coordination layer:

    * *queue* — lease/complete operation throughput of an in-process
      :class:`Coordinator` draining a many-span campaign (grant, validate,
      ingest; the headline ``lease_ops_per_second``),
    * *steal* — the lazy-expiry scan: every span leased to a straggler, the
      injected clock jumps past the lease timeout, and one :meth:`tick`
      re-queues the lot (steals/second bounds how fast a dead fleet's work
      comes back),
    * *stream* — rows/second through :class:`IncrementalShardMerge` fed in
      scrambled completion order, with the regenerated JSON compared
      byte-for-byte against the dict-path artifact (``bitwise_identical``),
    * *wire* — the same drain and a bulk-ingest campaign over real localhost
      sockets with the client in a subprocess (a real worker process), once
      per protocol: v1 (connection per op, JSON row payloads) against v2
      (one framed session, ``prefetch`` span batching, pipelined completion
      flights, binary columnar payloads for bulk spans), with both
      protocols' campaign artifacts compared byte-for-byte against the
      dict-path merge (``wire.bitwise_identical``).
    """
    import tempfile
    import threading
    from pathlib import Path as _Path

    from repro.explore.campaign import (
        SCHEMA_VERSION as CAMPAIGN_SCHEMA_VERSION,
        CampaignJob, CampaignOutcome, CampaignRun, result_columns,
    )
    from repro.explore.coordinator import (
        Coordinator, CoordinatorServer,
    )
    from repro.explore.distrib import (
        DISTRIB_SCHEMA_VERSION, ShardRun, merge_shard_documents, plan_shards,
        shard_span, write_merged_json,
    )
    from repro.explore.scenarios import ScenarioSpec
    from repro.explore.store import IncrementalShardMerge, write_document_json

    jobs = []
    for index in range(max(96, int(2400 * scale))):
        spec = ScenarioSpec(name=f"s{index:05d}", core_count=1 + index % 3,
                            patterns_per_core=16 + index % 7, seed=index + 1)
        jobs.append(CampaignJob(spec=spec, schedule="sequential"))
    spans = max(12, int(240 * scale))

    def outcome(job, salt):
        return CampaignOutcome(
            spec=job.spec, schedule=job.schedule, phase_count=1, task_count=2,
            estimated_cycles=1000 + salt, test_length_cycles=5000 + salt,
            peak_tam_utilization=0.5, avg_tam_utilization=0.25,
            peak_power=2.0, avg_power=1.0, simulated_activations=100 + salt,
        )

    # Pre-build the completion document for every span from the same
    # plan_shards() call the coordinator makes, so the timed loop measures
    # grant + validation + ingestion, not document construction.
    documents = {}
    for shard in plan_shards(jobs, spans):
        run = CampaignRun(outcomes=[outcome(job, shard.start + i)
                                    for i, job in enumerate(shard.jobs)])
        documents[shard.index] = json.loads(json.dumps(
            ShardRun(shard, run).as_document()))

    # -- queue: grant/complete a full campaign through the span queue
    def run_drain():
        clock = _ManualClock()
        coordinator = Coordinator(lease_timeout=300.0, clock=clock)
        coordinator.submit_jobs(jobs, spans)
        start = time.perf_counter()
        drained = 0
        while True:
            granted = coordinator.request_lease("bench")
            if granted is None:
                break
            lease, shard = granted
            coordinator.complete_lease(lease.lease_id,
                                       documents[shard.index])
            drained += 1
        wall = time.perf_counter() - start
        coordinator.close()
        return wall, drained

    drain_wall, drained = _best_of(REPEATS, run_drain)
    if drained != spans:
        raise AssertionError("coordinator drain completed the wrong number "
                             "of spans")

    # -- steal: lease everything to a straggler, expire it, tick
    steal_rounds = 4

    def run_steals():
        clock = _ManualClock()
        coordinator = Coordinator(lease_timeout=60.0, clock=clock)
        coordinator.submit_jobs(jobs, spans)
        stolen = 0
        tick_wall = 0.0
        for _ in range(steal_rounds):
            while coordinator.request_lease("straggler") is not None:
                pass
            clock.advance(61.0)
            start = time.perf_counter()
            stolen += len(coordinator.tick())
            tick_wall += time.perf_counter() - start
        coordinator.close()
        return tick_wall, stolen

    steal_wall, stolen = _best_of(REPEATS, run_steals)
    if stolen != steal_rounds * spans:
        raise AssertionError("steal pass recovered the wrong number of "
                             "leases")

    # -- stream: out-of-order ingestion through IncrementalShardMerge
    total = max(800, int(80_000 * scale))
    stream_shards = 8
    columns = result_columns(deterministic=True)
    stream_documents = []
    for index in range(stream_shards):
        start, stop = shard_span(index, stream_shards, total)
        stream_documents.append({
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
            "shard": {"index": index, "count": stream_shards, "start": start,
                      "stop": stop, "total_jobs": total,
                      "fingerprint": "0" * 64},
            "columns": columns,
            "row_count": stop - start,
            "rows": _synthetic_rows(start, stop),
        })
    # Scrambled completion order (stride permutation): shard 0 does not
    # arrive first, so the in-order drain has to buffer and catch up.
    order = [(index * 5) % stream_shards for index in range(stream_shards)]

    tmp = _Path(tempfile.mkdtemp(prefix="bench_coordinator_"))

    def run_stream():
        start = time.perf_counter()
        merge = IncrementalShardMerge(
            tmp / "stream.store", count=stream_shards, total_jobs=total,
            fingerprint="0" * 64, columns=columns)
        for index in order:
            merge.add_shard_document(stream_documents[index])
        store = merge.finalize()
        return time.perf_counter() - start, store

    stream_wall, store = _best_of(REPEATS, run_stream)

    write_document_json(store, tmp / "stream.json")
    write_merged_json(merge_shard_documents(stream_documents),
                      tmp / "merged_dict.json")
    bitwise = ((tmp / "stream.json").read_bytes()
               == (tmp / "merged_dict.json").read_bytes())
    if not bitwise:
        raise AssertionError("streamed-merge JSON diverged from the "
                             "dict-path artifact")

    # -- wire: the same coordination work over real localhost sockets ------
    wire_prefetch = 16

    def serve(coordinator):
        server = CoordinatorServer(coordinator)
        thread = threading.Thread(target=server.serve_forever,
                                  kwargs={"poll_interval": 0.05}, daemon=True)
        thread.start()
        return server, thread

    def stop(server, thread):
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)

    # The wire clients run as real subprocesses: an in-process client would
    # share the GIL with the coordinator's serving thread and serialize the
    # very overlap (client encoding span n+1 while the server ingests span
    # n) that the pipelined v2 session exists to exploit.  The child times
    # itself and reports the walls on stdout.
    wire_client_script = r"""
import json, sys, time
protocol, port, docs_path, prefetch, mode = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4]), sys.argv[5])
from repro.explore.coordinator import CoordinatorClient, CoordinatorSession
with open(docs_path, "r", encoding="utf-8") as handle:
    documents = {int(key): value for key, value in json.load(handle).items()}
drained = 0
completion = 0.0
if protocol == "v2" and mode == "drain":
    # Fully pipelined drain: each flight carries the current batch's
    # completions plus the next lease request, so grant latency is hidden
    # behind completion processing.
    client = CoordinatorSession(port=port)
    start = time.perf_counter()
    pending = client.request_leases("bench", prefetch).get("leases") or []
    while pending:
        requests = [{"op": "complete",
                     "lease_id": int(entry["lease"]["lease_id"]),
                     "document": documents[entry["shard"]["shard"]["index"]]}
                    for entry in pending]
        requests.append({"op": "lease", "worker": "bench",
                         "count": prefetch})
        responses = client.call_many(requests)
        drained += sum(1 for response in responses[:-1]
                       if response.get("accepted"))
        pending = responses[-1].get("leases") or []
    wall = time.perf_counter() - start
    completion = wall
    client.close()
elif protocol == "v2":
    client = CoordinatorSession(port=port)
    start = time.perf_counter()
    while True:
        leases = client.request_leases("bench", prefetch).get("leases") or []
        if not leases:
            break
        pairs = [(int(entry["lease"]["lease_id"]),
                  documents[entry["shard"]["shard"]["index"]])
                 for entry in leases]
        began = time.perf_counter()
        drained += sum(client.complete_many(pairs))
        completion += time.perf_counter() - began
    wall = time.perf_counter() - start
    client.close()
else:
    client = CoordinatorClient(port=port)
    start = time.perf_counter()
    while True:
        response = client.request_lease("bench")
        if "lease" not in response:
            break
        index = response["shard"]["shard"]["index"]
        began = time.perf_counter()
        if client.complete(int(response["lease"]["lease_id"]),
                           documents[index]):
            drained += 1
        completion += time.perf_counter() - began
    wall = time.perf_counter() - start
print(json.dumps({"wall": wall, "completion_wall": completion,
                  "drained": drained}))
"""

    def run_wire_client(protocol, port, docs_path, mode):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(ROOT / "src")] +
            ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run(
            [sys.executable, "-c", wire_client_script, protocol, str(port),
             str(docs_path), str(wire_prefetch), mode],
            capture_output=True, text=True, env=env, timeout=600)
        if proc.returncode != 0:
            raise AssertionError(f"wire client ({protocol}) failed:\n"
                                 f"{proc.stderr}")
        return json.loads(proc.stdout)

    drain_docs_path = tmp / "wire_drain_documents.json"
    with open(drain_docs_path, "w", encoding="utf-8") as handle:
        json.dump({str(index): document
                   for index, document in documents.items()}, handle)

    def run_wire_drain(protocol):
        """Grant + complete every span over the socket from a subprocess
        worker; v2 batches leases and pipelines completions, v1 opens a
        connection per op."""
        coordinator = Coordinator(lease_timeout=300.0, clock=_ManualClock())
        coordinator.submit_jobs(jobs, spans,
                                store_path=str(tmp / f"drain-{protocol}"
                                               / "campaign.store"))
        server, thread = serve(coordinator)
        try:
            report = run_wire_client(protocol, server.port,
                                      drain_docs_path, "drain")
        finally:
            stop(server, thread)
            coordinator.close()
        if report["drained"] != spans:
            raise AssertionError(f"wire drain ({protocol}) completed "
                                 f"{report['drained']} of {spans} span(s)")
        return report["wall"], report["drained"]

    wire_walls = {
        protocol: _best_of(REPEATS,
                           lambda protocol=protocol:
                           run_wire_drain(protocol))[0]
        for protocol in ("v1", "v2")
    }

    # Bulk ingest: few spans, many rows — the completion-payload path.
    ingest_jobs = []
    for index in range(total):
        spec = ScenarioSpec(name=f"i{index:06d}", core_count=1 + index % 3,
                            patterns_per_core=16 + index % 7, seed=index + 1)
        ingest_jobs.append(CampaignJob(spec=spec, schedule="sequential"))
    ingest_documents = []
    for shard in plan_shards(ingest_jobs, stream_shards):
        ingest_documents.append({
            "schema_version": CAMPAIGN_SCHEMA_VERSION,
            "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
            "shard": shard.provenance(),
            "columns": columns,
            "row_count": shard.stop - shard.start,
            "rows": _synthetic_rows(shard.start, shard.stop),
        })

    ingest_docs_path = tmp / "wire_ingest_documents.json"
    with open(ingest_docs_path, "w", encoding="utf-8") as handle:
        json.dump({str(index): document
                   for index, document in enumerate(ingest_documents)},
                  handle)

    def run_wire_ingest(protocol):
        """Ship ``total`` rows through ``stream_shards`` completions over
        the socket from a subprocess worker.  The v1 client embeds the rows
        in a JSON request line; the v2 session pipelines binary columnar
        blocks (encode cost deliberately inside the timed loop — workers
        pay it too).  The reported wall covers only the completion calls —
        the lease-grant path has its own measurement above — and the JSON
        artifact is written from the finalized store after the clock stops,
        mirroring the in-process *stream* measurement."""
        coordinator = Coordinator(lease_timeout=300.0, clock=_ManualClock())
        work_dir = tmp / f"ingest-{protocol}"
        json_path = work_dir / "campaign.json"
        campaign = coordinator.submit_jobs(
            ingest_jobs, stream_shards,
            store_path=str(work_dir / "campaign.store"))
        server, thread = serve(coordinator)
        try:
            report = run_wire_client(protocol, server.port,
                                      ingest_docs_path, "ingest")
            write_document_json(coordinator.campaign_store(campaign),
                                json_path)
        finally:
            stop(server, thread)
            coordinator.close()
        if report["drained"] != stream_shards:
            raise AssertionError(f"wire ingest ({protocol}) completed "
                                 f"{report['drained']} of {stream_shards} "
                                 f"span(s)")
        return report["completion_wall"], json_path

    ingest_walls = {}
    ingest_artifacts = {}
    for protocol in ("v1", "v2"):
        ingest_walls[protocol], ingest_artifacts[protocol] = _best_of(
            REPEATS, lambda protocol=protocol: run_wire_ingest(protocol))

    write_merged_json(merge_shard_documents(ingest_documents),
                      tmp / "ingest_dict.json")
    reference = (tmp / "ingest_dict.json").read_bytes()
    wire_bitwise = all(ingest_artifacts[protocol].read_bytes() == reference
                       for protocol in ("v1", "v2"))
    if not wire_bitwise:
        raise AssertionError("wire-ingested campaign JSON diverged from the "
                             "dict-path artifact")

    return {
        "workload": {
            "jobs": len(jobs), "spans": spans,
            "steal_rounds": steal_rounds,
            "stream_rows": total, "stream_shards": stream_shards,
            "wire_prefetch": wire_prefetch,
            "repeats_best_of": REPEATS,
        },
        "drain_wall_seconds": round(drain_wall, 6),
        "lease_ops_per_second": round(2 * spans / drain_wall, 1),
        "spans_per_second": round(spans / drain_wall, 1),
        "queue_jobs_per_second": round(len(jobs) / drain_wall, 1),
        "steal_wall_seconds": round(steal_wall, 6),
        "steals_per_second": round(steal_rounds * spans / steal_wall, 1),
        "stream_wall_seconds": round(stream_wall, 6),
        "stream_rows_per_second": round(total / stream_wall, 1),
        "bitwise_identical": bitwise,
        "wire": {
            "v1_lease_ops_per_second": round(2 * spans / wire_walls["v1"], 1),
            "lease_ops_per_second": round(2 * spans / wire_walls["v2"], 1),
            "lease_speedup": round(wire_walls["v1"] / wire_walls["v2"], 2),
            "v1_ingest_rows_per_second": round(total / ingest_walls["v1"], 1),
            "ingest_rows_per_second": round(total / ingest_walls["v2"], 1),
            "ingest_speedup": round(ingest_walls["v1"]
                                    / ingest_walls["v2"], 2),
            "bitwise_identical": wire_bitwise,
        },
    }


# ---------------------------------------------------------------------------
# metrics / observability
# ---------------------------------------------------------------------------

def bench_metrics(scale: float) -> dict:
    """Observability overhead: what the metrics registry, structured log and
    live ``/metrics`` exporter cost the coordinator hot path.

    Three head-to-head drains of the same synthetic campaign (identical
    workload constants to ``bench_coordinator``, so the ops/second numbers
    line up), interleaved per repeat so host drift hits all three equally:

    * *bare* — a default :class:`Coordinator` (the registry is always on;
      this is the shipping configuration),
    * *exporter* — the same drain with a live :class:`MetricsServer`
      thread attached and answering scrapes,
    * *instrumented* — exporter plus a :class:`StructuredLog` writing
      (and flushing, for live tailing) every lease/complete event to disk.

    ``overhead_within_5_percent`` is the acceptance invariant: enabling
    the exporter must keep the drain within 5% of the bare drain (plus a
    5 ms absolute floor so quick-mode walls of a few ms cannot flap the
    boolean).  The structured log's per-event fsync discipline costs a few
    percent more; that is reported (``log_overhead_percent``) and bounded
    only by the ordinary throughput tolerance.  A final measurement times
    exporter scrapes against the fully-populated registry
    (``scrapes_per_second``, payload size).
    """
    import tempfile
    import urllib.request
    from pathlib import Path as _Path

    from repro.explore.campaign import CampaignJob, CampaignOutcome, CampaignRun
    from repro.explore.coordinator import Coordinator
    from repro.explore.distrib import ShardRun, plan_shards
    from repro.explore.metrics import MetricsServer, StructuredLog
    from repro.explore.scenarios import ScenarioSpec

    jobs = []
    for index in range(max(96, int(2400 * scale))):
        spec = ScenarioSpec(name=f"s{index:05d}", core_count=1 + index % 3,
                            patterns_per_core=16 + index % 7, seed=index + 1)
        jobs.append(CampaignJob(spec=spec, schedule="sequential"))
    spans = max(12, int(240 * scale))

    def outcome(job, salt):
        return CampaignOutcome(
            spec=job.spec, schedule=job.schedule, phase_count=1, task_count=2,
            estimated_cycles=1000 + salt, test_length_cycles=5000 + salt,
            peak_tam_utilization=0.5, avg_tam_utilization=0.25,
            peak_power=2.0, avg_power=1.0, simulated_activations=100 + salt,
        )

    documents = {}
    for shard in plan_shards(jobs, spans):
        run = CampaignRun(outcomes=[outcome(job, shard.start + i)
                                    for i, job in enumerate(shard.jobs)])
        documents[shard.index] = json.loads(json.dumps(
            ShardRun(shard, run).as_document()))

    tmp = _Path(tempfile.mkdtemp(prefix="bench_metrics_"))
    repeats = 5  # the 5% boolean needs tighter best-of than the default 3

    def drain(log_path=None, with_server=False):
        clock = _ManualClock()
        log = StructuredLog(log_path, clock=clock) if log_path else None
        coordinator = Coordinator(lease_timeout=300.0, clock=clock, log=log)
        server = None
        if with_server:
            server = MetricsServer(coordinator.metrics)
            server.start()
        coordinator.submit_jobs(jobs, spans)
        start = time.perf_counter()
        drained = 0
        while True:
            granted = coordinator.request_lease("bench")
            if granted is None:
                break
            lease, shard = granted
            coordinator.complete_lease(lease.lease_id,
                                       documents[shard.index])
            drained += 1
        wall = time.perf_counter() - start
        spans_total = coordinator.metrics.value(
            "coordinator_spans_completed_total")
        if server is not None:
            server.stop()
        coordinator.close()
        if log is not None:
            log.close()
        if drained != spans or int(spans_total) != spans:
            raise AssertionError("metrics drain completed the wrong number "
                                 "of spans")
        return wall

    # Interleaved repeats: one bare / exporter / instrumented drain per
    # round, best-of over rounds, so slow-host drift cannot masquerade as
    # observability overhead.
    bare_wall = exporter_wall = instr_wall = float("inf")
    for round_index in range(repeats):
        bare_wall = min(bare_wall, drain())
        exporter_wall = min(exporter_wall, drain(with_server=True))
        instr_wall = min(instr_wall, drain(
            log_path=tmp / f"drain{round_index}.log", with_server=True))
    log_events = sum(1 for _ in open(tmp / "drain0.log"))

    # -- scrape latency against the populated post-drain registry
    clock = _ManualClock()
    coordinator = Coordinator(lease_timeout=300.0, clock=clock)
    coordinator.submit_jobs(jobs, spans)
    while True:
        granted = coordinator.request_lease("bench")
        if granted is None:
            break
        lease, shard = granted
        coordinator.complete_lease(lease.lease_id, documents[shard.index])
    server = MetricsServer(coordinator.metrics)
    server.start()
    url = f"http://127.0.0.1:{server.port}/metrics"
    scrapes = max(10, int(50 * scale))

    def run_scrapes():
        start = time.perf_counter()
        payload = b""
        for _ in range(scrapes):
            payload = urllib.request.urlopen(url, timeout=10).read()
        return time.perf_counter() - start, payload

    scrape_wall, payload = _best_of(REPEATS, run_scrapes)
    server.stop()
    coordinator.close()
    if b"coordinator_spans_completed_total" not in payload:
        raise AssertionError("scrape payload is missing the span counter")

    within = exporter_wall <= bare_wall / 0.95 + 0.005
    return {
        "workload": {
            "jobs": len(jobs), "spans": spans, "scrapes": scrapes,
            "repeats_best_of": repeats,
        },
        "bare_wall_seconds": round(bare_wall, 6),
        "bare_ops_per_second": round(2 * spans / bare_wall, 1),
        "exporter_wall_seconds": round(exporter_wall, 6),
        "exporter_ops_per_second": round(2 * spans / exporter_wall, 1),
        "exporter_overhead_percent": round(
            (exporter_wall / bare_wall - 1.0) * 100, 2),
        "overhead_within_5_percent": within,
        "instrumented_wall_seconds": round(instr_wall, 6),
        "instrumented_ops_per_second": round(2 * spans / instr_wall, 1),
        "log_overhead_percent": round(
            (instr_wall / bare_wall - 1.0) * 100, 2),
        "log_events": log_events,
        "scrape_wall_seconds": round(scrape_wall, 6),
        "scrapes_per_second": round(scrapes / scrape_wall, 1),
        "scrape_payload_bytes": len(payload),
        "counters_match_drain": True,
    }


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

BENCHMARKS = {
    "kernel": bench_kernel,
    "tracing": bench_tracing,
    "lfsr": bench_lfsr,
    "schedule": bench_schedule,
    "campaign": bench_campaign,
    "distrib": bench_distrib,
    "store": bench_store,
    "surrogate": bench_surrogate,
    "coordinator": bench_coordinator,
    "metrics": bench_metrics,
}

#: Headline metric of each benchmark (used for the speedup summary).
HEADLINE = {
    "kernel": "timeout_dispatch_per_second",
    "tracing": "enabled_appends_per_second",
    "lfsr": "word_bits_per_second",
    "schedule": "greedy_builds_per_second",
    "campaign": "pool_rows_per_second",
    "distrib": "merge_rows_per_second",
    "store": "store_merge_rows_per_second",
    "surrogate": "batch_candidates_per_second",
    "coordinator": "lease_ops_per_second",
    "metrics": "instrumented_ops_per_second",
}


def _host_info() -> dict:
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
    }


def write_document(out_dir: Path, name: str, label: str, result: dict,
                   baseline_dir: Path | None) -> Path:
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "headline_metric": HEADLINE[name],
        "host": _host_info(),
        "runs": {},
    }
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            document["runs"].update(existing.get("runs", {}))
        except (json.JSONDecodeError, OSError):
            pass
    if baseline_dir is not None:
        baseline_path = baseline_dir / f"BENCH_{name}.json"
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
            document["runs"].update(baseline.get("runs", {}))
    document["runs"][label] = result
    headline = HEADLINE[name]
    if "baseline" in document["runs"] and label != "baseline":
        base = document["runs"]["baseline"].get(headline)
        new = result.get(headline)
        if base and new:
            document["speedup"] = round(new / base, 2)
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("benchmarks", nargs="*",
                        choices=[*BENCHMARKS, []],
                        help="benchmarks to run (default: all)")
    parser.add_argument("--label", default="after",
                        help="run label stored in the JSON (default: after)")
    parser.add_argument("--out", type=Path, default=Path("."),
                        help="directory for the BENCH_*.json files")
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help="merge baseline runs from this directory")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (default 1.0)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke mode: tiny workloads for CI")
    args = parser.parse_args(argv)

    scale = 0.08 if args.quick else args.scale
    names = args.benchmarks or list(BENCHMARKS)
    args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        bench = BENCHMARKS[name]
        if name in ("campaign", "surrogate"):
            result = bench(scale, quick=args.quick)
        else:
            result = bench(scale)
        path = write_document(args.out, name, args.label, result,
                              args.baseline_dir)
        headline = HEADLINE[name]
        print(f"{name}: {headline}={result.get(headline)}  -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
