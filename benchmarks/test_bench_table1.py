"""Benchmark harness for Table I of the paper.

Each benchmark simulates one of the paper's four test schedules on a freshly
built JPEG SoC TLM and reports the simulated metrics (peak/average TAM
utilization, test length) next to the paper's values via the
pytest-benchmark ``extra_info`` mechanism.  The *measured time* of each
benchmark corresponds to the "CPU runtime" column of Table I (the wall-clock
cost of simulating the schedule at transaction level).

Run with::

    pytest benchmarks/test_bench_table1.py --benchmark-only
"""

import pytest

from repro.explore.experiments import PAPER_TABLE1
from repro.soc import JpegSocTlm

#: Benchmarks stay out of the fast CI path (run them with `-m slow`).
pytestmark = pytest.mark.slow

#: Expected qualitative shape of Table I (orderings, not absolute values).
SCHEDULE_NAMES = ["schedule_1", "schedule_2", "schedule_3", "schedule_4"]

_collected_metrics = {}


def _simulate(schedule, tasks):
    soc = JpegSocTlm()
    return soc.run_test_schedule(schedule, tasks)


@pytest.mark.parametrize("schedule_name", SCHEDULE_NAMES)
def test_table1_schedule(benchmark, schedule_name, paper_schedules, paper_tasks):
    """Simulate one Table I scenario and record its metrics."""
    schedule = paper_schedules[schedule_name]
    metrics = benchmark.pedantic(
        _simulate, args=(schedule, paper_tasks), iterations=1, rounds=1,
    )
    _collected_metrics[schedule_name] = metrics

    paper = PAPER_TABLE1[schedule_name]
    benchmark.extra_info["test_length_mcycles"] = round(metrics.test_length_mcycles, 1)
    benchmark.extra_info["paper_test_length_mcycles"] = paper["test_length_mcycles"]
    benchmark.extra_info["peak_tam_utilization"] = round(metrics.peak_tam_utilization, 3)
    benchmark.extra_info["paper_peak_tam_utilization"] = paper["peak_tam_utilization"]
    benchmark.extra_info["avg_tam_utilization"] = round(metrics.avg_tam_utilization, 3)
    benchmark.extra_info["paper_avg_tam_utilization"] = paper["avg_tam_utilization"]
    benchmark.extra_info["paper_cpu_seconds"] = paper["cpu_seconds"]

    # Row-level sanity: the simulation produced a complete, successful run.
    assert metrics.test_length_cycles > 0
    assert metrics.execution is not None
    assert metrics.execution.all_signatures_ok
    assert 0.0 <= metrics.avg_tam_utilization <= metrics.peak_tam_utilization <= 1.0


def test_table1_shape(paper_schedules, paper_tasks):
    """The qualitative shape of Table I holds for the reproduction.

    * test length: schedule 4 < schedule 2 < schedule 3 < schedule 1,
    * average TAM utilization: schedule 4 > schedule 2 > schedule 3 > schedule 1,
    * peak TAM utilization: schedule 4 reaches (close to) 100 % and no
      sequential schedule exceeds it.
    """
    for name in SCHEDULE_NAMES:
        if name not in _collected_metrics:
            _collected_metrics[name] = _simulate(paper_schedules[name], paper_tasks)
    metrics = _collected_metrics

    lengths = {name: metrics[name].test_length_mcycles for name in SCHEDULE_NAMES}
    assert lengths["schedule_4"] < lengths["schedule_2"] < lengths["schedule_3"] \
        < lengths["schedule_1"]

    averages = {name: metrics[name].avg_tam_utilization for name in SCHEDULE_NAMES}
    assert averages["schedule_4"] > averages["schedule_2"] > averages["schedule_3"] \
        > averages["schedule_1"]

    peaks = {name: metrics[name].peak_tam_utilization for name in SCHEDULE_NAMES}
    assert peaks["schedule_4"] >= 0.95
    assert peaks["schedule_4"] >= max(peaks.values()) - 1e-9
    # Concurrent schedules never peak below their sequential counterparts.
    assert peaks["schedule_3"] >= peaks["schedule_1"] - 1e-9
    assert peaks["schedule_4"] >= peaks["schedule_2"] - 1e-9
