#!/usr/bin/env python
"""Fail CI when a benchmark run regresses against the checked-in baselines.

Compares a candidate benchmark pass (``BENCH_*.json`` files produced by
``run_benchmarks.py``) against the artifacts committed at the repository
root.  The comparison is deliberately conservative about what it is willing
to compare:

* Two runs are only compared when their ``workload`` blocks are identical —
  a quick-mode CI pass is matched against the checked-in quick-mode (``ci``)
  run, never against the full-scale numbers, so every metric pair measures
  the same work.
* Metric direction is derived from the key: ``*_per_second`` / ``*speedup`` /
  ``*_reduction`` must not drop, ``*wall_seconds`` must not grow.  Everything
  else numeric (counts, checksums) is informational and skipped.
* Boolean invariants (``bit_exact``, ``same_front``, ``identical``,
  ``bitwise_identical``, ...) get zero tolerance: once true in the baseline
  they must stay true.  These are the scale- and host-independent teeth of
  the check; the throughput tolerance mostly absorbs runner noise.

The tolerance is multiplicative: with ``--tolerance 0.6`` a throughput may
drop to 40% of baseline (and a wall time grow to 1/0.4 = 2.5x) before the
check fails.  Shared CI runners are noisy, so the default is generous —
the check exists to catch order-of-magnitude regressions and broken
invariants, not 5% jitter.

Usage (the CI wiring)::

    python benchmarks/run_benchmarks.py --quick --label ci --out bench-artifacts
    python benchmarks/check_regression.py --candidate-dir bench-artifacts

Exit status is non-zero if any compared metric regresses beyond tolerance,
or if ``--require-baseline`` is given and a candidate file has no
workload-matching baseline run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

#: Result sub-documents that describe the run rather than measure it.
_SKIP_KEYS = frozenset({"workload", "host", "checks", "query_check"})

_HIGHER_SUFFIXES = ("_per_second", "speedup", "_reduction")
_LOWER_SUFFIXES = ("wall_seconds",)


def metric_direction(key: str) -> Optional[int]:
    """+1 if larger is better, -1 if smaller is better, None if not a
    performance metric."""
    if key.endswith(_HIGHER_SUFFIXES):
        return 1
    if key.endswith(_LOWER_SUFFIXES):
        return -1
    return None


def walk_metrics(result: dict, prefix: str = "") -> Iterator[Tuple[str, object]]:
    """Yield (dotted_path, value) for every comparable leaf of *result*."""
    for key, value in result.items():
        if key in _SKIP_KEYS:
            continue
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from walk_metrics(value, prefix=f"{path}.")
        else:
            yield path, value


def pick_baseline_run(document: dict, workload: dict,
                      label_priority: Tuple[str, ...]) -> Optional[Tuple[str, dict]]:
    """The baseline run whose workload matches *workload*, preferring the
    labels in *label_priority*, then file order."""
    runs = document.get("runs", {})
    ordered = [label for label in label_priority if label in runs]
    ordered += [label for label in runs if label not in ordered]
    for label in ordered:
        run = runs[label]
        if run.get("workload") == workload:
            return label, run
    return None


def compare_run(name: str, baseline: dict, candidate: dict,
                tolerance: float) -> List[str]:
    """Regression messages for one benchmark (empty list: no regression)."""
    failures = []
    baseline_metrics = dict(walk_metrics(baseline))
    for path, new_value in walk_metrics(candidate):
        old_value = baseline_metrics.get(path)
        if old_value is None:
            continue
        if isinstance(old_value, bool):
            if old_value and not new_value:
                failures.append(
                    f"{name}: invariant {path} was true in the baseline "
                    f"and is now {new_value!r}")
            continue
        if not isinstance(old_value, (int, float)) or \
                not isinstance(new_value, (int, float)):
            continue
        direction = metric_direction(path)
        if direction is None or old_value <= 0:
            continue
        floor = 1.0 - tolerance
        if direction > 0:
            limit = old_value * floor
            if new_value < limit:
                failures.append(
                    f"{name}: {path} dropped {old_value:g} -> {new_value:g} "
                    f"(limit {limit:g} at tolerance {tolerance:g})")
        else:
            limit = old_value / floor if floor > 0 else float("inf")
            if new_value > limit:
                failures.append(
                    f"{name}: {path} grew {old_value:g} -> {new_value:g} "
                    f"(limit {limit:g} at tolerance {tolerance:g})")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="directory with the checked-in BENCH_*.json "
                             "baselines (default: repository root)")
    parser.add_argument("--candidate-dir", type=Path, required=True,
                        help="directory with the freshly measured "
                             "BENCH_*.json files")
    parser.add_argument("--candidate-label", default="ci",
                        help="run label of the candidate pass (default: ci)")
    parser.add_argument("--baseline-labels", nargs="*", default=("ci", "after"),
                        help="baseline label preference order "
                             "(default: ci after)")
    parser.add_argument("--tolerance", type=float, default=0.6,
                        help="allowed fractional throughput drop before the "
                             "check fails (default: 0.6, i.e. 40%% of "
                             "baseline still passes)")
    parser.add_argument("--require-baseline", action="store_true",
                        help="fail when a candidate file has no workload-"
                             "matching baseline run (default: skip with a "
                             "note)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("tolerance must be in [0, 1)")

    candidates = sorted(args.candidate_dir.glob("BENCH_*.json"))
    if not candidates:
        print(f"no BENCH_*.json files in {args.candidate_dir}",
              file=sys.stderr)
        return 2

    failures: List[str] = []
    skipped = 0
    compared = 0
    for candidate_path in candidates:
        name = candidate_path.stem.removeprefix("BENCH_")
        candidate_doc = json.loads(candidate_path.read_text())
        candidate_run = candidate_doc.get("runs", {}).get(args.candidate_label)
        if candidate_run is None:
            print(f"{name}: candidate has no run labelled "
                  f"{args.candidate_label!r}; skipped")
            skipped += 1
            continue
        baseline_path = args.baseline_dir / candidate_path.name
        if not baseline_path.exists():
            print(f"{name}: no checked-in baseline; skipped "
                  "(new benchmark)")
            skipped += 1
            continue
        baseline_doc = json.loads(baseline_path.read_text())
        match = pick_baseline_run(baseline_doc, candidate_run.get("workload"),
                                  tuple(args.baseline_labels))
        if match is None:
            message = (f"{name}: no baseline run with a matching workload "
                       "block; skipped")
            if args.require_baseline:
                failures.append(message)
            else:
                print(message)
                skipped += 1
            continue
        label, baseline_run = match
        run_failures = compare_run(name, baseline_run, candidate_run,
                                   args.tolerance)
        state = "FAIL" if run_failures else "ok"
        print(f"{name}: compared against baseline run {label!r} "
              f"[{state}]")
        failures.extend(run_failures)
        compared += 1

    print(f"\n{compared} benchmark(s) compared, {skipped} skipped, "
          f"{len(failures)} regression(s)")
    for failure in failures:
        print(f"  REGRESSION {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
