"""Benchmark harness for the TLM-vs-RTL speed claim of Section IV.

The paper states that ~300 million clock cycles simulate in under seven
minutes at transaction level while RTL simulation of the processor core alone
exceeds two days — at least three orders of magnitude.  These benchmarks
measure both abstraction levels in this code base (a bit-parallel gate-level
simulator versus the SoC TLM) and assert that the reproduction preserves the
multi-order-of-magnitude gap.

Run with::

    pytest benchmarks/test_bench_speedup.py --benchmark-only
"""

import pytest

from repro.explore.speedup import run_speed_comparison
from repro.rtl import LogicSimulator, SyntheticCoreSpec, generate_netlist
from repro.soc import JpegSocTlm

#: Benchmarks stay out of the fast CI path (run them with `-m slow`).
pytestmark = pytest.mark.slow

GATE_LEVEL_CYCLES = 200


@pytest.fixture(scope="module")
def gate_level_core():
    spec = SyntheticCoreSpec(name="bench_core", flip_flops=600, gates=3_000, seed=3)
    return generate_netlist(spec)


def test_gate_level_simulation_speed(benchmark, gate_level_core):
    """Cycles-per-second achievable by per-cycle gate-level simulation."""
    def run():
        simulator = LogicSimulator(gate_level_core)
        simulator.run_cycles(GATE_LEVEL_CYCLES)
        return simulator

    simulator = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_cycles"] = simulator.simulated_cycles
    benchmark.extra_info["gate_evaluations"] = simulator.gate_evaluations
    assert simulator.simulated_cycles == GATE_LEVEL_CYCLES


def test_tlm_simulation_speed(benchmark, paper_schedules, paper_tasks):
    """Cycles-per-second achievable by the transaction level model."""
    def run():
        soc = JpegSocTlm()
        return soc.run_test_schedule(paper_schedules["schedule_4"], paper_tasks)

    metrics = benchmark.pedantic(run, iterations=1, rounds=1)
    benchmark.extra_info["simulated_cycles"] = metrics.test_length_cycles
    benchmark.extra_info["simulated_activations"] = metrics.simulated_activations
    assert metrics.test_length_cycles > 100_000_000


def test_speedup_is_orders_of_magnitude(benchmark):
    """The TLM simulates SoC clock cycles >= 1000x faster than gate level."""
    result = benchmark.pedantic(
        run_speed_comparison,
        kwargs={"gate_level_cycles": GATE_LEVEL_CYCLES},
        iterations=1, rounds=1,
    )
    benchmark.extra_info["speedup"] = round(result.speedup)
    benchmark.extra_info["gate_level_cycles_per_second"] = round(
        result.gate_level_cycles_per_second, 1
    )
    benchmark.extra_info["tlm_cycles_per_second"] = round(
        result.tlm_cycles_per_second
    )
    benchmark.extra_info["gate_level_projection_hours"] = round(
        result.gate_level_projection_seconds / 3600.0, 1
    )
    benchmark.extra_info["tlm_projection_seconds"] = round(
        result.tlm_projection_seconds, 1
    )
    # The paper reports >= 3 orders of magnitude; require at least 3 here.
    assert result.speedup >= 1_000
    # And the TLM must be able to cover the paper's 300 Mcycles in well under
    # the paper's seven minutes on this machine.
    assert result.tlm_projection_seconds < 420
