#!/usr/bin/env python3
"""From test strategy to DfT infrastructure and schedule (Figure 1).

The paper's Figure 1 shows the refinement from design requirements via test
strategies to concrete DfT infrastructure.  This example walks that path for
the JPEG SoC: it lists the test strategy per core, shows which infrastructure
blocks implement it, lets the scheduler build schedules under a power budget,
and validates the generated schedule against the paper's hand-written one by
simulation.  Run it with::

    python examples/test_strategy_mapping.py
"""

from repro.explore import format_table
from repro.explore.sweeps import schedule_exploration
from repro.schedule import PowerModel, TestTimeEstimator
from repro.schedule.scheduler import greedy_concurrent_schedule
from repro.soc import (
    build_core_descriptions,
    build_platform_parameters,
    build_test_tasks,
    MEMORY_WORDS,
)
from repro.soc.testplan import MEMORY

#: Which DfT infrastructure blocks implement each test kind (Figure 1 mapping).
INFRASTRUCTURE_FOR_KIND = {
    "logic_bist": ["test wrapper (INTEST_BIST)", "core-internal LFSR/MISR",
                   "test controller", "TAM (status polling only)"],
    "external_scan": ["test wrapper (INTEST_SCAN)", "EBI", "ATE link",
                      "TAM (stimulus streaming)", "compactor"],
    "external_scan_compressed": ["test wrapper (INTEST_COMPRESSED)",
                                 "decompressor", "compactor", "EBI",
                                 "ATE link", "TAM"],
    "memory_bist_controller": ["test controller", "TAM (march operations)",
                               "memory array"],
    "memory_march_processor": ["embedded processor (software march)",
                               "system bus / TAM", "memory array"],
}


def main() -> None:
    tasks = build_test_tasks()
    descriptions = build_core_descriptions()
    platform = build_platform_parameters()
    estimator = TestTimeEstimator(descriptions, platform,
                                  memory_words={MEMORY: MEMORY_WORDS})
    estimates = estimator.estimate_all(tasks)

    print("Test strategy -> DfT infrastructure mapping (Figure 1)\n")
    rows = []
    for name in sorted(tasks):
        task = tasks[name]
        rows.append({
            "test": name,
            "core": task.core,
            "kind": task.kind.value,
            "est_mcycles": estimates[name] / 1e6,
            "infrastructure": ", ".join(INFRASTRUCTURE_FOR_KIND[task.kind.value]),
        })
    print(format_table(
        rows, ["test", "core", "kind", "est_mcycles"],
        headers={"test": "Test sequence", "core": "Core", "kind": "Strategy",
                 "est_mcycles": "Estimate [Mcycles]"},
    ))
    print()
    for row in rows:
        print(f"  {row['test']}: {row['infrastructure']}")

    print("\nGenerating a schedule under a peak power budget of 6.0 units ...\n")
    power_model = PowerModel(budget=6.0)
    generated = greedy_concurrent_schedule("generated_greedy", tasks, estimates,
                                           power_model=power_model)
    print(f"  {generated}")
    print(f"  estimated makespan: "
          f"{estimator.estimate_schedule_cycles(generated, tasks) / 1e6:.0f} Mcycles")
    print(f"  peak power        : "
          f"{power_model.schedule_peak_power(generated, tasks):.1f} units")

    print("\nSimulating hand-written and generated schedules "
          "(this takes a few seconds) ...\n")
    comparisons = schedule_exploration(power_budget=6.0)
    rows = []
    for comparison in comparisons:
        rows.append({
            "schedule": comparison.schedule.name,
            "estimated_mcycles": comparison.estimated_cycles / 1e6,
            "simulated_mcycles": comparison.metrics.test_length_mcycles,
            "peak_tam": f"{comparison.metrics.peak_tam_utilization:.0%}",
            "peak_power": comparison.metrics.peak_power,
        })
    print(format_table(
        rows,
        ["schedule", "estimated_mcycles", "simulated_mcycles", "peak_tam",
         "peak_power"],
        headers={"schedule": "Schedule",
                 "estimated_mcycles": "Estimated [Mcycles]",
                 "simulated_mcycles": "Simulated [Mcycles]",
                 "peak_tam": "Peak TAM", "peak_power": "Peak power"},
    ))


if __name__ == "__main__":
    main()
