#!/usr/bin/env python3
"""Mission-mode simulation of the JPEG encoder SoC.

The same TLM that is used for test exploration also runs the SoC's mission
function: the processor core moves an RGB image through the memory, the color
conversion core and the DCT core over the system bus and performs the entropy
coding in software.  The resulting bitstream is compared against the pure
software reference encoder and decoded again to report the reconstruction
quality.  Run it with::

    python examples/jpeg_soc_functional.py
"""

import numpy as np

from repro.soc import JpegSocTlm
from repro.soc.jpeg import JpegEncoder, psnr


def make_test_image(size: int = 32, seed: int = 7) -> np.ndarray:
    """A deterministic synthetic RGB image with smooth and textured regions."""
    rng = np.random.default_rng(seed)
    y_coords, x_coords = np.mgrid[0:size, 0:size]
    red = (128 + 100 * np.sin(x_coords / 5.0)).astype(np.float64)
    green = (128 + 100 * np.cos(y_coords / 7.0)).astype(np.float64)
    blue = rng.uniform(0, 255, size=(size, size))
    image = np.stack([red, green, blue], axis=-1)
    return np.clip(image, 0, 255).astype(np.uint8)


def main() -> None:
    image = make_test_image()
    soc = JpegSocTlm()

    encoded, cycles = soc.run_functional_encode(image, quality=75)
    reference = JpegEncoder(quality=75).encode(image)

    print("JPEG encoder SoC, mission mode")
    print(f"  image size            : {image.shape[1]}x{image.shape[0]} RGB")
    print(f"  simulated clock cycles: {cycles:,}")
    print(f"  compressed size       : {encoded.compressed_bits:,} bits "
          f"(ratio {encoded.compression_ratio:.1f}x)")
    print(f"  matches software ref. : {encoded.bitstream == reference.bitstream}")

    decoded = JpegEncoder(quality=75).decode(encoded)
    quality_db = psnr(image.astype(np.float64), decoded)
    print(f"  reconstruction PSNR   : {quality_db:.1f} dB")

    print(f"  DCT blocks processed  : {soc.dct.blocks_processed}")
    print(f"  pixels color-converted: {soc.color_conversion.pixels_processed}")
    print(f"  bus transactions      : {soc.bus.transaction_count}")


if __name__ == "__main__":
    main()
