#!/usr/bin/env python3
"""Test design space exploration on the JPEG encoder SoC (Table I).

Simulates the paper's four test schedules on the SoC TLM, prints the
reproduced Table I next to the paper's values, and shows the schedule
validation reports (coarse scheduler estimate versus simulated length).
Run it with::

    python examples/jpeg_soc_exploration.py
"""

from repro.explore import format_table1, run_table1
from repro.explore.speedup import run_speed_comparison


def main() -> None:
    print("Reproducing Table I (this simulates all four schedules) ...\n")
    results = run_table1()
    print(format_table1(results))

    print("\nSchedule validation (coarse estimate vs. simulation):\n")
    for result in results:
        print(result.validation.summary())
        print()

    print("Abstraction-level speed comparison (Section IV claim):\n")
    speedup = run_speed_comparison()
    print(speedup.summary())


if __name__ == "__main__":
    main()
