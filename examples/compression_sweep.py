#!/usr/bin/env python3
"""Exploration sweep: test data compression ratio of the processor test.

The paper motivates TLM-based exploration with the large number of design
decisions left to the test engineer, test data compression among them.  This
example sweeps the compression ratio of the deterministic processor test
(test sequence 3) from 1x (no compression) to 1000x and reports how test
length and TAM utilization respond, showing where the bottleneck moves from
the ATE link to the TAM and finally to the core-internal scan chains.
Run it with::

    python examples/compression_sweep.py
"""

from repro.explore import format_table
from repro.explore.sweeps import compression_ratio_sweep, tam_width_sweep


def main() -> None:
    print("Compression-ratio sweep of the deterministic processor test\n")
    points = compression_ratio_sweep(ratios=(1, 2, 5, 10, 50, 100, 1000))
    rows = []
    for point in points:
        rows.append({
            "ratio": f"{point.value:g}x",
            "length_mcycles": point.metrics.test_length_mcycles,
            "peak_tam": f"{point.metrics.peak_tam_utilization:.0%}",
            "avg_tam": f"{point.metrics.avg_tam_utilization:.0%}",
        })
    print(format_table(
        rows, ["ratio", "length_mcycles", "peak_tam", "avg_tam"],
        headers={"ratio": "Compression", "length_mcycles": "Length [Mcycles]",
                 "peak_tam": "Peak TAM", "avg_tam": "Avg TAM"},
    ))

    print("\nTAM width sweep for schedule 4\n")
    width_points = tam_width_sweep(widths=(8, 16, 32, 64))
    rows = []
    for point in width_points:
        rows.append({
            "width": f"{point.value:.0f} bit",
            "length_mcycles": point.metrics.test_length_mcycles,
            "peak_tam": f"{point.metrics.peak_tam_utilization:.0%}",
            "avg_tam": f"{point.metrics.avg_tam_utilization:.0%}",
        })
    print(format_table(
        rows, ["width", "length_mcycles", "peak_tam", "avg_tam"],
        headers={"width": "TAM width", "length_mcycles": "Length [Mcycles]",
                 "peak_tam": "Peak TAM", "avg_tam": "Avg TAM"},
    ))


if __name__ == "__main__":
    main()
