#!/usr/bin/env python3
"""Quickstart: build a tiny test architecture from scratch and simulate it.

This example mirrors the paper's Figures 2 and 3 at the smallest useful
scale: one core with a CTL description, an automatically generated IEEE
1500-style test wrapper, a bus TAM, a configuration scan bus and an external
test streamed from an ATE through the EBI.  Run it with::

    python examples/quickstart.py
"""

from repro.kernel import NS, Simulator, Clock, SimTime, TransactionTracer
from repro.dft import (
    AteLink,
    Compactor,
    ConfigurationScanBus,
    CoreTestDescription,
    ExternalBusInterface,
    ExternalTestTiming,
    TamChannel,
    TamPayload,
    TamUtilizationMonitor,
    WrapperMode,
    generate_wrapper,
)


def main() -> None:
    sim = Simulator("quickstart")
    clock = Clock(sim, "clk", SimTime(10, NS))          # 100 MHz system clock
    tracer = TransactionTracer()

    # --- the TAM (Figure 2: TAM_channel implements TAM_IF) --------------------
    tam = TamChannel(sim, "tam", width_bits=32, clock=clock, tracer=tracer)
    ate_link = AteLink(sim, "ate_link", width_bits=16, clock=clock, tracer=tracer)
    config_bus = ConfigurationScanBus(sim, "config_bus", clock=clock, tracer=tracer)

    # --- a core described in CTL style and its generated wrapper (Figure 3) ----
    core_description = CoreTestDescription.describe(
        "demo_core", chain_count=8, scan_cells=8 * 200, has_logic_bist=False,
    )
    wrapper = generate_wrapper(sim, core_description, config_bus=config_bus,
                               tracer=tracer)
    tam.bind_slave(wrapper, base_address=0x1000_0000, size=0x1000)

    compactor = Compactor(sim, "compactor", compaction_ratio=1000.0)
    config_bus.register(compactor.config_register)

    ebi = ExternalBusInterface(sim, "ebi", ate_link=ate_link, tam=tam)
    config_bus.register(ebi.config_register)

    # --- the ATE-side test flow -------------------------------------------------
    def external_test():
        # Configure the wrapper into internal scan test mode via the
        # configuration scan bus, then enable the EBI and the compactor.
        yield from config_bus.configure(
            wrapper.wir_register.name,
            wrapper.wir.encode(WrapperMode.INTEST_SCAN), initiator="ate",
        )
        yield from config_bus.configure(ebi.config_register.name, 1, initiator="ate")
        yield from config_bus.configure(compactor.config_register.name, 1,
                                        initiator="ate")

        timing = ExternalTestTiming(
            ate_bits_per_pattern=core_description.stimulus_bits_per_pattern(),
            ate_response_bits_per_pattern=compactor.misr.width,
            tam_bits_per_pattern=core_description.stimulus_bits_per_pattern(),
            shift_cycles_per_pattern=core_description.shift_cycles_per_pattern(),
        )
        stats = yield from ebi.stream_patterns(
            initiator="ate", address=0x1000_0000, patterns=500, timing=timing,
            wrapper=wrapper, compactor=compactor,
        )
        print(f"streamed {stats['patterns']} patterns in {stats['bursts']} bursts")

    sim.spawn(external_test(), name="ate_flow")
    end_time = sim.run()

    # --- results ------------------------------------------------------------------
    cycles = clock.cycles_between(SimTime(0), end_time)
    monitor = TamUtilizationMonitor(tracer, "tam", clock)
    print(f"simulated time          : {end_time} ({cycles:,} clock cycles)")
    print(f"patterns applied        : {wrapper.patterns_applied}")
    print(f"compactor signature     : {compactor.signature:#010x}")
    print(f"average TAM utilization : {monitor.average_utilization():.1%}")
    print(f"wrapper mode            : {wrapper.mode.name}")

    # The untimed TAM_IF view of Figure 2 also works directly on the wrapper:
    payload = TamPayload.write_read(0x1000_0000, data_bits=1600, patterns=1)
    wrapper.write_read(payload)
    print(f"after one more write_read transaction: "
          f"{wrapper.patterns_applied} patterns applied")


if __name__ == "__main__":
    main()
