"""Setup shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments whose setuptools lacks the ``wheel`` package (legacy
``setup.py develop`` code path).
"""

from setuptools import setup

setup()
