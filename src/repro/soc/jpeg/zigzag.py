"""Zigzag scan and run-length coding of quantized DCT blocks."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

BLOCK_SIZE = 8


def zigzag_order(size: int = BLOCK_SIZE) -> List[Tuple[int, int]]:
    """The (row, col) visit order of the zigzag scan for a size x size block."""
    order = []
    for diagonal in range(2 * size - 1):
        indices = []
        for row in range(size):
            col = diagonal - row
            if 0 <= col < size:
                indices.append((row, col))
        if diagonal % 2 == 0:
            indices.reverse()
        order.extend(indices)
    return order


_ZIGZAG = zigzag_order()


def to_zigzag(block: np.ndarray) -> List[int]:
    """Flatten an 8x8 block into zigzag order."""
    block = np.asarray(block)
    if block.shape != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError("expected an 8x8 block")
    return [int(block[row, col]) for row, col in _ZIGZAG]


def from_zigzag(values: Sequence[int]) -> np.ndarray:
    """Rebuild an 8x8 block from zigzag-ordered values."""
    if len(values) != BLOCK_SIZE * BLOCK_SIZE:
        raise ValueError("expected 64 zigzag values")
    block = np.zeros((BLOCK_SIZE, BLOCK_SIZE), dtype=np.int32)
    for value, (row, col) in zip(values, _ZIGZAG):
        block[row, col] = value
    return block


def run_length_encode(zigzag_values: Sequence[int]) -> List[Tuple[int, int]]:
    """Run-length encode the AC part of a zigzag sequence.

    The first value (DC) is emitted as ``(0, dc)``; every following entry is
    ``(zero_run, value)`` and the special pair ``(0, 0)`` terminates the block
    (end-of-block), as in baseline JPEG.
    """
    if not zigzag_values:
        raise ValueError("cannot encode an empty sequence")
    encoded: List[Tuple[int, int]] = [(0, int(zigzag_values[0]))]
    run = 0
    for value in zigzag_values[1:]:
        value = int(value)
        if value == 0:
            run += 1
            continue
        while run > 15:
            encoded.append((15, 0))  # ZRL: run of sixteen zeros
            run -= 16
        encoded.append((run, value))
        run = 0
    encoded.append((0, 0))  # end of block
    return encoded


def run_length_decode(pairs: Sequence[Tuple[int, int]],
                      length: int = BLOCK_SIZE * BLOCK_SIZE) -> List[int]:
    """Invert :func:`run_length_encode`."""
    if not pairs:
        raise ValueError("cannot decode an empty sequence")
    values = [int(pairs[0][1])]
    for run, value in pairs[1:]:
        if (run, value) == (0, 0):
            break
        if (run, value) == (15, 0):
            values.extend([0] * 16)
            continue
        values.extend([0] * run)
        values.append(int(value))
    values.extend([0] * (length - len(values)))
    return values[:length]
