"""Huffman entropy coding.

A self-contained Huffman codec used by the JPEG encoder model: code tables
are built from the symbol statistics of the image being encoded (the JPEG
standard permits custom tables), the encoder emits a bitstring, and the
decoder reproduces the exact symbol sequence.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple


class HuffmanCodec:
    """Huffman encoder/decoder for an arbitrary (hashable) symbol alphabet."""

    def __init__(self, code_table: Dict[Hashable, str]):
        if not code_table:
            raise ValueError("code table cannot be empty")
        self.code_table = dict(code_table)
        self._decode_table = {code: symbol for symbol, code in code_table.items()}
        if len(self._decode_table) != len(self.code_table):
            raise ValueError("code table contains duplicate codes")

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_symbols(cls, symbols: Iterable[Hashable]) -> "HuffmanCodec":
        """Build a codec from the frequency statistics of *symbols*."""
        frequencies = Counter(symbols)
        if not frequencies:
            raise ValueError("cannot build a Huffman code from no symbols")
        return cls.from_frequencies(frequencies)

    @classmethod
    def from_frequencies(cls, frequencies: Dict[Hashable, int]) -> "HuffmanCodec":
        """Build a codec from a symbol -> count mapping."""
        items = sorted(frequencies.items(), key=lambda item: repr(item[0]))
        if len(items) == 1:
            symbol = items[0][0]
            return cls({symbol: "0"})
        heap: List[Tuple[int, int, object]] = []
        for order, (symbol, count) in enumerate(items):
            if count <= 0:
                raise ValueError("symbol frequencies must be positive")
            heapq.heappush(heap, (count, order, symbol))
        next_order = len(items)
        # Internal tree nodes are represented as two-element lists so they can
        # never be confused with symbols (which may themselves be tuples,
        # e.g. the (run, value) pairs of the JPEG run-length coder).
        while len(heap) > 1:
            count_a, _, node_a = heapq.heappop(heap)
            count_b, _, node_b = heapq.heappop(heap)
            merged = [node_a, node_b]
            heapq.heappush(heap, (count_a + count_b, next_order, merged))
            next_order += 1
        _, _, root = heap[0]
        table: Dict[Hashable, str] = {}

        def walk(node, prefix: str) -> None:
            if isinstance(node, list):
                walk(node[0], prefix + "0")
                walk(node[1], prefix + "1")
            else:
                table[node] = prefix or "0"

        walk(root, "")
        return cls(table)

    # -- coding ------------------------------------------------------------------
    def encode(self, symbols: Sequence[Hashable]) -> str:
        """Encode a symbol sequence into a bitstring ('0'/'1' characters)."""
        try:
            return "".join(self.code_table[symbol] for symbol in symbols)
        except KeyError as error:
            raise KeyError(f"symbol {error.args[0]!r} is not in the code table")

    def decode(self, bits: str) -> List[Hashable]:
        """Decode a bitstring produced by :meth:`encode`."""
        symbols = []
        current = ""
        for bit in bits:
            if bit not in "01":
                raise ValueError(f"invalid bit {bit!r} in Huffman bitstream")
            current += bit
            symbol = self._decode_table.get(current)
            if symbol is not None:
                symbols.append(symbol)
                current = ""
        if current:
            raise ValueError("bitstream ends in the middle of a code word")
        return symbols

    # -- statistics -----------------------------------------------------------------
    def encoded_length(self, symbols: Sequence[Hashable]) -> int:
        """Length in bits of the encoded sequence."""
        return sum(len(self.code_table[symbol]) for symbol in symbols)

    def average_code_length(self, frequencies: Dict[Hashable, int]) -> float:
        """Average code length in bits per symbol for the given statistics."""
        total = sum(frequencies.values())
        if total == 0:
            return 0.0
        return sum(
            len(self.code_table[symbol]) * count
            for symbol, count in frequencies.items()
        ) / total

    def __len__(self) -> int:
        return len(self.code_table)
