"""Functional JPEG encoding pipeline.

The mission mode of the case-study SoC is JPEG encoding; this package
implements the algorithmic substance (color conversion, 8x8 DCT, quantization,
zigzag/run-length coding and Huffman entropy coding) so that the TLM cores in
:mod:`repro.soc.cores` perform real work and the functional example produces a
real, decodable bitstream representation.
"""

from repro.soc.jpeg.color import rgb_to_ycbcr, ycbcr_to_rgb
from repro.soc.jpeg.dct import dct_2d, idct_2d, blockwise
from repro.soc.jpeg.quantize import (
    LUMINANCE_TABLE,
    CHROMINANCE_TABLE,
    quality_scaled_table,
    quantize_block,
    dequantize_block,
)
from repro.soc.jpeg.zigzag import zigzag_order, to_zigzag, from_zigzag, run_length_encode, run_length_decode
from repro.soc.jpeg.huffman import HuffmanCodec
from repro.soc.jpeg.encoder import EncodedImage, JpegEncoder, psnr

__all__ = [
    "CHROMINANCE_TABLE",
    "EncodedImage",
    "HuffmanCodec",
    "JpegEncoder",
    "LUMINANCE_TABLE",
    "blockwise",
    "dct_2d",
    "dequantize_block",
    "from_zigzag",
    "idct_2d",
    "psnr",
    "quality_scaled_table",
    "quantize_block",
    "rgb_to_ycbcr",
    "run_length_decode",
    "run_length_encode",
    "to_zigzag",
    "ycbcr_to_rgb",
    "zigzag_order",
]
