"""Baseline JPEG-style encoder built from the pipeline stages.

This is the pure-software reference implementation of the mission function of
the case-study SoC.  The TLM cores perform the same stages (color conversion
and DCT/quantization) in "hardware"; the processor core runs the entropy
coding in "software".  Encoding is lossy exactly like JPEG; a decoder is
provided so tests can check the reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.soc.jpeg.color import rgb_to_ycbcr, ycbcr_to_rgb
from repro.soc.jpeg.dct import BLOCK_SIZE, blockwise, dct_2d, idct_2d
from repro.soc.jpeg.huffman import HuffmanCodec
from repro.soc.jpeg.quantize import (
    CHROMINANCE_TABLE,
    LUMINANCE_TABLE,
    dequantize_block,
    quality_scaled_table,
    quantize_block,
)
from repro.soc.jpeg.zigzag import run_length_encode, run_length_decode, to_zigzag, from_zigzag

#: Channel index -> human readable name.
CHANNEL_NAMES = ("Y", "Cb", "Cr")


@dataclass
class EncodedImage:
    """The result of encoding an image."""

    width: int
    height: int
    quality: int
    #: Per channel: list of (block_row, block_col, run-length pairs).
    channel_blocks: Dict[str, List[Tuple[int, int, List[Tuple[int, int]]]]]
    #: Huffman bitstream over all run-length pairs.
    bitstream: str
    #: The Huffman code table used for the bitstream.
    code_table: Dict[Tuple[int, int], str]
    quant_tables: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def compressed_bits(self) -> int:
        return len(self.bitstream)

    @property
    def raw_bits(self) -> int:
        return self.width * self.height * 3 * 8

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bits == 0:
            return float("inf")
        return self.raw_bits / self.compressed_bits


class JpegEncoder:
    """Encode/decode RGB images with a baseline-JPEG style pipeline."""

    def __init__(self, quality: int = 75):
        if not 1 <= quality <= 100:
            raise ValueError("quality must be between 1 and 100")
        self.quality = quality
        self.luminance_table = quality_scaled_table(LUMINANCE_TABLE, quality)
        self.chrominance_table = quality_scaled_table(CHROMINANCE_TABLE, quality)

    def _table_for(self, channel: int) -> np.ndarray:
        return self.luminance_table if channel == 0 else self.chrominance_table

    # -- encoding ---------------------------------------------------------------
    def encode_blocks(self, image: np.ndarray) -> Dict[str, List[Tuple[int, int, List[Tuple[int, int]]]]]:
        """Run the pipeline up to run-length coding (no entropy coding)."""
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError("expected an HxWx3 RGB image")
        ycbcr = rgb_to_ycbcr(image)
        channel_blocks: Dict[str, List[Tuple[int, int, List[Tuple[int, int]]]]] = {}
        for channel in range(3):
            plane = ycbcr[:, :, channel] - 128.0
            table = self._table_for(channel)
            blocks = []
            for row, col, block in blockwise(plane):
                coefficients = dct_2d(block)
                quantized = quantize_block(coefficients, table)
                pairs = run_length_encode(to_zigzag(quantized))
                blocks.append((row, col, pairs))
            channel_blocks[CHANNEL_NAMES[channel]] = blocks
        return channel_blocks

    def encode(self, image: np.ndarray) -> EncodedImage:
        """Encode an RGB image; returns the full :class:`EncodedImage`."""
        image = np.asarray(image)
        channel_blocks = self.encode_blocks(image)
        symbols: List[Tuple[int, int]] = []
        for channel_name in CHANNEL_NAMES:
            for _, _, pairs in channel_blocks[channel_name]:
                symbols.extend(pairs)
        codec = HuffmanCodec.from_symbols(symbols)
        bitstream = codec.encode(symbols)
        return EncodedImage(
            width=image.shape[1], height=image.shape[0], quality=self.quality,
            channel_blocks=channel_blocks, bitstream=bitstream,
            code_table=codec.code_table,
            quant_tables={"Y": self.luminance_table,
                          "Cb": self.chrominance_table,
                          "Cr": self.chrominance_table},
        )

    # -- decoding -------------------------------------------------------------------
    def decode(self, encoded: EncodedImage) -> np.ndarray:
        """Reconstruct an RGB image from an :class:`EncodedImage`."""
        height, width = encoded.height, encoded.width
        padded_h = (height + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE
        padded_w = (width + BLOCK_SIZE - 1) // BLOCK_SIZE * BLOCK_SIZE
        planes = np.zeros((padded_h, padded_w, 3))
        for channel, channel_name in enumerate(CHANNEL_NAMES):
            table = self._table_for(channel)
            for row, col, pairs in encoded.channel_blocks[channel_name]:
                zigzag_values = run_length_decode(pairs)
                quantized = from_zigzag(zigzag_values)
                coefficients = dequantize_block(quantized, table)
                planes[row:row + BLOCK_SIZE, col:col + BLOCK_SIZE, channel] = (
                    idct_2d(coefficients) + 128.0
                )
        ycbcr = planes[:height, :width, :]
        return ycbcr_to_rgb(ycbcr)

    def roundtrip_error(self, image: np.ndarray) -> float:
        """PSNR of encoding followed by decoding (higher is better)."""
        encoded = self.encode(image)
        decoded = self.decode(encoded)
        return psnr(np.asarray(image, dtype=np.float64), decoded)


def psnr(reference: np.ndarray, reconstruction: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB between two images."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstruction = np.asarray(reconstruction, dtype=np.float64)
    if reference.shape != reconstruction.shape:
        raise ValueError("images must have identical shapes")
    mse = float(np.mean((reference - reconstruction) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)
