"""8x8 forward and inverse discrete cosine transform."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

BLOCK_SIZE = 8


def _dct_matrix(size: int = BLOCK_SIZE) -> np.ndarray:
    """Orthonormal DCT-II matrix."""
    matrix = np.zeros((size, size))
    for k in range(size):
        for n in range(size):
            matrix[k, n] = np.cos(np.pi * (2 * n + 1) * k / (2 * size))
    matrix[0, :] *= np.sqrt(1.0 / size)
    matrix[1:, :] *= np.sqrt(2.0 / size)
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def dct_2d(block: np.ndarray) -> np.ndarray:
    """Forward 8x8 2-D DCT of a block (values centred around zero)."""
    block = np.asarray(block, dtype=np.float64)
    if block.shape != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(f"expected an {BLOCK_SIZE}x{BLOCK_SIZE} block")
    return _DCT @ block @ _DCT.T


def idct_2d(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 8x8 2-D DCT."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    if coefficients.shape != (BLOCK_SIZE, BLOCK_SIZE):
        raise ValueError(f"expected an {BLOCK_SIZE}x{BLOCK_SIZE} coefficient block")
    return _IDCT @ coefficients @ _IDCT.T


def blockwise(plane: np.ndarray,
              block_size: int = BLOCK_SIZE) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Iterate over *plane* in ``block_size`` x ``block_size`` tiles.

    The plane is padded by edge replication when its dimensions are not
    multiples of the block size (the standard JPEG behaviour).
    """
    plane = np.asarray(plane, dtype=np.float64)
    height, width = plane.shape
    padded_h = (height + block_size - 1) // block_size * block_size
    padded_w = (width + block_size - 1) // block_size * block_size
    if (padded_h, padded_w) != (height, width):
        plane = np.pad(plane, ((0, padded_h - height), (0, padded_w - width)),
                       mode="edge")
    for row in range(0, padded_h, block_size):
        for col in range(0, padded_w, block_size):
            yield row, col, plane[row:row + block_size, col:col + block_size]
