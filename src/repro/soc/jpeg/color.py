"""RGB <-> YCbCr color conversion (ITU-R BT.601, as used by JPEG)."""

from __future__ import annotations

import numpy as np

#: BT.601 conversion matrix from RGB to YCbCr.
_RGB_TO_YCBCR = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168736, -0.331264, 0.5],
        [0.5, -0.418688, -0.081312],
    ]
)

_YCBCR_TO_RGB = np.linalg.inv(_RGB_TO_YCBCR)


def rgb_to_ycbcr(image: np.ndarray) -> np.ndarray:
    """Convert an ``HxWx3`` RGB image (0..255) to YCbCr (0..255).

    The result is float64; Y occupies channel 0, Cb channel 1, Cr channel 2,
    with the chroma channels offset by 128 as in JFIF.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an HxWx3 RGB image")
    flat = image.reshape(-1, 3)
    converted = flat @ _RGB_TO_YCBCR.T
    converted[:, 1:] += 128.0
    return converted.reshape(image.shape)


def ycbcr_to_rgb(image: np.ndarray) -> np.ndarray:
    """Convert an ``HxWx3`` YCbCr image back to RGB (clipped to 0..255)."""
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError("expected an HxWx3 YCbCr image")
    flat = image.reshape(-1, 3).copy()
    flat[:, 1:] -= 128.0
    converted = flat @ _YCBCR_TO_RGB.T
    return np.clip(converted.reshape(image.shape), 0.0, 255.0)
