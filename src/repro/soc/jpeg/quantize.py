"""JPEG quantization tables and block quantization."""

from __future__ import annotations

import numpy as np

#: Annex K luminance quantization table.
LUMINANCE_TABLE = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=np.float64)

#: Annex K chrominance quantization table.
CHROMINANCE_TABLE = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
], dtype=np.float64)


def quality_scaled_table(base_table: np.ndarray, quality: int) -> np.ndarray:
    """Scale a quantization table for a quality factor of 1..100 (IJG rule)."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be between 1 and 100")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    table = np.floor((base_table * scale + 50) / 100)
    return np.clip(table, 1, 255)


def quantize_block(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantize a DCT coefficient block to integers."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    return np.round(coefficients / table).astype(np.int32)


def dequantize_block(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruct approximate DCT coefficients from quantized values."""
    return np.asarray(quantized, dtype=np.float64) * table
