"""The paper's test plan: core descriptions, test sequences and schedules.

Section IV of the paper defines seven test sequences and four test schedules
for the JPEG encoder SoC.  The exact core sizes (scan cell counts, memory
word width) are not given in the paper, so they are calibrated here such that
the simulated test lengths fall into the same range as Table I; the
calibration is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.dft.ctl import CoreTestDescription
from repro.memory.march import MATS_PLUS
from repro.schedule.estimator import PlatformParameters, TestTimeEstimator
from repro.schedule.model import TestKind, TestSchedule, TestTask
from repro.schedule.power import PowerModel
from repro.schedule.strategies import build_strategy_schedule, strategy_names

#: Peak power budget of the case study (units of the CTL power weights).
DEFAULT_POWER_BUDGET = 6.0

#: Embedded memory: 1 MByte organised as byte-addressable words (paper: 1 MByte).
MEMORY_WORDS = 1 << 20
MEMORY_WORD_BITS = 8

#: Core names used throughout the SoC model.
PROCESSOR = "processor"
COLOR_CONVERSION = "color_conversion"
DCT = "dct"
MEMORY = "memory"

#: TAM base addresses of the wrapped cores and infrastructure blocks.
ADDRESS_MAP: Dict[str, int] = {
    MEMORY: 0x0000_0000,
    PROCESSOR: 0x1000_0000,
    COLOR_CONVERSION: 0x2000_0000,
    DCT: 0x3000_0000,
    "test_controller": 0x4000_0000,
    "decompressor": 0x5000_0000,
    "compactor": 0x6000_0000,
}

#: Size of each slave's address window.
ADDRESS_WINDOW = 0x1000_0000


def build_platform_parameters() -> PlatformParameters:
    """Bandwidths of the case-study platform (100 MHz, 32-bit bus TAM,
    16-bit ATE interface)."""
    return PlatformParameters(
        tam_width_bits=32,
        ate_width_bits=16,
        clock_mhz=100.0,
        controller_cycles_per_memory_op=1.15,
        processor_cycles_per_memory_op=6.0,
        tam_overhead_cycles=1,
        configuration_cycles=64,
        setup_transactions=4,
    )


def build_core_descriptions(with_validation_netlists: bool = False) -> Dict[str, CoreTestDescription]:
    """CTL-style test descriptions of the four cores.

    Scan-cell counts are calibrated so that the paper's pattern counts produce
    test lengths in the range of Table I:

    * processor: 32 scan chains x 1450 cells = 46 400 scan cells, logic BIST
      and a 64-chain internal configuration behind the decompressor,
    * color conversion: 4 chains x 400 cells, logic BIST,
    * DCT: 8 chains x 1300 cells = 10 400 cells, external test only,
    * memory: wrapped for functional isolation only (array BIST is used).
    """
    descriptions = {
        PROCESSOR: CoreTestDescription.describe(
            PROCESSOR, chain_count=32, scan_cells=32 * 1450,
            has_logic_bist=True, internal_chain_count=64,
            test_power=3.0, idle_power=0.3,
        ),
        COLOR_CONVERSION: CoreTestDescription.describe(
            COLOR_CONVERSION, chain_count=4, scan_cells=4 * 400,
            has_logic_bist=True, test_power=1.0, idle_power=0.1,
        ),
        DCT: CoreTestDescription.describe(
            DCT, chain_count=8, scan_cells=8 * 1300,
            has_logic_bist=False, test_power=1.5, idle_power=0.15,
        ),
        MEMORY: CoreTestDescription.describe(
            MEMORY, chain_count=2, scan_cells=128,
            has_logic_bist=False, test_power=1.5, idle_power=0.2,
        ),
    }
    if with_validation_netlists:
        descriptions[PROCESSOR].attach_synthetic_validation(
            flip_flops=128, gates=640, seed=11, chain_count=8)
        descriptions[COLOR_CONVERSION].attach_synthetic_validation(
            flip_flops=64, gates=320, seed=12, chain_count=4)
        descriptions[DCT].attach_synthetic_validation(
            flip_flops=96, gates=480, seed=13, chain_count=8)
    return descriptions


def build_test_tasks() -> Dict[str, TestTask]:
    """The seven test sequences of the paper (Section IV)."""
    tasks = {
        "t1_processor_bist": TestTask(
            name="t1_processor_bist", kind=TestKind.LOGIC_BIST, core=PROCESSOR,
            pattern_count=100_000, power=3.0,
            attributes={"paper_sequence": 1,
                        "description": "BIST of the full-scan processor core "
                                       "with 32 scan chains using 100,000 "
                                       "pseudo-random patterns"},
        ),
        "t2_processor_external": TestTask(
            name="t2_processor_external", kind=TestKind.EXTERNAL_SCAN,
            core=PROCESSOR, pattern_count=20_000, power=2.5,
            attributes={"paper_sequence": 2,
                        "description": "Deterministic logic test of the "
                                       "processor core using 20,000 patterns "
                                       "stored in the ATE"},
        ),
        "t3_processor_compressed": TestTask(
            name="t3_processor_compressed",
            kind=TestKind.EXTERNAL_SCAN_COMPRESSED, core=PROCESSOR,
            pattern_count=20_000, compression_ratio=50.0, power=2.5,
            attributes={"paper_sequence": 3,
                        "description": "Deterministic logic test of the "
                                       "processor core using compressed test "
                                       "data with a compression ratio of 50X"},
        ),
        "t4_colorconv_bist": TestTask(
            name="t4_colorconv_bist", kind=TestKind.LOGIC_BIST,
            core=COLOR_CONVERSION, pattern_count=10_000, power=1.0,
            attributes={"paper_sequence": 4,
                        "description": "BIST of the color conversion core "
                                       "using 10,000 pseudo-random patterns"},
        ),
        "t5_dct_external": TestTask(
            name="t5_dct_external", kind=TestKind.EXTERNAL_SCAN, core=DCT,
            pattern_count=10_000, power=1.5,
            attributes={"paper_sequence": 5,
                        "description": "Deterministic logic test of the "
                                       "full-scan DCT core with 8 scan chains "
                                       "using 10,000 patterns stored in the ATE"},
        ),
        "t6_memory_bist": TestTask(
            name="t6_memory_bist", kind=TestKind.MEMORY_BIST_CONTROLLER,
            core=MEMORY, march=MATS_PLUS, pattern_backgrounds=2, power=1.5,
            attributes={"paper_sequence": 6,
                        "description": "Test controller driven array BIST of "
                                       "the embedded memory core (1 MByte) "
                                       "using a MATS+ march and pattern tests"},
        ),
        "t7_memory_march_processor": TestTask(
            name="t7_memory_march_processor",
            kind=TestKind.MEMORY_MARCH_PROCESSOR, core=MEMORY,
            march=MATS_PLUS, pattern_backgrounds=2, power=2.0,
            attributes={"paper_sequence": 7, "processor_core": PROCESSOR,
                        "description": "The processor drives the same array "
                                       "tests of the embedded memory core as "
                                       "in test 6 using a program stored in "
                                       "L1 cache"},
        ),
    }
    return tasks


def build_test_schedules() -> Dict[str, TestSchedule]:
    """The four test schedules of the paper (Section IV)."""
    schedules = {
        "schedule_1": TestSchedule.sequential(
            "schedule_1",
            ["t1_processor_bist", "t2_processor_external", "t4_colorconv_bist",
             "t5_dct_external", "t7_memory_march_processor"],
            description="Sequential execution of the core tests 1, 2, 4, 5 and 7",
        ),
        "schedule_2": TestSchedule.sequential(
            "schedule_2",
            ["t1_processor_bist", "t3_processor_compressed", "t4_colorconv_bist",
             "t5_dct_external", "t6_memory_bist"],
            description="Sequential execution of the core tests 1, 3, 4, 5 and 6",
        ),
        "schedule_3": TestSchedule(
            name="schedule_3",
            phases=[
                ["t1_processor_bist", "t5_dct_external"],
                ["t2_processor_external", "t4_colorconv_bist"],
                ["t7_memory_march_processor"],
            ],
            description="Concurrent execution of core tests 1 and 5, followed "
                        "by concurrent execution of tests 2 and 4 and finally "
                        "execution of memory test 7",
        ),
        "schedule_4": TestSchedule(
            name="schedule_4",
            phases=[
                ["t1_processor_bist", "t5_dct_external"],
                ["t3_processor_compressed", "t4_colorconv_bist", "t6_memory_bist"],
            ],
            description="Concurrent execution of core tests 1 and 5, followed "
                        "by concurrent execution of tests 3, 4 and 6",
        ),
    }
    tasks = build_test_tasks()
    for schedule in schedules.values():
        schedule.validate(tasks)
    return schedules


def build_power_model(budget: float = DEFAULT_POWER_BUDGET) -> PowerModel:
    """The case study's peak-power model (budget in CTL power units)."""
    return PowerModel(budget=budget)


def build_strategy_schedules(strategies: Sequence[str] = None,
                             power_budget: float = DEFAULT_POWER_BUDGET,
                             ) -> Dict[str, TestSchedule]:
    """Strategy-generated schedules over the paper's seven test sequences.

    Every entry of *strategies* is a scheduler-strategy spec string
    (``"greedy"``, ``"anneal:steps=512"`` — see
    :mod:`repro.schedule.strategies`), built against the case study's tasks,
    coarse estimates and power budget; ``None`` builds every registered
    strategy at default parameters.  The result is keyed by canonical spec
    string, ready to simulate next to the hand-written
    :func:`build_test_schedules` plans.
    """
    tasks = build_test_tasks()
    estimator = TestTimeEstimator(
        build_core_descriptions(), build_platform_parameters(),
        memory_words={MEMORY: MEMORY_WORDS},
    )
    estimates = estimator.estimate_all(tasks)
    power_model = build_power_model(power_budget)
    schedules: Dict[str, TestSchedule] = {}
    for text in (strategies if strategies is not None else strategy_names()):
        schedule = build_strategy_schedule(text, tasks, estimates,
                                           power_model=power_model)
        schedules[schedule.name] = schedule
    return schedules
