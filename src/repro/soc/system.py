"""The complete SoC TLMs including test infrastructure (Figure 4).

:class:`JpegSocTlm` assembles the functional cores, the system bus reused as
TAM, and the full test infrastructure (test wrappers, decompressor/compactor,
EBI, test controller, configuration scan bus, ATE).  The same model instance
supports both mission-mode simulation (JPEG encoding) and test-mode simulation
(executing a complete test schedule), which is the central claim of the paper.

:class:`GeneratedSocTlm` assembles the same test infrastructure around an
arbitrary set of (typically synthetic) cores described by
:class:`~repro.dft.ctl.CoreTestDescription` objects.  It is the vehicle for
design-space exploration campaigns beyond the paper's single case study:
scenario generators (:mod:`repro.explore.scenarios`) produce core sets and
schedules, and every scenario becomes one ``GeneratedSocTlm`` instance.
Both models share the test-mode harness in :class:`SocTlmBase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Union

import numpy as np

from repro.kernel.clock import Clock
from repro.kernel.simtime import NS, SimTime
from repro.kernel.simulator import Simulator
from repro.kernel.tracing import TransactionTracer
from repro.dft.ate import (
    AutomatedTestEquipment,
    ScheduleExecutionResult,
    TestArchitecture,
)
from repro.dft.compression import Compactor, Decompressor
from repro.dft.config_bus import ConfigurationScanBus
from repro.dft.controller import TestController
from repro.dft.ctl import CoreTestDescription, generate_wrapper
from repro.dft.ebi import ExternalBusInterface
from repro.dft.monitor import ActivityLog, PowerMonitor, TamUtilizationMonitor
from repro.dft.tam import AteLink
from repro.schedule.model import TestSchedule, TestTask
from repro.soc.bus import SystemBus
from repro.soc.cores import ColorConversionCore, DctCore, MemoryCore, ProcessorCore
from repro.soc.jpeg.encoder import EncodedImage
from repro.soc.testplan import (
    ADDRESS_MAP,
    ADDRESS_WINDOW,
    COLOR_CONVERSION,
    DCT,
    MEMORY,
    MEMORY_WORD_BITS,
    MEMORY_WORDS,
    PROCESSOR,
    build_core_descriptions,
    build_test_schedules,
    build_test_tasks,
)


@dataclass
class SocConfiguration:
    """Tunable parameters of the SoC and its test infrastructure."""

    tam_width_bits: int = 32
    ate_width_bits: int = 16
    clock_period: SimTime = field(default_factory=lambda: SimTime(10, NS))
    memory_words: int = MEMORY_WORDS
    memory_word_bits: int = MEMORY_WORD_BITS
    compression_ratio: float = 50.0
    burst_patterns: int = 64
    peak_window_cycles: int = 1_000_000
    status_poll_fraction: float = 0.05
    jpeg_quality: int = 75
    with_validation_netlists: bool = False
    #: Width of every wrapper's parallel port (WPI/WPO) towards the TAM in
    #: bits.  0 keeps the historical maximum-parallelism assumption (one lane
    #: per scan chain); a narrower port serializes lanes and stretches the
    #: external-scan shift time.
    wrapper_parallel_width_bits: int = 0
    #: Width of the wrapper serial port / configuration scan ring in bits
    #: (how many ring bits shift per cycle).  1 is the classic single-bit
    #: WSI/WSO ring.
    wrapper_serial_width_bits: int = 1
    #: ATE stimulus vector memory in ATE-link words.  0 models an unlimited
    #: buffer; a finite memory stalls external tests for
    #: :attr:`ate_reload_cycles` whenever their stimuli exhaust it.
    ate_vector_memory_words: int = 0
    #: Stall cycles per workstation reload of the ATE vector memory.
    ate_reload_cycles: int = 25_000
    #: Exploration fast path: ``False`` builds the transaction tracer and
    #: activity log disabled, so every channel append reduces to one flag
    #: check and no trace data is retained.  Simulated behaviour (test
    #: length, activations) is untouched; the trace-derived metrics (TAM
    #: utilization, power profile) read as zero.  Campaign workers opt in
    #: via a ``("tracing_enabled", False)`` scenario config override when
    #: the search objectives do not need the trace-derived columns.
    tracing_enabled: bool = True


@dataclass
class TestRunMetrics:
    """The Table-I row produced by simulating one test schedule."""

    schedule_name: str
    test_length_cycles: int
    peak_tam_utilization: float
    avg_tam_utilization: float
    peak_power: float
    avg_power: float
    cpu_seconds: float = 0.0
    simulated_activations: int = 0
    execution: Optional[ScheduleExecutionResult] = None
    #: False when a ``horizon_cycles`` run was abandoned at the horizon; the
    #: metric fields then hold partial lower bounds (``execution`` is None).
    completed: bool = True

    @property
    def test_length_mcycles(self) -> float:
        return self.test_length_cycles / 1e6

    def as_row(self) -> Dict[str, object]:
        return {
            "scenario": self.schedule_name,
            "peak_tam_utilization": self.peak_tam_utilization,
            "avg_tam_utilization": self.avg_tam_utilization,
            "test_length_mcycles": self.test_length_mcycles,
            "cpu_seconds": self.cpu_seconds,
        }


class SocTlmBase:
    """Shared simulation harness of the SoC TLMs.

    Subclasses assemble a platform (bus/TAM, wrappers, ATE, ...) on top of the
    kernel objects created by :meth:`_init_platform` and provide the default
    task and schedule registries; the test-mode execution flow and the
    monitors are identical for every SoC model.
    """

    def _init_platform(self, name: str, config: SocConfiguration) -> None:
        self.config = config
        self.sim = Simulator(name)
        self.clock = Clock(self.sim, "clk", config.clock_period)
        self.tracer = TransactionTracer(enabled=config.tracing_enabled)
        self.activity_log = ActivityLog(enabled=config.tracing_enabled)

    def _init_monitors(self) -> None:
        self.tam_monitor = TamUtilizationMonitor(self.tracer, self.bus.name,
                                                 self.clock)
        self.power_monitor = PowerMonitor(self.activity_log)

    # -- task/schedule registries (overridden by subclasses) --------------------
    def _default_tasks(self) -> Mapping[str, TestTask]:
        raise NotImplementedError

    def _resolve_schedule(self, name: str) -> TestSchedule:
        raise NotImplementedError

    # -- test mode ----------------------------------------------------------------
    def run_test_schedule(self, schedule: Union[str, TestSchedule],
                          tasks: Optional[Mapping[str, TestTask]] = None,
                          horizon_cycles: Optional[int] = None) -> TestRunMetrics:
        """Simulate the execution of a complete test schedule.

        Returns the :class:`TestRunMetrics` corresponding to one row of the
        paper's Table I (CPU time is filled in by the experiment runner).

        ``horizon_cycles`` bounds the simulated makespan (the racing hook of
        the adaptive search): when the schedule has not finished within the
        horizon the run is abandoned and the metrics come back with
        ``completed=False``, every field a *lower bound* of the full run —
        the test length is at least the horizon, and monitors only ever grow.
        A schedule that finishes inside the horizon drains its trailing
        events and produces metrics identical to an unbounded run.
        """
        if tasks is None:
            tasks = self._default_tasks()
        if isinstance(schedule, str):
            schedule = self._resolve_schedule(schedule)
        schedule.validate(dict(tasks))

        start = self.sim.now
        activations_before = self.sim.dispatched_activations
        holder = {}

        def test_flow():
            result = yield from self.ate.execute_schedule(schedule, tasks)
            holder["result"] = result

        self.sim.spawn(test_flow(), name=f"ate_{schedule.name}")
        if horizon_cycles is None:
            self.sim.run()
        else:
            self.sim.run(until=start + self.clock.cycles(horizon_cycles))
            if "result" in holder:
                # Finished inside the horizon: drain the trailing events so
                # the metrics match the unbounded path exactly.
                self.sim.run()
        end = self.sim.now
        completed = "result" in holder
        execution: Optional[ScheduleExecutionResult] = holder.get("result")

        peak = self.tam_monitor.peak_utilization(
            window_cycles=self.config.peak_window_cycles, start=start, end=end,
        )
        average = self.tam_monitor.average_utilization(start=start, end=end)
        return TestRunMetrics(
            schedule_name=schedule.name,
            test_length_cycles=(execution.cycles if completed
                                else self.clock.cycles_between(start, end)),
            peak_tam_utilization=peak,
            avg_tam_utilization=average,
            peak_power=self.power_monitor.peak_power(),
            avg_power=self.power_monitor.average_power(),
            simulated_activations=(self.sim.dispatched_activations
                                   - activations_before),
            execution=execution,
            completed=completed,
        )

    # -- convenience ------------------------------------------------------------
    def wrapper(self, core_name: str):
        return self.wrappers[core_name]


class JpegSocTlm(SocTlmBase):
    """Approximately-timed TLM of the bus-based JPEG encoder SoC."""

    def __init__(self, config: Optional[SocConfiguration] = None):
        config = config or SocConfiguration()
        self._init_platform("jpeg_soc", config)

        # -- functional platform -------------------------------------------------
        self.bus = SystemBus(self.sim, "system_bus",
                             width_bits=config.tam_width_bits, clock=self.clock,
                             tracer=self.tracer)
        self.memory = MemoryCore(self.sim, MEMORY, words=config.memory_words,
                                 word_bits=config.memory_word_bits,
                                 base_address=ADDRESS_MAP[MEMORY])
        self.processor = ProcessorCore(self.sim, PROCESSOR, bus=self.bus)
        self.color_conversion = ColorConversionCore(self.sim, COLOR_CONVERSION)
        self.dct = DctCore(self.sim, DCT, quality=config.jpeg_quality)

        # -- test infrastructure (gray blocks of Figure 4) ------------------------------
        self.descriptions = build_core_descriptions(
            with_validation_netlists=config.with_validation_netlists
        )
        self.config_bus = ConfigurationScanBus(
            self.sim, "config_scan_bus", clock=self.clock, tracer=self.tracer,
            serial_width_bits=config.wrapper_serial_width_bits)
        self.ate_link = AteLink(self.sim, "ate_link",
                                width_bits=config.ate_width_bits,
                                clock=self.clock, tracer=self.tracer)

        cores = {
            PROCESSOR: self.processor,
            COLOR_CONVERSION: self.color_conversion,
            DCT: self.dct,
            MEMORY: self.memory,
        }
        self.wrappers = {}
        for core_name, core in cores.items():
            wrapper = generate_wrapper(
                self.sim, self.descriptions[core_name], core=core,
                config_bus=self.config_bus, tracer=self.tracer,
                parallel_width_bits=config.wrapper_parallel_width_bits,
            )
            self.wrappers[core_name] = wrapper
            self.bus.bind_slave(wrapper, ADDRESS_MAP[core_name], ADDRESS_WINDOW)

        self.decompressor = Decompressor(
            self.sim, "decompressor",
            compression_ratio=config.compression_ratio,
            target_wrapper=self.wrappers[PROCESSOR],
            internal_chain_count=self.descriptions[PROCESSOR].internal_chain_count,
        )
        self.compactor = Compactor(self.sim, "compactor", compaction_ratio=1000.0)
        self.config_bus.register(self.decompressor.config_register)
        self.config_bus.register(self.compactor.config_register)
        self.bus.bind_slave(self.decompressor, ADDRESS_MAP["decompressor"],
                            ADDRESS_WINDOW)
        self.bus.bind_slave(self.compactor, ADDRESS_MAP["compactor"],
                            ADDRESS_WINDOW)

        self.controller = TestController(self.sim, "test_controller",
                                         tam=self.bus,
                                         activity_log=self.activity_log)
        self.config_bus.register(self.controller.config_register)
        self.bus.bind_slave(self.controller, ADDRESS_MAP["test_controller"],
                            ADDRESS_WINDOW)

        self.ebi = ExternalBusInterface(self.sim, "ebi", ate_link=self.ate_link,
                                        tam=self.bus,
                                        buffer_patterns=config.burst_patterns)
        self.config_bus.register(self.ebi.config_register)

        self.architecture = TestArchitecture(
            tam=self.bus, ate_link=self.ate_link, ebi=self.ebi,
            config_bus=self.config_bus, controller=self.controller,
            wrappers=dict(self.wrappers),
            decompressors={PROCESSOR: self.decompressor},
            compactors={PROCESSOR: self.compactor, DCT: self.compactor,
                        COLOR_CONVERSION: self.compactor},
            memory_cores={MEMORY: self.memory},
            processor_cores={PROCESSOR: self.processor},
            addresses=dict(ADDRESS_MAP),
            activity_log=self.activity_log,
        )
        self.ate = AutomatedTestEquipment(
            self.sim, "ate", architecture=self.architecture,
            status_poll_fraction=config.status_poll_fraction,
            burst_patterns=config.burst_patterns,
            vector_memory_words=config.ate_vector_memory_words,
            reload_cycles=config.ate_reload_cycles,
        )

        self._init_monitors()

    # -- task/schedule registries ---------------------------------------------------
    def _default_tasks(self) -> Mapping[str, TestTask]:
        return build_test_tasks()

    def _resolve_schedule(self, name: str) -> TestSchedule:
        return build_test_schedules()[name]

    # -- mission mode ------------------------------------------------------------------------
    def run_functional_encode(self, image: np.ndarray,
                              quality: Optional[int] = None):
        """Encode *image* through the SoC (TLM simulation of mission mode).

        Returns ``(encoded_image, cycles)`` where *encoded_image* is the
        :class:`EncodedImage` produced by the processor and *cycles* the
        number of simulated clock cycles the encoding took.
        """
        quality = quality if quality is not None else self.config.jpeg_quality
        self.dct.set_quality(quality)
        start = self.sim.now
        holder = {}

        def mission():
            encoded = yield from self.processor.encode_image(
                image,
                memory_address=ADDRESS_MAP[MEMORY],
                colorconv_address=ADDRESS_MAP[COLOR_CONVERSION],
                dct_address=ADDRESS_MAP[DCT],
                quality=quality,
            )
            holder["encoded"] = encoded

        self.sim.spawn(mission(), name="mission_encode")
        self.sim.run()
        cycles = self.clock.cycles_between(start, self.sim.now)
        encoded: EncodedImage = holder["encoded"]
        return encoded, cycles

    def __repr__(self):
        return f"JpegSocTlm(clock={self.clock.period}, tam_width={self.bus.width_bits})"


class GeneratedSocTlm(SocTlmBase):
    """Test-infrastructure TLM generated around an arbitrary set of cores.

    The model wires the same gray blocks of Figure 4 — bus/TAM, configuration
    scan bus, ATE link, EBI, test controller, per-core wrappers, decompressors
    and a shared compactor — around cores that exist only as
    :class:`~repro.dft.ctl.CoreTestDescription` objects (plus optional
    embedded memories).  That is exactly the paper's generation claim turned
    into a scenario engine: a campaign can instantiate hundreds of SoC
    variants without any hand-written model code.

    *descriptions* maps core names to their CTL descriptions; cores whose
    description carries an ``internal_chain_count`` get a dedicated
    decompressor driven at ``config.compression_ratio``.  *memory_words* maps
    additional embedded-memory core names to their word counts; those cores
    are testable with :class:`~repro.schedule.model.TestKind.MEMORY_BIST_CONTROLLER`
    tasks.  *tasks* and *schedules* seed the default registries used when
    :meth:`run_test_schedule` is called with names instead of objects.
    """

    #: Address window reserved for every TAM slave.
    ADDRESS_WINDOW = 0x0100_0000
    #: Base address of the first allocated slave window.
    ADDRESS_BASE = 0x1000_0000

    def __init__(self, config: Optional[SocConfiguration] = None,
                 descriptions: Optional[Mapping[str, CoreTestDescription]] = None,
                 memory_words: Optional[Mapping[str, int]] = None,
                 tasks: Optional[Mapping[str, TestTask]] = None,
                 schedules: Optional[Mapping[str, TestSchedule]] = None,
                 name: str = "generated_soc"):
        config = config or SocConfiguration()
        self._init_platform(name, config)
        self.descriptions = dict(descriptions or {})
        self.tasks = dict(tasks or {})
        self.schedules = dict(schedules or {})
        memory_words = dict(memory_words or {})

        self.bus = SystemBus(self.sim, "system_bus",
                             width_bits=config.tam_width_bits, clock=self.clock,
                             tracer=self.tracer)
        self.config_bus = ConfigurationScanBus(
            self.sim, "config_scan_bus", clock=self.clock, tracer=self.tracer,
            serial_width_bits=config.wrapper_serial_width_bits)
        self.ate_link = AteLink(self.sim, "ate_link",
                                width_bits=config.ate_width_bits,
                                clock=self.clock, tracer=self.tracer)

        addresses: Dict[str, int] = {}
        next_address = self.ADDRESS_BASE

        def allocate(slave_name: str, slave=None) -> int:
            nonlocal next_address
            address = next_address
            addresses[slave_name] = address
            if slave is not None:
                self.bus.bind_slave(slave, address, self.ADDRESS_WINDOW)
            next_address += self.ADDRESS_WINDOW
            return address

        self.wrappers = {}
        for core_name, description in self.descriptions.items():
            wrapper = generate_wrapper(
                self.sim, description, core=None,
                config_bus=self.config_bus, tracer=self.tracer,
                parallel_width_bits=config.wrapper_parallel_width_bits)
            self.wrappers[core_name] = wrapper
            allocate(core_name, wrapper)

        self.decompressors = {}
        for core_name, description in self.descriptions.items():
            if not description.internal_chain_count:
                continue
            decompressor = Decompressor(
                self.sim, f"{core_name}_decompressor",
                compression_ratio=config.compression_ratio,
                target_wrapper=self.wrappers[core_name],
                internal_chain_count=description.internal_chain_count,
            )
            self.config_bus.register(decompressor.config_register)
            allocate(decompressor.name, decompressor)
            self.decompressors[core_name] = decompressor

        self.compactor = Compactor(self.sim, "compactor",
                                   compaction_ratio=1000.0)
        self.config_bus.register(self.compactor.config_register)
        allocate("compactor", self.compactor)

        self.memory_cores = {}
        for core_name, words in memory_words.items():
            if core_name not in addresses:
                allocate(core_name)
            memory = MemoryCore(self.sim, core_name, words=int(words),
                                word_bits=config.memory_word_bits,
                                base_address=addresses[core_name])
            self.memory_cores[core_name] = memory

        self.controller = TestController(self.sim, "test_controller",
                                         tam=self.bus,
                                         activity_log=self.activity_log)
        self.config_bus.register(self.controller.config_register)
        allocate("test_controller", self.controller)

        self.ebi = ExternalBusInterface(self.sim, "ebi", ate_link=self.ate_link,
                                        tam=self.bus,
                                        buffer_patterns=config.burst_patterns)
        self.config_bus.register(self.ebi.config_register)

        self.architecture = TestArchitecture(
            tam=self.bus, ate_link=self.ate_link, ebi=self.ebi,
            config_bus=self.config_bus, controller=self.controller,
            wrappers=dict(self.wrappers),
            decompressors=dict(self.decompressors),
            compactors={core: self.compactor for core in self.wrappers},
            memory_cores=dict(self.memory_cores),
            processor_cores={},
            addresses=addresses,
            activity_log=self.activity_log,
        )
        self.ate = AutomatedTestEquipment(
            self.sim, "ate", architecture=self.architecture,
            status_poll_fraction=config.status_poll_fraction,
            burst_patterns=config.burst_patterns,
            vector_memory_words=config.ate_vector_memory_words,
            reload_cycles=config.ate_reload_cycles,
        )
        self._init_monitors()

    # -- task/schedule registries ---------------------------------------------------
    def _default_tasks(self) -> Mapping[str, TestTask]:
        if not self.tasks:
            raise ValueError(f"{self.sim.name}: no tasks registered")
        return dict(self.tasks)

    def _resolve_schedule(self, name: str) -> TestSchedule:
        return self.schedules[name]

    def __repr__(self):
        return (f"GeneratedSocTlm({self.sim.name!r}, cores={len(self.wrappers)}, "
                f"tam_width={self.bus.width_bits})")
