"""The system bus of the JPEG SoC, reused as TAM.

The paper's case study reuses the functional system bus as the test access
mechanism.  :class:`SystemBus` therefore *is* a :class:`~repro.dft.tam.TamChannel`
(same arbitration, addressing and accounting) and additionally offers the
memory-mapped functional transfers the mission-mode cores use.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.dft.payload import TamCommand, TamPayload, TamResponse
from repro.dft.tam import TamChannel


class SystemBus(TamChannel):
    """Shared system bus that doubles as the SoC's TAM."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 width_bits: int, clock, arbitration_overhead_cycles: int = 1,
                 tracer=None):
        super().__init__(parent, name, width_bits, clock,
                         arbitration_overhead_cycles=arbitration_overhead_cycles,
                         tracer=tracer)
        self.functional_reads = 0
        self.functional_writes = 0

    # -- functional transfers -----------------------------------------------------
    def functional_write(self, initiator: str, address: int, data,
                         data_bits: Optional[int] = None):
        """Memory-mapped write of *data* to *address* (blocking; ``yield from``)."""
        bits = data_bits if data_bits is not None else self._estimate_bits(data)
        payload = TamPayload(
            command=TamCommand.WRITE, address=address, data_bits=bits,
            data=data, initiator=initiator,
            attributes={"functional": True},
        )
        result = yield from self.transport(payload)
        self.functional_writes += 1
        if result.status is not TamResponse.OK:
            raise RuntimeError(
                f"functional write to {address:#x} failed: {result.status.value}"
            )
        return result

    def functional_read(self, initiator: str, address: int, bits: int):
        """Memory-mapped read of *bits* from *address* (blocking; ``yield from``).

        Returns the payload's ``response_data`` as provided by the slave.
        """
        payload = TamPayload(
            command=TamCommand.READ, address=address, data_bits=0,
            response_bits=bits, initiator=initiator,
            attributes={"functional": True},
        )
        result = yield from self.transport(payload)
        self.functional_reads += 1
        if result.status is not TamResponse.OK:
            raise RuntimeError(
                f"functional read from {address:#x} failed: {result.status.value}"
            )
        return result.response_data

    # -- helpers ----------------------------------------------------------------------
    def _estimate_bits(self, data) -> int:
        """Estimate the payload volume of *data* for timing purposes."""
        if data is None:
            return self.width_bits
        if hasattr(data, "nbytes"):
            return int(data.nbytes) * 8
        if isinstance(data, (bytes, bytearray)):
            return len(data) * 8
        if isinstance(data, int):
            return max(self.width_bits, data.bit_length())
        if isinstance(data, (list, tuple)):
            return max(self.width_bits, len(data) * self.width_bits)
        if isinstance(data, dict):
            return max(self.width_bits, 64)
        return self.width_bits

    def word_transfer_cycles(self, words: int) -> int:
        """Cycles for a burst of *words* bus-word transfers."""
        return self.arbitration_overhead_cycles + max(0, words)

    def __repr__(self):
        return (
            f"SystemBus({self.name!r}, width={self.width_bits}, "
            f"transactions={self.transaction_count})"
        )
