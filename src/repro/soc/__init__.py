"""The JPEG encoder SoC case study (paper, Section IV).

* :mod:`repro.soc.jpeg` -- the functional JPEG encoding pipeline
* :mod:`repro.soc.cores` -- functional TLMs of the four cores (processor,
  memory, color conversion, DCT)
* :mod:`repro.soc.bus` -- the system bus, reused as TAM
* :mod:`repro.soc.system` -- the complete SoC model including the test
  infrastructure of Figure 4
* :mod:`repro.soc.testplan` -- the seven test sequences and four test
  schedules of the evaluation
"""

from repro.soc.bus import SystemBus
from repro.soc.cores import (
    ColorConversionCore,
    DctCore,
    MemoryCore,
    ProcessorCore,
)
from repro.soc.system import GeneratedSocTlm, JpegSocTlm, SocConfiguration
from repro.soc.testplan import (
    build_core_descriptions,
    build_platform_parameters,
    build_power_model,
    build_strategy_schedules,
    build_test_schedules,
    build_test_tasks,
    MEMORY_WORDS,
)

__all__ = [
    "ColorConversionCore",
    "DctCore",
    "GeneratedSocTlm",
    "JpegSocTlm",
    "MEMORY_WORDS",
    "MemoryCore",
    "ProcessorCore",
    "SocConfiguration",
    "SystemBus",
    "build_core_descriptions",
    "build_platform_parameters",
    "build_power_model",
    "build_strategy_schedules",
    "build_test_schedules",
    "build_test_tasks",
]
