"""Functional TLMs of the four cores of the JPEG encoder SoC.

Each core has a *mission* behaviour (used by the functional JPEG encoding
flow) and is independently described for test by a
:class:`~repro.dft.ctl.CoreTestDescription` (see :mod:`repro.soc.testplan`).
The cores communicate exclusively through the system bus, which keeps the
communication-centric TLM view intact.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

import numpy as np

from repro.kernel.event import Timeout
from repro.kernel.module import Module
from repro.kernel.simulator import Simulator
from repro.memory.array import MemoryArray
from repro.memory.march import MarchTest, run_march_test, run_pattern_test
from repro.soc.jpeg.color import rgb_to_ycbcr
from repro.soc.jpeg.dct import BLOCK_SIZE, blockwise, dct_2d
from repro.soc.jpeg.encoder import CHANNEL_NAMES, EncodedImage, JpegEncoder
from repro.soc.jpeg.huffman import HuffmanCodec
from repro.soc.jpeg.quantize import quantize_block
from repro.soc.jpeg.zigzag import run_length_encode, to_zigzag
from repro.dft.payload import TamCommand, TamPayload, TamResponse


class MemoryCore(Module):
    """The embedded memory core (1 MByte in the paper's case study)."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 words: int, word_bits: int = 8, base_address: int = 0):
        super().__init__(parent, name)
        self.array = MemoryArray(words=words, word_bits=word_bits)
        self.base_address = base_address
        self.size_words = words

    # -- functional (mission mode) access ------------------------------------------
    def functional_access(self, payload: TamPayload) -> TamPayload:
        offset = int(payload.attributes.get("offset", 0))
        if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
            data = payload.data
            if data is None:
                return payload.complete(TamResponse.OK)
            if isinstance(data, (int, np.integer)):
                self.array.raw_write(offset, int(data))
            else:
                values = np.asarray(data).ravel()
                self.array.load((int(v) for v in values), base_address=offset)
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            words = int(payload.attributes.get("words", 1))
            payload.response_data = self.array.dump(offset, words)
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        return f"MemoryCore({self.name!r}, words={self.size_words})"


class ColorConversionCore(Module):
    """Dedicated RGB -> YCbCr color conversion core."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 cycles_per_pixel: float = 1.0):
        super().__init__(parent, name)
        self.cycles_per_pixel = cycles_per_pixel
        self._output: Optional[np.ndarray] = None
        self.pixels_processed = 0

    def processing_cycles(self, pixel_count: int) -> int:
        return max(1, math.ceil(pixel_count * self.cycles_per_pixel))

    def functional_access(self, payload: TamPayload) -> TamPayload:
        if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
            pixels = np.asarray(payload.data, dtype=np.float64)
            if pixels.ndim != 3 or pixels.shape[2] != 3:
                return payload.complete(TamResponse.MODE_ERROR)
            self._output = rgb_to_ycbcr(pixels)
            pixel_count = pixels.shape[0] * pixels.shape[1]
            self.pixels_processed += pixel_count
            payload.attributes["processing_cycles"] = self.processing_cycles(pixel_count)
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            payload.response_data = self._output
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        return f"ColorConversionCore({self.name!r}, pixels={self.pixels_processed})"


class DctCore(Module):
    """Dedicated 8x8 DCT + quantization core."""

    def __init__(self, parent: Union[Simulator, Module], name: str,
                 cycles_per_block: int = 80, quality: int = 75):
        super().__init__(parent, name)
        self.cycles_per_block = cycles_per_block
        self._encoder = JpegEncoder(quality=quality)
        self._output: Optional[np.ndarray] = None
        self.blocks_processed = 0

    @property
    def quality(self) -> int:
        return self._encoder.quality

    def set_quality(self, quality: int) -> None:
        self._encoder = JpegEncoder(quality=quality)

    def functional_access(self, payload: TamPayload) -> TamPayload:
        if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
            data = payload.data or {}
            block = np.asarray(data.get("block"), dtype=np.float64)
            channel = int(data.get("channel", 0))
            if block.shape != (BLOCK_SIZE, BLOCK_SIZE):
                return payload.complete(TamResponse.MODE_ERROR)
            table = self._encoder._table_for(channel)
            self._output = quantize_block(dct_2d(block), table)
            self.blocks_processed += 1
            payload.attributes["processing_cycles"] = self.cycles_per_block
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            payload.response_data = self._output
        return payload.complete(TamResponse.OK)

    def __repr__(self):
        return f"DctCore({self.name!r}, blocks={self.blocks_processed})"


class ProcessorCore(Module):
    """The embedded processor core.

    In mission mode it orchestrates JPEG encoding: it moves image data between
    the memory and the hardware accelerators over the system bus and performs
    the entropy coding in software.  For test sequence 7 it executes the
    memory march program (stored in its L1 cache, hence no instruction
    fetches over the bus).
    """

    def __init__(self, parent: Union[Simulator, Module], name: str, bus,
                 cycles_per_memory_op: float = 6.0,
                 bus_busy_cycles_per_memory_op: float = 2.0,
                 software_cycles_per_symbol: int = 4):
        super().__init__(parent, name)
        self.bus = bus
        self.cycles_per_memory_op = cycles_per_memory_op
        self.bus_busy_cycles_per_memory_op = bus_busy_cycles_per_memory_op
        self.software_cycles_per_symbol = software_cycles_per_symbol
        self.last_command: Optional[Dict[str, object]] = None
        self.images_encoded = 0

    # -- functional access (the processor as a bus slave) ----------------------------
    def functional_access(self, payload: TamPayload) -> TamPayload:
        """The processor's slave port only accepts commands (mailbox style)."""
        if payload.command in (TamCommand.WRITE, TamCommand.WRITE_READ):
            if isinstance(payload.data, dict):
                self.last_command = dict(payload.data)
        if payload.command in (TamCommand.READ, TamCommand.WRITE_READ):
            payload.response_data = self.last_command
        return payload.complete(TamResponse.OK)

    # -- mission mode: JPEG encoding over the bus ------------------------------------------
    def encode_image(self, image: np.ndarray, memory_address: int,
                     colorconv_address: int, dct_address: int,
                     quality: int = 75, row_chunk: int = 8):
        """Encode *image* using the SoC's accelerators (blocking; ``yield from``).

        Returns an :class:`~repro.soc.jpeg.encoder.EncodedImage` that is
        bit-identical to what the pure-software :class:`JpegEncoder` produces
        for the same image and quality — the hardware cores perform the same
        arithmetic, only the communication is explicit.
        """
        image = np.asarray(image)
        if image.ndim != 3 or image.shape[2] != 3:
            raise ValueError("expected an HxWx3 RGB image")
        clock = self.bus.clock
        height, width = image.shape[:2]

        # 1. Store the raw image in the embedded memory (DMA-style bursts).
        flat = image.astype(np.uint8).ravel()
        offset = 0
        chunk_words = max(1, row_chunk * width * 3)
        while offset < flat.size:
            chunk = flat[offset:offset + chunk_words]
            yield from self.bus.functional_write(
                self.name, memory_address + offset, chunk,
                data_bits=int(chunk.size) * 8,
            )
            offset += chunk.size

        # 2. Read the image back and hand it to the color conversion core.
        stored = yield from self.bus.functional_read(
            self.name, memory_address, bits=int(flat.size) * 8,
        )
        del stored  # timing-relevant read; content identical to `image`
        yield from self.bus.functional_write(
            self.name, colorconv_address, image.astype(np.float64),
            data_bits=int(flat.size) * 8,
        )
        yield Timeout(clock.cycles(height * width))
        ycbcr = yield from self.bus.functional_read(
            self.name, colorconv_address, bits=int(flat.size) * 8,
        )

        # 3. Per channel and per 8x8 block, use the DCT core.
        encoder = JpegEncoder(quality=quality)
        channel_blocks = {}
        for channel, channel_name in enumerate(CHANNEL_NAMES):
            plane = ycbcr[:, :, channel] - 128.0
            blocks = []
            for row, col, block in blockwise(plane):
                yield from self.bus.functional_write(
                    self.name, dct_address,
                    {"block": block, "channel": channel},
                    data_bits=BLOCK_SIZE * BLOCK_SIZE * 8,
                )
                yield Timeout(clock.cycles(80))
                quantized = yield from self.bus.functional_read(
                    self.name, dct_address, bits=BLOCK_SIZE * BLOCK_SIZE * 16,
                )
                pairs = run_length_encode(to_zigzag(quantized))
                blocks.append((row, col, pairs))
            channel_blocks[channel_name] = blocks

        # 4. Entropy coding in software on the processor.
        symbols = []
        for channel_name in CHANNEL_NAMES:
            for _, _, pairs in channel_blocks[channel_name]:
                symbols.extend(pairs)
        codec = HuffmanCodec.from_symbols(symbols)
        bitstream = codec.encode(symbols)
        yield Timeout(clock.cycles(len(symbols) * self.software_cycles_per_symbol))

        # 5. Store the compressed size back into memory (bookkeeping word).
        yield from self.bus.functional_write(
            self.name, memory_address, len(bitstream) & 0xFF, data_bits=32,
        )

        self.images_encoded += 1
        return EncodedImage(
            width=width, height=height, quality=quality,
            channel_blocks=channel_blocks, bitstream=bitstream,
            code_table=codec.code_table,
            quant_tables={"Y": encoder.luminance_table,
                          "Cb": encoder.chrominance_table,
                          "Cr": encoder.chrominance_table},
        )

    # -- test sequence 7: processor-driven memory march -----------------------------------------
    def run_memory_march(self, memory_core: MemoryCore, march: MarchTest,
                         pattern_backgrounds: int = 2, chunks: int = 128,
                         validation_stride: int = 257):
        """Execute the march + pattern test program on the embedded memory.

        The program itself resides in the processor's L1 cache (as in the
        paper), so only the data accesses travel over the system bus: each
        memory operation costs ``cycles_per_memory_op`` processor cycles of
        which ``bus_busy_cycles_per_memory_op`` occupy the bus.
        """
        memory = memory_core.array
        words = memory.words
        total_operations = (march.operation_count(words)
                            + 2 * pattern_backgrounds * words)
        clock = self.bus.clock

        # Functional validation pass on a subsampled address space.
        march_result = run_march_test(memory, march, stride=validation_stride,
                                      max_failures=64)
        pattern_result = run_pattern_test(memory, stride=validation_stride,
                                          max_failures=64)
        failures = len(march_result.failures) + len(pattern_result.failures)

        chunk_size = max(1, math.ceil(total_operations / max(1, chunks)))
        done = 0
        start = self.sim.now
        while done < total_operations:
            chunk = min(chunk_size, total_operations - done)
            chunk_cycles = max(1, round(chunk * self.cycles_per_memory_op))
            busy_cycles = max(1, round(chunk * self.bus_busy_cycles_per_memory_op))
            busy_cycles = min(busy_cycles, chunk_cycles)
            yield from self.bus.occupy(
                initiator=self.name, busy_cycles=busy_cycles,
                kind="memory_march", address=memory_core.base_address,
                data_bits=chunk * memory.word_bits,
                attributes={"operations": chunk},
            )
            idle_cycles = chunk_cycles - busy_cycles
            if idle_cycles > 0:
                yield Timeout(clock.cycles(idle_cycles))
            done += chunk
        return {
            "operations": total_operations,
            "failures": failures,
            "march_result": march_result,
            "pattern_result": pattern_result,
            "cycles": clock.cycles_between(start, self.sim.now),
        }

    def __repr__(self):
        return f"ProcessorCore({self.name!r}, images_encoded={self.images_encoded})"
