"""Gate-level netlists with flip-flops.

A :class:`Netlist` is a named collection of nets, combinational gates and
D-flip-flops.  It knows how to order its gates topologically so the logic
simulator can evaluate the combinational part in a single pass per cycle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rtl.gates import Gate, GateType


@dataclass
class Net:
    """A named wire."""

    name: str
    driver: Optional[str] = None  # name of the driving gate/flip-flop/input


@dataclass
class FlipFlop:
    """A D-flip-flop: samples ``data_in`` at the clock edge onto ``data_out``."""

    name: str
    data_in: str
    data_out: str


class NetlistError(Exception):
    """Raised for structural problems (duplicate drivers, missing nets, cycles)."""


class Netlist:
    """A sequential gate-level netlist."""

    def __init__(self, name: str):
        self.name = name
        self.nets: Dict[str, Net] = {}
        self.gates: Dict[str, Gate] = {}
        self.flip_flops: Dict[str, FlipFlop] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []
        self._topological_order: Optional[List[Gate]] = None

    # -- construction -----------------------------------------------------------
    def add_net(self, name: str) -> Net:
        if name in self.nets:
            return self.nets[name]
        net = Net(name)
        self.nets[name] = net
        return net

    def add_primary_input(self, name: str) -> Net:
        net = self.add_net(name)
        if name not in self.primary_inputs:
            self.primary_inputs.append(name)
            net.driver = f"PI:{name}"
        self._topological_order = None
        return net

    def add_primary_output(self, name: str) -> Net:
        net = self.add_net(name)
        if name not in self.primary_outputs:
            self.primary_outputs.append(name)
        return net

    def add_gate(self, name: str, gate_type: GateType, inputs: Sequence[str],
                 output: str) -> Gate:
        if name in self.gates or name in self.flip_flops:
            raise NetlistError(f"duplicate instance name: {name!r}")
        for net in inputs:
            self.add_net(net)
        out_net = self.add_net(output)
        if out_net.driver is not None:
            raise NetlistError(f"net {output!r} already has driver {out_net.driver!r}")
        gate = Gate(name=name, gate_type=gate_type, inputs=list(inputs), output=output)
        self.gates[name] = gate
        out_net.driver = name
        self._topological_order = None
        return gate

    def add_flip_flop(self, name: str, data_in: str, data_out: str) -> FlipFlop:
        if name in self.gates or name in self.flip_flops:
            raise NetlistError(f"duplicate instance name: {name!r}")
        self.add_net(data_in)
        out_net = self.add_net(data_out)
        if out_net.driver is not None:
            raise NetlistError(f"net {data_out!r} already has driver {out_net.driver!r}")
        flip_flop = FlipFlop(name=name, data_in=data_in, data_out=data_out)
        self.flip_flops[name] = flip_flop
        out_net.driver = name
        self._topological_order = None
        return flip_flop

    # -- structure queries ----------------------------------------------------
    @property
    def gate_count(self) -> int:
        return len(self.gates)

    @property
    def flip_flop_count(self) -> int:
        return len(self.flip_flops)

    def topological_gates(self) -> List[Gate]:
        """Gates ordered so every gate appears after its input drivers."""
        if self._topological_order is not None:
            return self._topological_order
        # Sources: primary inputs and flip-flop outputs.
        ready_nets = set(self.primary_inputs)
        ready_nets.update(ff.data_out for ff in self.flip_flops.values())
        # Also treat undriven nets as sources (tie-offs / dangling inputs).
        for net in self.nets.values():
            if net.driver is None:
                ready_nets.add(net.name)

        consumers: Dict[str, List[Gate]] = {}
        missing: Dict[str, int] = {}
        for gate in self.gates.values():
            count = 0
            for net in gate.inputs:
                if net not in ready_nets:
                    consumers.setdefault(net, []).append(gate)
                    count += 1
            missing[gate.name] = count

        order: List[Gate] = []
        queue = deque(g for g in self.gates.values() if missing[g.name] == 0)
        while queue:
            gate = queue.popleft()
            order.append(gate)
            for consumer in consumers.get(gate.output, []):
                missing[consumer.name] -= 1
                if missing[consumer.name] == 0:
                    queue.append(consumer)
        if len(order) != len(self.gates):
            unresolved = sorted(set(self.gates) - {g.name for g in order})
            raise NetlistError(
                f"netlist {self.name!r} has a combinational cycle involving "
                f"{unresolved[:5]}"
            )
        self._topological_order = order
        return order

    def validate(self) -> None:
        """Check structural sanity; raises :class:`NetlistError` on problems."""
        self.topological_gates()
        for output in self.primary_outputs:
            if output not in self.nets:
                raise NetlistError(f"primary output {output!r} is not a net")
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in self.nets:
                    raise NetlistError(
                        f"gate {gate.name!r} reads unknown net {net!r}"
                    )

    def __repr__(self):
        return (
            f"Netlist({self.name!r}, gates={self.gate_count}, "
            f"flip_flops={self.flip_flop_count}, "
            f"pis={len(self.primary_inputs)}, pos={len(self.primary_outputs)})"
        )
