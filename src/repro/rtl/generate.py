"""Synthetic core generation.

The paper's SoC contains real IP cores (an embedded processor, a DCT core,
a color-conversion core).  Their netlists are not available, so this module
generates synthetic-but-structured scan cores with a requested number of
flip-flops and combinational gates.  The generated circuits are deterministic
for a given seed, acyclic, and every flip-flop input depends on a cone of
other state bits and primary inputs, which is enough for the stuck-at fault
simulation and the RTL-vs-TLM speed comparison to be meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.rtl.gates import GateType
from repro.rtl.netlist import Netlist

_COMBINATIONAL_TYPES = [
    GateType.AND,
    GateType.OR,
    GateType.NAND,
    GateType.NOR,
    GateType.XOR,
    GateType.NOT,
]


@dataclass(frozen=True)
class SyntheticCoreSpec:
    """Parameters of a synthetic scan core."""

    name: str
    flip_flops: int
    gates: int
    primary_inputs: int = 8
    primary_outputs: int = 8
    seed: int = 1
    #: Maximum number of inputs per generated gate.
    max_fanin: int = 3

    def __post_init__(self):
        if self.flip_flops <= 0:
            raise ValueError("a synthetic core needs at least one flip-flop")
        if self.gates < self.flip_flops:
            raise ValueError("need at least one gate per flip-flop")
        if self.primary_inputs <= 0 or self.primary_outputs <= 0:
            raise ValueError("primary input/output counts must be positive")
        if self.max_fanin < 2:
            raise ValueError("max_fanin must be at least 2")


def generate_netlist(spec: SyntheticCoreSpec) -> Netlist:
    """Generate a deterministic synthetic netlist from *spec*."""
    rng = random.Random(spec.seed)
    netlist = Netlist(spec.name)

    input_nets = [f"pi_{i}" for i in range(spec.primary_inputs)]
    for net in input_nets:
        netlist.add_primary_input(net)

    state_nets = [f"ff_{i}_q" for i in range(spec.flip_flops)]

    # Pool of nets a new gate may read: primary inputs, state outputs and the
    # outputs of previously created gates (guarantees acyclicity).
    available = list(input_nets) + list(state_nets)
    gate_outputs = []

    for index in range(spec.gates):
        gate_type = rng.choice(_COMBINATIONAL_TYPES)
        if gate_type is GateType.NOT:
            fanin = 1
        else:
            fanin = rng.randint(2, spec.max_fanin)
        inputs = [rng.choice(available) for _ in range(fanin)]
        output = f"g_{index}_out"
        netlist.add_gate(f"g_{index}", gate_type, inputs, output)
        available.append(output)
        gate_outputs.append(output)

    # Every flip-flop samples one of the later gate outputs so that the state
    # actually depends on the combinational logic.
    for index in range(spec.flip_flops):
        source = gate_outputs[-1 - (index % max(1, len(gate_outputs) // 2))]
        if rng.random() < 0.75 and gate_outputs:
            source = rng.choice(gate_outputs)
        netlist.add_flip_flop(f"ff_{index}", data_in=source,
                              data_out=f"ff_{index}_q")

    # Primary outputs observe a sample of gate outputs and state bits.
    observable = gate_outputs + state_nets
    for index in range(spec.primary_outputs):
        netlist.add_primary_output(rng.choice(observable))

    netlist.validate()
    return netlist
