"""Single stuck-at fault model."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.rtl.netlist import Netlist


@dataclass(frozen=True)
class StuckAtFault:
    """A single stuck-at fault on a net (0 = stuck-at-0, 1 = stuck-at-1)."""

    net: str
    value: int

    def __post_init__(self):
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def __str__(self):
        return f"{self.net}/SA{self.value}"


def enumerate_faults(netlist: Netlist,
                     sample: Optional[int] = None,
                     seed: int = 0) -> List[StuckAtFault]:
    """Enumerate stuck-at faults on every net of *netlist*.

    With *sample* the list is reduced to a reproducible random sample, which
    keeps fault simulation of large synthetic cores tractable while still
    giving statistically meaningful coverage numbers.
    """
    faults = []
    for net_name in sorted(netlist.nets):
        faults.append(StuckAtFault(net_name, 0))
        faults.append(StuckAtFault(net_name, 1))
    if sample is not None and sample < len(faults):
        rng = random.Random(seed)
        faults = rng.sample(faults, sample)
        faults.sort(key=lambda fault: (fault.net, fault.value))
    return faults
