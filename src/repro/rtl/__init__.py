"""Gate-level substrate.

The paper compares transaction-level simulation of complete test schedules
against RTL/gate-level simulation and uses real cores with scan chains.  This
package provides the equivalent substrate in Python:

* combinational/sequential gate-level netlists (:mod:`repro.rtl.netlist`),
* a synthetic netlist generator used to size cores like the paper's processor
  and DCT cores (:mod:`repro.rtl.generate`),
* scan-chain insertion and configuration (:mod:`repro.rtl.scan`),
* a bit-parallel logic simulator and stuck-at fault simulator
  (:mod:`repro.rtl.simulation`, :mod:`repro.rtl.faults`),
* bit-level LFSR/MISR primitives used by the BIST pattern sources
  (:mod:`repro.rtl.lfsr`).
"""

from repro.rtl.gates import Gate, GateType
from repro.rtl.netlist import Net, Netlist, FlipFlop
from repro.rtl.generate import SyntheticCoreSpec, generate_netlist
from repro.rtl.scan import ScanCell, ScanChain, ScanConfiguration, insert_scan
from repro.rtl.faults import StuckAtFault, enumerate_faults
from repro.rtl.simulation import FaultSimulator, LogicSimulator
from repro.rtl.lfsr import LFSR, MISR, STANDARD_POLYNOMIALS

__all__ = [
    "FaultSimulator",
    "FlipFlop",
    "Gate",
    "GateType",
    "LFSR",
    "LogicSimulator",
    "MISR",
    "Net",
    "Netlist",
    "STANDARD_POLYNOMIALS",
    "ScanCell",
    "ScanChain",
    "ScanConfiguration",
    "StuckAtFault",
    "SyntheticCoreSpec",
    "enumerate_faults",
    "generate_netlist",
    "insert_scan",
]
