"""Scan-chain insertion and configuration.

The test wrapper TLM of the paper is constructed from the scan configuration
of a core (for example "32 scan chains" for the processor core, "8 scan
chains" for the DCT core).  This module derives such configurations from a
netlist by partitioning its flip-flops into balanced chains, and also allows
purely descriptive configurations for cores whose netlist is not modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.rtl.netlist import Netlist


@dataclass(frozen=True)
class ScanCell:
    """A scan-enabled flip-flop: position in a chain plus the state bit name."""

    name: str
    chain_index: int
    position: int


@dataclass
class ScanChain:
    """An ordered list of scan cells sharing one scan-in/scan-out pair."""

    index: int
    cells: List[ScanCell] = field(default_factory=list)

    @property
    def length(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)


@dataclass
class ScanConfiguration:
    """The scan structure of a core as seen by the test infrastructure."""

    core_name: str
    chains: List[ScanChain] = field(default_factory=list)

    @property
    def chain_count(self) -> int:
        return len(self.chains)

    @property
    def total_cells(self) -> int:
        return sum(chain.length for chain in self.chains)

    @property
    def max_chain_length(self) -> int:
        """Longest chain; the number of shift cycles per scan load/unload."""
        if not self.chains:
            return 0
        return max(chain.length for chain in self.chains)

    def shift_cycles_per_pattern(self) -> int:
        """Shift cycles needed to load one pattern (and unload the previous
        response concurrently), excluding the capture cycle."""
        return self.max_chain_length

    def cycles_for_patterns(self, pattern_count: int,
                            capture_cycles: int = 1) -> int:
        """Total scan-test cycles for *pattern_count* patterns.

        Loading pattern *i+1* overlaps with unloading response *i*; one final
        unload is required after the last capture.
        """
        if pattern_count <= 0:
            return 0
        shift = self.shift_cycles_per_pattern()
        return pattern_count * (shift + capture_cycles) + shift

    @classmethod
    def describe(cls, core_name: str, chain_count: int,
                 total_cells: int) -> "ScanConfiguration":
        """Create a descriptive configuration without an underlying netlist.

        Cells are distributed over the chains as evenly as possible, exactly
        like :func:`insert_scan` does for real netlists.
        """
        if chain_count <= 0:
            raise ValueError("chain_count must be positive")
        if total_cells < chain_count:
            raise ValueError("need at least one cell per chain")
        chains = []
        base = total_cells // chain_count
        remainder = total_cells % chain_count
        cell_index = 0
        for index in range(chain_count):
            length = base + (1 if index < remainder else 0)
            cells = [
                ScanCell(name=f"{core_name}_sff_{cell_index + position}",
                         chain_index=index, position=position)
                for position in range(length)
            ]
            cell_index += length
            chains.append(ScanChain(index=index, cells=cells))
        return cls(core_name=core_name, chains=chains)


def insert_scan(netlist: Netlist, chain_count: int,
                core_name: Optional[str] = None) -> ScanConfiguration:
    """Partition the flip-flops of *netlist* into *chain_count* balanced chains."""
    if chain_count <= 0:
        raise ValueError("chain_count must be positive")
    flip_flop_names = sorted(netlist.flip_flops)
    if not flip_flop_names:
        raise ValueError(f"netlist {netlist.name!r} has no flip-flops to scan")
    if chain_count > len(flip_flop_names):
        raise ValueError(
            f"cannot build {chain_count} chains from "
            f"{len(flip_flop_names)} flip-flops"
        )
    chains = [ScanChain(index=i) for i in range(chain_count)]
    for index, name in enumerate(flip_flop_names):
        chain = chains[index % chain_count]
        chain.cells.append(
            ScanCell(name=name, chain_index=chain.index, position=len(chain.cells))
        )
    return ScanConfiguration(core_name=core_name or netlist.name, chains=chains)
