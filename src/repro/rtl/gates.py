"""Gate primitives.

Gates operate on integer bit-vectors so that the simulators can evaluate many
patterns in parallel (bit-parallel simulation): bit *i* of every net value
belongs to pattern *i* of the current batch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List


class GateType(enum.Enum):
    """Supported combinational gate types."""

    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    NOT = "not"
    BUF = "buf"


def evaluate_gate(gate_type: GateType, inputs: List[int], mask: int) -> int:
    """Evaluate *gate_type* on bit-parallel input words.

    *mask* selects the valid pattern bits (e.g. ``(1 << batch) - 1``); it is
    applied to inverting gates so that unused high bits stay zero.
    """
    if not inputs:
        raise ValueError("gate evaluation requires at least one input")
    if gate_type is GateType.BUF:
        return inputs[0] & mask
    if gate_type is GateType.NOT:
        return ~inputs[0] & mask
    if gate_type in (GateType.AND, GateType.NAND):
        value = inputs[0]
        for word in inputs[1:]:
            value &= word
        if gate_type is GateType.NAND:
            value = ~value
        return value & mask
    if gate_type in (GateType.OR, GateType.NOR):
        value = inputs[0]
        for word in inputs[1:]:
            value |= word
        if gate_type is GateType.NOR:
            value = ~value
        return value & mask
    if gate_type in (GateType.XOR, GateType.XNOR):
        value = inputs[0]
        for word in inputs[1:]:
            value ^= word
        if gate_type is GateType.XNOR:
            value = ~value
        return value & mask
    raise ValueError(f"unsupported gate type: {gate_type!r}")


@dataclass
class Gate:
    """A combinational gate instance in a netlist."""

    name: str
    gate_type: GateType
    inputs: List[str] = field(default_factory=list)
    output: str = ""

    def evaluate(self, values: dict, mask: int) -> int:
        """Evaluate the gate given a net-name -> word mapping."""
        return evaluate_gate(
            self.gate_type, [values[net] for net in self.inputs], mask
        )
