"""Bit-level LFSR and MISR primitives.

These are the structures behind the BIST pattern sources and response
compactors of the paper: a pseudo-random pattern generator (LFSR) feeding the
scan chains and a multiple-input signature register (MISR) compacting the
responses into a signature word.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Primitive characteristic polynomials (tap positions, 1-based from the LSB)
#: for common register widths.  Taken from standard LFSR tap tables.
STANDARD_POLYNOMIALS: Dict[int, Sequence[int]] = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}


class LFSR:
    """A Fibonacci linear-feedback shift register."""

    def __init__(self, width: int, seed: int = 1,
                 taps: Sequence[int] = None):
        if width <= 0:
            raise ValueError("LFSR width must be positive")
        if taps is None:
            if width not in STANDARD_POLYNOMIALS:
                raise ValueError(
                    f"no standard polynomial for width {width}; pass taps="
                )
            taps = STANDARD_POLYNOMIALS[width]
        if any(tap < 1 or tap > width for tap in taps):
            raise ValueError("tap positions must be within 1..width")
        if seed % (1 << width) == 0:
            raise ValueError("LFSR seed must be non-zero modulo 2**width")
        self.width = width
        self.taps = tuple(taps)
        self.state = seed & ((1 << width) - 1)

    def step(self) -> int:
        """Advance by one clock; returns the new least-significant bit."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        return feedback

    def next_word(self, bits: int) -> int:
        """Produce *bits* pseudo-random bits as an integer (LSB first)."""
        word = 0
        for position in range(bits):
            word |= self.step() << position
        return word

    def next_pattern(self, bits: int) -> List[int]:
        """Produce *bits* pseudo-random bits as a list of 0/1 values."""
        return [self.step() for _ in range(bits)]


class MISR:
    """A multiple-input signature register compacting response words."""

    def __init__(self, width: int, seed: int = 0,
                 taps: Sequence[int] = None):
        if width <= 0:
            raise ValueError("MISR width must be positive")
        if taps is None:
            if width not in STANDARD_POLYNOMIALS:
                raise ValueError(
                    f"no standard polynomial for width {width}; pass taps="
                )
            taps = STANDARD_POLYNOMIALS[width]
        self.width = width
        self.taps = tuple(taps)
        self.state = seed & ((1 << width) - 1)

    def compact(self, word: int) -> int:
        """Fold one response word into the signature; returns the new state."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        self.state ^= word & ((1 << self.width) - 1)
        return self.state

    def compact_sequence(self, words) -> int:
        """Fold a sequence of response words; returns the final signature."""
        for word in words:
            self.compact(word)
        return self.state

    @property
    def signature(self) -> int:
        return self.state
