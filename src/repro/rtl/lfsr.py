"""Bit-level LFSR and MISR primitives.

These are the structures behind the BIST pattern sources and response
compactors of the paper: a pseudo-random pattern generator (LFSR) feeding the
scan chains and a multiple-input signature register (MISR) compacting the
responses into a signature word.

Both registers are linear maps over GF(2), which the module exploits for
*leap-ahead* stepping: the feedback bit after ``i`` steps is the parity of
``state & F_i`` for a precomputed mask ``F_i`` (``F_0`` is the tap mask and
``F_{i+1} = (F_i >> 1) ^ (tap_mask if F_i & 1 else 0)``), and eight steps at
a time are resolved through per-byte XOR tables.  ``next_word``/``leap``
therefore advance 8 bits per handful of C-level table lookups instead of
looping per bit in Python, while producing bit-identical sequences to
repeated :meth:`LFSR.step` calls (pinned by the differential property
tests).
"""

from __future__ import annotations

import functools
from typing import Dict, List, Sequence

#: Primitive characteristic polynomials (tap positions, 1-based from the LSB)
#: for common register widths.  Taken from standard LFSR tap tables.
STANDARD_POLYNOMIALS: Dict[int, Sequence[int]] = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
    48: (48, 47, 21, 20),
    64: (64, 63, 61, 60),
}

#: Bit-reversal table for one byte (used to fold a leapt output chunk back
#: into the low bits of the register state).
_REV8 = tuple(int(f"{byte:08b}"[::-1], 2) for byte in range(256))


@functools.lru_cache(maxsize=512)
def _feedback_masks(width: int, taps: Sequence[int], count: int) -> tuple:
    """Masks ``F_0 .. F_{count-1}``: the feedback bit produced on step ``i``
    (counted from the current state) is ``parity(state & F_i)``."""
    tap_mask = 0
    for tap in taps:
        tap_mask |= 1 << (tap - 1)
    masks = []
    mask = tap_mask
    for _ in range(count):
        masks.append(mask)
        mask = (mask >> 1) ^ (tap_mask if mask & 1 else 0)
    return tuple(masks)


@functools.lru_cache(maxsize=64)
def _chunk_tables(width: int, taps: Sequence[int]) -> tuple:
    """Per-byte XOR tables resolving eight steps at once.

    ``tables[b][v]`` is the 8-bit output chunk (step-``i`` feedback at bit
    ``i``) contributed by value ``v`` of state byte ``b``; the chunks of all
    state bytes XOR together.  Only built for ``width >= 8``.
    """
    masks = _feedback_masks(width, taps, 8)
    byte_count = (width + 7) // 8
    tables = []
    for byte_index in range(byte_count):
        shift = 8 * byte_index
        byte_masks = [(mask >> shift) & 0xFF for mask in masks]
        table = []
        for value in range(256):
            chunk = 0
            for bit, byte_mask in enumerate(byte_masks):
                chunk |= ((value & byte_mask).bit_count() & 1) << bit
            table.append(chunk)
        tables.append(tuple(table))
    return tuple(tables)


class _LinearRegister:
    """Shared leap-ahead machinery of :class:`LFSR` and :class:`MISR`.

    Registers of width >= 8 advance eight steps per table lookup round;
    narrower (custom-tap) registers fall back to mask-recurrence stepping,
    which is still branch-free per bit but remains O(count).
    """

    width: int
    taps: tuple
    state: int
    _tap_mask: int

    def _advance(self, count: int) -> int:
        """Advance the register by *count* zero-input steps; returns the
        produced feedback bits as an integer (step ``i``'s bit at position
        ``i``).  Bit-identical to *count* single steps."""
        if count < 0:
            raise ValueError("cannot leap a negative number of steps")
        if count == 0:
            return 0
        width = self.width
        state = self.state
        mask = (1 << width) - 1
        word = 0
        produced = 0
        if width >= 8:
            tables = _chunk_tables(width, self.taps)
            rev8 = _REV8
            while count - produced >= 8:
                chunk = 0
                value = state
                for table in tables:
                    chunk ^= table[value & 0xFF]
                    value >>= 8
                word |= chunk << produced
                state = ((state << 8) | rev8[chunk]) & mask
                produced += 8
        remainder = count - produced
        if remainder:
            # The chunk loop above leaves remainder < 8 for width >= 8;
            # narrower registers take this path for the whole count, so the
            # masks are generated on the fly (O(1) memory) instead of
            # materializing an O(count) cached tuple.
            tap_mask = self._tap_mask
            feedback_mask = tap_mask
            tail = 0
            for bit in range(remainder):
                tail |= ((state & feedback_mask).bit_count() & 1) << bit
                feedback_mask = ((feedback_mask >> 1)
                                 ^ (tap_mask if feedback_mask & 1 else 0))
            word |= tail << produced
            # Fold the produced bits into the state: after ``r`` steps the
            # low ``r`` bits hold the outputs newest-first.
            low = 0
            for bit in range(min(remainder, width)):
                low |= ((tail >> (remainder - 1 - bit)) & 1) << bit
            state = ((state << remainder) | low) & mask
        self.state = state
        return word


class LFSR(_LinearRegister):
    """A Fibonacci linear-feedback shift register."""

    def __init__(self, width: int, seed: int = 1,
                 taps: Sequence[int] = None):
        if width <= 0:
            raise ValueError("LFSR width must be positive")
        if taps is None:
            if width not in STANDARD_POLYNOMIALS:
                raise ValueError(
                    f"no standard polynomial for width {width}; pass taps="
                )
            taps = STANDARD_POLYNOMIALS[width]
        if any(tap < 1 or tap > width for tap in taps):
            raise ValueError("tap positions must be within 1..width")
        if seed % (1 << width) == 0:
            raise ValueError("LFSR seed must be non-zero modulo 2**width")
        self.width = width
        self.taps = tuple(taps)
        self._tap_mask = _feedback_masks(width, self.taps, 1)[0]
        self.state = seed & ((1 << width) - 1)

    def step(self) -> int:
        """Advance by one clock; returns the new least-significant bit."""
        feedback = (self.state & self._tap_mask).bit_count() & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        return feedback

    def leap(self, steps: int) -> int:
        """Advance by *steps* clocks at once; returns the new state.

        Equivalent to calling :meth:`step` *steps* times (table-driven, so
        large pattern counts do not loop per bit in Python).
        """
        self._advance(steps)
        return self.state

    def next_word(self, bits: int) -> int:
        """Produce *bits* pseudo-random bits as an integer (LSB first)."""
        return self._advance(bits)

    def next_pattern(self, bits: int) -> List[int]:
        """Produce *bits* pseudo-random bits as a list of 0/1 values."""
        word = self._advance(bits)
        return [(word >> position) & 1 for position in range(bits)]


class MISR(_LinearRegister):
    """A multiple-input signature register compacting response words."""

    def __init__(self, width: int, seed: int = 0,
                 taps: Sequence[int] = None):
        if width <= 0:
            raise ValueError("MISR width must be positive")
        if taps is None:
            if width not in STANDARD_POLYNOMIALS:
                raise ValueError(
                    f"no standard polynomial for width {width}; pass taps="
                )
            taps = STANDARD_POLYNOMIALS[width]
        self.width = width
        self.taps = tuple(taps)
        self._tap_mask = _feedback_masks(width, self.taps, 1)[0]
        self._word_mask = (1 << width) - 1
        self.state = seed & self._word_mask

    def compact(self, word: int) -> int:
        """Fold one response word into the signature; returns the new state."""
        state = self.state
        feedback = (state & self._tap_mask).bit_count() & 1
        self.state = (((state << 1) | feedback) & self._word_mask) \
            ^ (word & self._word_mask)
        return self.state

    def compact_sequence(self, words) -> int:
        """Fold a sequence of response words; returns the final signature."""
        tap_mask = self._tap_mask
        word_mask = self._word_mask
        state = self.state
        for word in words:
            state = (((state << 1) | ((state & tap_mask).bit_count() & 1))
                     & word_mask) ^ (word & word_mask)
        self.state = state
        return state

    def leap(self, steps: int) -> int:
        """Advance by *steps* zero-input shifts at once; returns the state.

        Equivalent to ``compact(0)`` called *steps* times (idle cycles
        between response bursts no longer loop per bit in Python).
        """
        self._advance(steps)
        return self.state

    @property
    def signature(self) -> int:
        return self.state
