"""Bit-parallel logic simulation and stuck-at fault simulation.

The simulators evaluate up to 64 patterns per pass by packing one pattern per
bit of a Python integer.  Besides producing responses and fault coverage, the
:class:`LogicSimulator` counts elementary evaluation events; the speed
comparison of the paper (RTL/gate-level versus transaction level) is
reproduced by comparing this per-cycle, per-gate event count against the
per-transaction event count of the TLM simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.rtl.faults import StuckAtFault
from repro.rtl.netlist import Netlist
from repro.rtl.scan import ScanConfiguration

#: Number of patterns packed into one simulation pass.
BATCH_BITS = 64


def _all_ones(bits: int) -> int:
    return (1 << bits) - 1


@dataclass
class ScanPattern:
    """A scan test pattern: values for every flip-flop and primary input."""

    flip_flop_values: Dict[str, int]
    primary_input_values: Dict[str, int]


@dataclass
class ScanResponse:
    """The response to a scan pattern: captured state and primary outputs."""

    flip_flop_values: Dict[str, int]
    primary_output_values: Dict[str, int]

    def as_tuple(self):
        return (
            tuple(sorted(self.flip_flop_values.items())),
            tuple(sorted(self.primary_output_values.items())),
        )


class LogicSimulator:
    """Good-machine, bit-parallel gate-level simulator."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.topological_gates()
        #: Cumulative number of gate evaluations performed (RTL "events").
        self.gate_evaluations = 0
        #: Cumulative number of simulated clock cycles.
        self.simulated_cycles = 0

    # -- combinational core -----------------------------------------------------
    def evaluate(self, input_words: Dict[str, int], state_words: Dict[str, int],
                 mask: int = 1, fault: Optional[StuckAtFault] = None) -> Dict[str, int]:
        """Evaluate the combinational logic for a batch of patterns.

        *input_words* maps primary-input names to packed pattern words,
        *state_words* maps flip-flop names to packed present-state words.
        Returns the value of every net.
        """
        values: Dict[str, int] = {}
        fault_net = fault.net if fault else None
        fault_word = None
        if fault is not None:
            fault_word = mask if fault.value else 0

        for net in self.netlist.nets:
            values[net] = 0
        for name, word in input_words.items():
            values[name] = word & mask
        for ff_name, word in state_words.items():
            flip_flop = self.netlist.flip_flops[ff_name]
            values[flip_flop.data_out] = word & mask
        if fault_net is not None and fault_net in values:
            if fault_net in input_words or any(
                self.netlist.flip_flops[ff].data_out == fault_net
                for ff in state_words
            ) or self.netlist.nets[fault_net].driver is None:
                values[fault_net] = fault_word

        for gate in self._order:
            word = gate.evaluate(values, mask)
            if gate.output == fault_net:
                word = fault_word
            values[gate.output] = word
        self.gate_evaluations += len(self._order)
        return values

    # -- sequential simulation ------------------------------------------------------
    def capture(self, values: Dict[str, int], mask: int = 1) -> Dict[str, int]:
        """Compute the next state of every flip-flop from net *values*."""
        next_state = {}
        for name, flip_flop in self.netlist.flip_flops.items():
            next_state[name] = values[flip_flop.data_in] & mask
        self.simulated_cycles += 1
        return next_state

    def run_cycles(self, cycles: int, input_words: Optional[Dict[str, int]] = None,
                   initial_state: Optional[Dict[str, int]] = None,
                   mask: int = 1) -> Dict[str, int]:
        """Free-running simulation for *cycles* clock cycles.

        Used by the speed-comparison benchmark; inputs are held constant.
        """
        input_words = input_words or {pi: 0 for pi in self.netlist.primary_inputs}
        state = initial_state or {ff: 0 for ff in self.netlist.flip_flops}
        for _ in range(cycles):
            values = self.evaluate(input_words, state, mask)
            state = self.capture(values, mask)
        return state

    # -- scan-based test application -------------------------------------------------
    def apply_scan_pattern(self, pattern: ScanPattern,
                           fault: Optional[StuckAtFault] = None,
                           scan_config: Optional[ScanConfiguration] = None,
                           count_shift_cycles: bool = True) -> ScanResponse:
        """Apply one scan pattern (load state, one capture cycle, unload).

        The shift cycles themselves do not change the combinational response,
        so they are only *accounted* (to keep the RTL cycle count honest) and
        not individually simulated.
        """
        state = {ff: value & 1 for ff, value in pattern.flip_flop_values.items()}
        inputs = {pi: value & 1 for pi, value in pattern.primary_input_values.items()}
        for pi in self.netlist.primary_inputs:
            inputs.setdefault(pi, 0)
        for ff in self.netlist.flip_flops:
            state.setdefault(ff, 0)

        values = self.evaluate(inputs, state, mask=1, fault=fault)
        next_state = self.capture(values, mask=1)
        outputs = {po: values[po] & 1 for po in self.netlist.primary_outputs}

        if count_shift_cycles and scan_config is not None:
            self.simulated_cycles += scan_config.shift_cycles_per_pattern()
        return ScanResponse(flip_flop_values=next_state,
                            primary_output_values=outputs)


class FaultSimulator:
    """Serial-fault, pattern-parallel stuck-at fault simulator."""

    def __init__(self, netlist: Netlist,
                 scan_config: Optional[ScanConfiguration] = None):
        self.netlist = netlist
        self.scan_config = scan_config
        self.simulator = LogicSimulator(netlist)

    # -- pattern packing ------------------------------------------------------------
    def _pack_patterns(self, patterns: Sequence[ScanPattern]):
        """Pack up to :data:`BATCH_BITS` patterns into parallel words."""
        mask = _all_ones(len(patterns))
        inputs = {pi: 0 for pi in self.netlist.primary_inputs}
        state = {ff: 0 for ff in self.netlist.flip_flops}
        for bit, pattern in enumerate(patterns):
            for pi in self.netlist.primary_inputs:
                if pattern.primary_input_values.get(pi, 0) & 1:
                    inputs[pi] |= 1 << bit
            for ff in self.netlist.flip_flops:
                if pattern.flip_flop_values.get(ff, 0) & 1:
                    state[ff] |= 1 << bit
        return inputs, state, mask

    def _responses(self, inputs, state, mask, fault=None):
        values = self.simulator.evaluate(inputs, state, mask, fault=fault)
        next_state = {
            name: values[ff.data_in] & mask
            for name, ff in self.netlist.flip_flops.items()
        }
        outputs = {po: values[po] & mask for po in self.netlist.primary_outputs}
        return next_state, outputs

    # -- fault simulation -----------------------------------------------------------
    def detected_faults(self, patterns: Sequence[ScanPattern],
                        faults: Iterable[StuckAtFault]) -> List[StuckAtFault]:
        """Return the subset of *faults* detected by *patterns*."""
        faults = list(faults)
        detected: List[StuckAtFault] = []
        remaining = set(faults)
        for start in range(0, len(patterns), BATCH_BITS):
            batch = patterns[start:start + BATCH_BITS]
            if not batch:
                break
            inputs, state, mask = self._pack_patterns(batch)
            good_state, good_outputs = self._responses(inputs, state, mask)
            newly_detected = []
            for fault in remaining:
                bad_state, bad_outputs = self._responses(inputs, state, mask,
                                                         fault=fault)
                if bad_state != good_state or bad_outputs != good_outputs:
                    newly_detected.append(fault)
            for fault in newly_detected:
                remaining.discard(fault)
                detected.append(fault)
            if not remaining:
                break
        return detected

    def fault_coverage(self, patterns: Sequence[ScanPattern],
                       faults: Iterable[StuckAtFault]) -> float:
        """Fraction of *faults* detected by *patterns* (0.0 .. 1.0)."""
        faults = list(faults)
        if not faults:
            return 1.0
        detected = self.detected_faults(patterns, faults)
        return len(detected) / len(faults)
