"""Classic memory fault models.

Three families are provided, enough to differentiate the detection power of
the march tests in :mod:`repro.memory.march`:

* stuck-at cell faults (a cell, or one of its bits, cannot change),
* transition faults (a cell cannot make a particular 0->1 or 1->0 transition),
* idempotent coupling faults (a write on an aggressor cell forces a value
  into a victim cell).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.array import MemoryArray


class MemoryFault:
    """Base class of memory fault models.

    Fault models hook into the read/write path of
    :class:`~repro.memory.array.MemoryArray`:

    * :meth:`on_read` may corrupt the value returned by a read,
    * :meth:`on_write` may corrupt the value about to be stored,
    * :meth:`after_write` may corrupt *other* cells (coupling faults).
    """

    def validate(self, memory: "MemoryArray") -> None:
        """Check the fault parameters against the target array."""

    def on_read(self, memory: "MemoryArray", address: int, value: int) -> int:
        return value

    def on_write(self, memory: "MemoryArray", address: int, value: int) -> int:
        return value

    def after_write(self, memory: "MemoryArray", address: int, value: int) -> None:
        return None


class StuckAtCellFault(MemoryFault):
    """Bit *bit* of cell *address* is stuck at *value*."""

    def __init__(self, address: int, bit: int, value: int):
        if value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        if bit < 0:
            raise ValueError("bit index must be non-negative")
        self.address = address
        self.bit = bit
        self.value = value

    def validate(self, memory: "MemoryArray") -> None:
        if not 0 <= self.address < memory.words:
            raise ValueError(f"fault address {self.address:#x} out of range")
        if self.bit >= memory.word_bits:
            raise ValueError(f"fault bit {self.bit} exceeds word width")

    def _force(self, value: int) -> int:
        if self.value:
            return value | (1 << self.bit)
        return value & ~(1 << self.bit)

    def on_read(self, memory, address, value):
        if address == self.address:
            return self._force(value)
        return value

    def on_write(self, memory, address, value):
        if address == self.address:
            return self._force(value)
        return value

    def __repr__(self):
        return f"StuckAtCellFault(addr={self.address:#x}, bit={self.bit}, value={self.value})"


class TransitionFault(MemoryFault):
    """Bit *bit* of cell *address* cannot make the *rising* (0->1) or falling
    (1->0) transition."""

    def __init__(self, address: int, bit: int, rising: bool):
        self.address = address
        self.bit = bit
        self.rising = rising

    def validate(self, memory: "MemoryArray") -> None:
        if not 0 <= self.address < memory.words:
            raise ValueError(f"fault address {self.address:#x} out of range")
        if self.bit >= memory.word_bits:
            raise ValueError(f"fault bit {self.bit} exceeds word width")

    def on_write(self, memory, address, value):
        if address != self.address:
            return value
        old_bit = (memory.raw_read(address) >> self.bit) & 1
        new_bit = (value >> self.bit) & 1
        blocked = (self.rising and old_bit == 0 and new_bit == 1) or (
            not self.rising and old_bit == 1 and new_bit == 0
        )
        if blocked:
            if old_bit:
                return value | (1 << self.bit)
            return value & ~(1 << self.bit)
        return value

    def __repr__(self):
        kind = "rising" if self.rising else "falling"
        return f"TransitionFault(addr={self.address:#x}, bit={self.bit}, {kind})"


class CouplingFault(MemoryFault):
    """Idempotent coupling fault: a write of *trigger_value* to bit *bit* of the
    aggressor cell forces *forced_value* into the same bit of the victim cell."""

    def __init__(self, aggressor: int, victim: int, bit: int = 0,
                 trigger_value: int = 1, forced_value: int = 1):
        if aggressor == victim:
            raise ValueError("aggressor and victim must be different cells")
        if trigger_value not in (0, 1) or forced_value not in (0, 1):
            raise ValueError("trigger and forced values must be 0 or 1")
        self.aggressor = aggressor
        self.victim = victim
        self.bit = bit
        self.trigger_value = trigger_value
        self.forced_value = forced_value

    def validate(self, memory: "MemoryArray") -> None:
        for address in (self.aggressor, self.victim):
            if not 0 <= address < memory.words:
                raise ValueError(f"fault address {address:#x} out of range")
        if self.bit >= memory.word_bits:
            raise ValueError(f"fault bit {self.bit} exceeds word width")

    def after_write(self, memory, address, value):
        if address != self.aggressor:
            return
        written_bit = (value >> self.bit) & 1
        if written_bit != self.trigger_value:
            return
        victim_value = memory.raw_read(self.victim)
        if self.forced_value:
            victim_value |= 1 << self.bit
        else:
            victim_value &= ~(1 << self.bit)
        memory.raw_write(self.victim, victim_value)

    def __repr__(self):
        return (
            f"CouplingFault(aggressor={self.aggressor:#x}, victim={self.victim:#x}, "
            f"bit={self.bit}, trigger={self.trigger_value}, forces={self.forced_value})"
        )
