"""March tests and data-background pattern tests.

A march test is a sequence of *march elements*; each element walks over all
addresses in a fixed order and applies a short sequence of read/write
operations per address.  The classic algorithms used in the paper's case study
(MATS+ plus "pattern tests") and several others are provided, together with a
runner that applies them to a :class:`~repro.memory.array.MemoryArray` and
reports detected failures and the exact operation count (from which the test
length in cycles is derived).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


class AddressOrder(enum.Enum):
    """Address order of a march element."""

    UP = "up"          # ascending addresses
    DOWN = "down"      # descending addresses
    ANY = "any"        # order irrelevant (implemented as ascending)


@dataclass(frozen=True)
class MarchOperation:
    """A single read or write within a march element.

    ``kind`` is ``"r"`` or ``"w"``; ``value`` is the data background index
    (0 -> background, 1 -> inverted background).
    """

    kind: str
    value: int

    def __post_init__(self):
        if self.kind not in ("r", "w"):
            raise ValueError("march operation kind must be 'r' or 'w'")
        if self.value not in (0, 1):
            raise ValueError("march operation value must be 0 or 1")

    def __str__(self):
        return f"{self.kind}{self.value}"


@dataclass(frozen=True)
class MarchElement:
    """One element of a march test: an address order plus operations."""

    order: AddressOrder
    operations: Tuple[MarchOperation, ...]

    @classmethod
    def parse(cls, text: str) -> "MarchElement":
        """Parse e.g. ``"up(r0,w1)"`` or ``"down(r1,w0,r0)"``."""
        text = text.strip()
        open_paren = text.index("(")
        order_name = text[:open_paren].strip().lower()
        order = {"up": AddressOrder.UP, "down": AddressOrder.DOWN,
                 "any": AddressOrder.ANY}[order_name]
        body = text[open_paren + 1:text.rindex(")")]
        operations = []
        for token in body.split(","):
            token = token.strip()
            operations.append(MarchOperation(token[0], int(token[1])))
        return cls(order=order, operations=tuple(operations))

    @property
    def operation_count(self) -> int:
        return len(self.operations)

    def __str__(self):
        symbol = {"up": "⇑", "down": "⇓", "any": "⇕"}[self.order.value]
        ops = ",".join(str(op) for op in self.operations)
        return f"{symbol}({ops})"


@dataclass(frozen=True)
class MarchTest:
    """A complete march algorithm."""

    name: str
    elements: Tuple[MarchElement, ...]

    @classmethod
    def from_notation(cls, name: str, elements: Sequence[str]) -> "MarchTest":
        return cls(name=name, elements=tuple(MarchElement.parse(e) for e in elements))

    @property
    def operations_per_cell(self) -> int:
        """Total operations applied to each cell (the "xN" complexity factor)."""
        return sum(element.operation_count for element in self.elements)

    def operation_count(self, words: int) -> int:
        """Total number of memory operations for an array of *words* cells."""
        return self.operations_per_cell * words

    def __str__(self):
        return f"{self.name}: " + " ".join(str(e) for e in self.elements)


# -- classic algorithms ---------------------------------------------------------------

MATS = MarchTest.from_notation("MATS", ["any(w0)", "any(r0,w1)", "any(r1)"])
MATS_PLUS = MarchTest.from_notation(
    "MATS+", ["any(w0)", "up(r0,w1)", "down(r1,w0)"]
)
MATS_PLUS_PLUS = MarchTest.from_notation(
    "MATS++", ["any(w0)", "up(r0,w1)", "down(r1,w0,r0)"]
)
MARCH_X = MarchTest.from_notation(
    "MARCH X", ["any(w0)", "up(r0,w1)", "down(r1,w0)", "any(r0)"]
)
MARCH_Y = MarchTest.from_notation(
    "MARCH Y", ["any(w0)", "up(r0,w1,r1)", "down(r1,w0,r0)", "any(r0)"]
)
MARCH_C_MINUS = MarchTest.from_notation(
    "MARCH C-",
    ["any(w0)", "up(r0,w1)", "up(r1,w0)", "down(r0,w1)", "down(r1,w0)", "any(r0)"],
)

#: Data backgrounds used by the checkerboard pattern test.
CHECKERBOARD = ("checkerboard", "inverse checkerboard")


@dataclass
class MarchTestResult:
    """Outcome of running a march test against a memory array."""

    test_name: str
    words: int
    operations: int
    failures: List[Tuple[int, int, int]] = field(default_factory=list)
    #: Reads and writes actually issued (cross-check against ``operations``).
    reads: int = 0
    writes: int = 0

    @property
    def passed(self) -> bool:
        return not self.failures

    @property
    def failing_addresses(self) -> List[int]:
        return sorted({address for address, _, _ in self.failures})


def _addresses(words: int, order: AddressOrder, stride: int = 1):
    """Addresses visited by one march element.

    With a *stride* the same subsampled address set must be visited by
    ascending and descending elements, so the descending walk starts at the
    highest multiple of the stride rather than at ``words - 1``.
    """
    if order is AddressOrder.DOWN:
        highest = ((words - 1) // stride) * stride
        return range(highest, -1, -stride)
    return range(0, words, stride)


def run_march_test(memory, march: MarchTest, background: int = 0,
                   stride: int = 1,
                   max_failures: Optional[int] = None) -> MarchTestResult:
    """Run *march* against *memory* and collect mismatching reads.

    *background* is the all-zero data value (value index 0); value index 1 is
    its bitwise complement.  *stride* subsamples the address space, which the
    TLM models use to keep simulations of megabyte arrays fast while
    preserving the operation-per-cell structure (the reported operation count
    is always the full-array count).
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    data = {0: background & memory.word_mask,
            1: ~background & memory.word_mask}
    result = MarchTestResult(
        test_name=march.name,
        words=memory.words,
        operations=march.operation_count(memory.words),
    )
    for element in march.elements:
        for address in _addresses(memory.words, element.order, stride):
            for operation in element.operations:
                expected = data[operation.value]
                if operation.kind == "w":
                    memory.write(address, expected)
                    result.writes += 1
                else:
                    observed = memory.read(address)
                    result.reads += 1
                    if observed != expected:
                        if max_failures is None or len(result.failures) < max_failures:
                            result.failures.append((address, expected, observed))
    return result


def run_pattern_test(memory, patterns: Sequence[int] = (0x55, 0xAA),
                     stride: int = 1,
                     max_failures: Optional[int] = None) -> MarchTestResult:
    """Run a data-background (checkerboard style) pattern test.

    Each pattern is written to every cell and read back; alternating cells get
    the inverted pattern so that neighbouring cells hold opposite data, the
    classic checkerboard background.
    """
    if stride <= 0:
        raise ValueError("stride must be positive")
    result = MarchTestResult(
        test_name="PATTERN",
        words=memory.words,
        operations=2 * len(patterns) * memory.words,
    )
    for pattern in patterns:
        pattern &= memory.word_mask
        inverse = ~pattern & memory.word_mask
        for address in range(0, memory.words, stride):
            value = pattern if address % 2 == 0 else inverse
            memory.write(address, value)
            result.writes += 1
        for address in range(0, memory.words, stride):
            expected = pattern if address % 2 == 0 else inverse
            observed = memory.read(address)
            result.reads += 1
            if observed != expected:
                if max_failures is None or len(result.failures) < max_failures:
                    result.failures.append((address, expected, observed))
    return result
