"""Fault-injectable memory array model."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.memory.faults import MemoryFault


class MemoryArray:
    """A word-addressable memory with optional injected faults.

    The array is stored sparsely (only written words occupy space) so a
    1 MByte array can be modeled without allocating a megabyte per instance.
    Reads of never-written words return the *background* value.
    """

    def __init__(self, words: int, word_bits: int = 8, background: int = 0):
        if words <= 0:
            raise ValueError("memory size must be positive")
        if word_bits <= 0:
            raise ValueError("word width must be positive")
        self.words = words
        self.word_bits = word_bits
        self.word_mask = (1 << word_bits) - 1
        self.background = background & self.word_mask
        self._contents: Dict[int, int] = {}
        self._faults: List[MemoryFault] = []
        #: Operation counters (useful to validate march-test lengths).
        self.read_count = 0
        self.write_count = 0

    # -- fault management -------------------------------------------------------
    def inject_fault(self, fault: MemoryFault) -> None:
        """Attach a fault model to the array."""
        fault.validate(self)
        self._faults.append(fault)

    def clear_faults(self) -> None:
        self._faults.clear()

    @property
    def faults(self) -> List[MemoryFault]:
        return list(self._faults)

    # -- access ----------------------------------------------------------------------
    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise IndexError(
                f"address {address:#x} outside memory of {self.words} words"
            )

    def raw_read(self, address: int) -> int:
        """Read the stored value without fault effects (used by fault models)."""
        return self._contents.get(address, self.background)

    def raw_write(self, address: int, value: int) -> None:
        """Write the stored value without fault effects (used by fault models)."""
        self._contents[address] = value & self.word_mask

    def read(self, address: int) -> int:
        """Functional read, including the effect of injected faults."""
        self._check_address(address)
        self.read_count += 1
        value = self.raw_read(address)
        for fault in self._faults:
            value = fault.on_read(self, address, value)
        return value & self.word_mask

    def write(self, address: int, value: int) -> None:
        """Functional write, including the effect of injected faults."""
        self._check_address(address)
        self.write_count += 1
        value &= self.word_mask
        for fault in self._faults:
            value = fault.on_write(self, address, value)
        self.raw_write(address, value)
        for fault in self._faults:
            fault.after_write(self, address, value)

    # -- bulk helpers --------------------------------------------------------------
    def fill(self, value: int) -> None:
        """Set every word to *value* (bypasses fault effects)."""
        self.background = value & self.word_mask
        self._contents = {}

    def load(self, data: Iterable[int], base_address: int = 0) -> None:
        """Load a block of words starting at *base_address* (no fault effects)."""
        for offset, value in enumerate(data):
            address = base_address + offset
            self._check_address(address)
            self.raw_write(address, value)

    def dump(self, base_address: int, length: int) -> List[int]:
        """Read a block of words without fault effects."""
        self._check_address(base_address)
        self._check_address(base_address + length - 1)
        return [self.raw_read(base_address + offset) for offset in range(length)]

    def reset_counters(self) -> None:
        self.read_count = 0
        self.write_count = 0

    def __len__(self) -> int:
        return self.words

    def __repr__(self):
        return (
            f"MemoryArray(words={self.words}, word_bits={self.word_bits}, "
            f"faults={len(self._faults)})"
        )
