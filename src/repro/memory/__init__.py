"""Memory substrate: arrays, fault models and march tests.

The paper's SoC contains a 1 MByte embedded memory core tested with a MATS+
march and pattern tests, either by a BIST controller (test sequence 6) or by
the embedded processor (test sequence 7).  This package provides the
algorithmic substance behind both: a fault-injectable memory-array model, the
classic memory fault models, and a library of march tests plus data-background
pattern tests.
"""

from repro.memory.array import MemoryArray
from repro.memory.faults import (
    CouplingFault,
    MemoryFault,
    StuckAtCellFault,
    TransitionFault,
)
from repro.memory.march import (
    AddressOrder,
    MarchElement,
    MarchOperation,
    MarchTest,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    CHECKERBOARD,
    run_march_test,
    run_pattern_test,
)

__all__ = [
    "AddressOrder",
    "CHECKERBOARD",
    "CouplingFault",
    "MATS",
    "MATS_PLUS",
    "MATS_PLUS_PLUS",
    "MARCH_C_MINUS",
    "MARCH_X",
    "MARCH_Y",
    "MarchElement",
    "MarchOperation",
    "MarchTest",
    "MemoryArray",
    "MemoryFault",
    "StuckAtCellFault",
    "TransitionFault",
    "run_march_test",
    "run_pattern_test",
]
