"""Plain-text reporting of experiment results.

Formatting only — nothing here touches the persisted artifact schemas.  The
CSV/JSON artifacts follow :data:`repro.explore.campaign.RESULT_COLUMNS`
(versioned by ``schema_version``) plus, for adaptive runs, the provenance
columns of :mod:`repro.explore.adaptive` (``adaptive_schema_version``); the
tables rendered here are condensed, human-oriented views of those rows and
may change freely without a version bump.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str],
                 headers: Mapping[str, str] = None,
                 float_format: str = "{:.2f}") -> str:
    """Format *rows* as a fixed-width text table with the given *columns*."""
    headers = dict(headers or {})
    titles = [headers.get(column, column) for column in columns]

    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(titles[i]), *(len(r[i]) for r in rendered)) if rendered else len(titles[i])
        for i in range(len(columns))
    ]
    lines = []
    lines.append("  ".join(title.ljust(widths[i]) for i, title in enumerate(titles)))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_table1(results) -> str:
    """Format the Table I reproduction: measured values next to paper values."""
    rows: List[Dict[str, object]] = []
    for result in results:
        metrics = result.metrics
        paper = result.paper_row() or {}
        rows.append({
            "scenario": metrics.schedule_name,
            "peak_util": f"{metrics.peak_tam_utilization:.0%}",
            "paper_peak": _percent(paper.get("peak_tam_utilization")),
            "avg_util": f"{metrics.avg_tam_utilization:.0%}",
            "paper_avg": _percent(paper.get("avg_tam_utilization")),
            "length_mcycles": f"{metrics.test_length_mcycles:.0f}",
            "paper_length": _number(paper.get("test_length_mcycles")),
            "cpu_s": f"{metrics.cpu_seconds:.1f}",
            "paper_cpu_s": _number(paper.get("cpu_seconds")),
        })
    columns = ["scenario", "peak_util", "paper_peak", "avg_util", "paper_avg",
               "length_mcycles", "paper_length", "cpu_s", "paper_cpu_s"]
    headers = {
        "scenario": "Test scenario",
        "peak_util": "Peak TAM",
        "paper_peak": "(paper)",
        "avg_util": "Avg TAM",
        "paper_avg": "(paper)",
        "length_mcycles": "Length [Mcycles]",
        "paper_length": "(paper)",
        "cpu_s": "CPU [s]",
        "paper_cpu_s": "(paper)",
    }
    return format_table(rows, columns, headers)


#: Columns of the campaign summary table (a condensed view of the full rows).
CAMPAIGN_COLUMNS = ["scenario", "schedule", "cores", "tam", "length_kcycles",
                    "peak_tam", "avg_tam", "peak_power", "cpu_ms"]


def format_campaign(run) -> str:
    """Summarize a :class:`~repro.explore.campaign.CampaignRun` as a table."""
    rows = []
    for outcome in run.outcomes:
        spec = outcome.spec
        rows.append({
            "scenario": spec.name,
            "schedule": outcome.schedule,
            "cores": spec.core_count if spec.kind == "generated" else "jpeg",
            "tam": spec.tam_width_bits,
            "length_kcycles": f"{outcome.test_length_cycles / 1e3:.1f}",
            "peak_tam": f"{outcome.peak_tam_utilization:.0%}",
            "avg_tam": f"{outcome.avg_tam_utilization:.0%}",
            "peak_power": f"{outcome.peak_power:.2f}",
            "cpu_ms": f"{outcome.cpu_seconds * 1e3:.1f}",
        })
    table = format_table(rows, CAMPAIGN_COLUMNS)
    footer = (f"{run.scenario_count} scenarios, {len(run.outcomes)} result rows "
              f"in {run.wall_seconds:.2f} s "
              f"({run.rows_per_second:.1f} rows/s, "
              f"{run.workers} worker{'s' if run.workers != 1 else ''})")
    return f"{table}\n\n{footer}"


def format_adaptive(result) -> str:
    """Summarize an :class:`~repro.explore.adaptive.AdaptiveResult`.

    One line per round (budget, jobs, survivors) followed by the final Pareto
    front rendered as a table over the search objectives.  Replayed rounds of
    a resumed run and round-boundary checkpoints (partial runs) are called
    out explicitly.
    """
    round_rows = []
    for round_ in result.rounds:
        replayed = round_.index < result.resumed_rounds
        row = {
            "round": round_.index,
            "budget": f"{round_.budget:g}",
            "jobs": round_.job_count,
            "simulated": round_.simulated_jobs,
            "survivors": len(round_.survivors),
            "wall_s": "resumed" if replayed else f"{round_.run.wall_seconds:.2f}",
        }
        if result.race:
            row["stopped"] = len(round_.race_stopped)
        round_rows.append(row)
    round_columns = ["round", "budget", "jobs", "simulated", "survivors"]
    if result.race:
        round_columns.append("stopped")
    round_columns.append("wall_s")
    rounds_table = format_table(round_rows, round_columns)

    front_rows = []
    for outcome in result.front:
        row = {"scenario": outcome.spec.name, "schedule": outcome.schedule}
        full = outcome.as_row()
        for objective in result.objectives:
            row[str(objective)] = full[objective.column]
        front_rows.append(row)
    front_columns = ["scenario", "schedule"] + [str(o) for o in result.objectives]
    front_table = format_table(front_rows, front_columns)

    footer = (f"{result.total_jobs} jobs total, "
              f"{result.full_fidelity_jobs} at full fidelity "
              f"(exhaustive grid: {result.exhaustive_jobs}), "
              f"front size {len(result.front)}, "
              f"{result.wall_seconds:.2f} s with {result.workers} "
              f"worker{'s' if result.workers != 1 else ''}")
    if result.surrogate is not None:
        footer += (f"; surrogate: {result.surrogate.kept} of "
                   f"{result.surrogate.screened} candidate(s) past the "
                   f"estimator screen (keep={result.surrogate.keep:g})")
    if result.race:
        footer += (f"; racing stopped {result.race_stopped_jobs} "
                   f"dominated job(s) early")
    if result.resumed_rounds:
        footer += (f"; resumed: {result.resumed_rounds} round(s) replayed "
                   f"from the checkpoint artifact")
    if result.round_shards:
        footer += (f"; sharded: each round merged from "
                   f"{result.round_shards} planned shards")
    if not result.complete:
        footer += (f"; CHECKPOINT: {len(result.rounds)} of "
                   f"{result.planned_rounds} rounds done, front pending — "
                   f"finish with --resume-from")
    return (f"rounds:\n{rounds_table}\n\n"
            f"Pareto front:\n{front_table}\n\n{footer}")


def format_strategies() -> str:
    """List the registered scheduler strategies, parameters and defaults."""
    from repro.schedule.strategies import get_strategy, strategy_names

    rows = []
    for name in strategy_names():
        strategy = get_strategy(name)
        parameters = ", ".join(f"{p}={default} ({kind})"
                               for p, kind, default in strategy.parameter_docs())
        rows.append({
            "strategy": name,
            "parameters": parameters or "-",
            "description": strategy.summary,
        })
    table = format_table(rows, ["strategy", "parameters", "description"])
    footer = ("select with --strategy NAME[:key=val,...] on the campaign "
              "and adaptive subcommands")
    return f"{table}\n\n{footer}"


def format_shard(result) -> str:
    """Summarize a :class:`~repro.explore.distrib.ShardRun`: the shard's
    provenance line followed by the standard campaign table of its rows."""
    shard = result.shard
    header = (f"shard {shard.index}/{shard.count}: "
              f"jobs [{shard.start}, {shard.stop}) of {shard.total_jobs}, "
              f"space fingerprint {shard.fingerprint[:12]}")
    return f"{header}\n{format_campaign(result.run)}"


def format_merged(shard_documents: Sequence[Mapping[str, object]],
                  merged: Mapping[str, object]) -> str:
    """Summarize a shard merge: one line per input shard, then the totals."""
    rows = []
    for document in sorted(shard_documents,
                           key=lambda d: d["shard"]["index"]):
        shard = document["shard"]
        rows.append({
            "shard": f"{shard['index']}/{shard['count']}",
            "jobs": f"[{shard['start']}, {shard['stop']})",
            "rows": document["row_count"],
        })
    table = format_table(rows, ["shard", "jobs", "rows"])
    fingerprint = shard_documents[0]["shard"]["fingerprint"]
    footer = (f"merged {len(shard_documents)} shard artifact(s) into "
              f"{merged['row_count']} rows "
              f"(schema v{merged['schema_version']}, "
              f"space fingerprint {fingerprint[:12]})")
    partial = merged.get("partial")
    if partial:
        gaps = ", ".join(f"{span['index']}/{partial['count']} "
                         f"[{span['start']}, {span['stop']})"
                         for span in partial["missing"])
        footer += (f"; PARTIAL: covering {merged['row_count']} of "
                   f"{partial['total_jobs']} jobs — missing shard(s) {gaps}")
    return f"{table}\n\n{footer}"


#: Metrics aggregated per schedule by the store summary (column, aggregate
#: label pairs rendered as ``mean_<column>`` etc.).
STORE_SUMMARY_METRICS = ("test_length_cycles", "peak_tam_utilization",
                         "peak_power")


def summarize_store(store, group_by: str = "schedule",
                    metrics: Sequence[str] = STORE_SUMMARY_METRICS,
                    ) -> List[Dict[str, object]]:
    """Vectorized per-group aggregates over a columnar store.

    One ``np.unique`` pass buckets the rows by *group_by* and
    ``np.bincount``/``np.minimum.at`` reduce each metric column — no Python
    loop over rows, which is what makes summarizing a millions-of-rows
    store tractable.  Returns one dict per group (sorted by key) with
    ``rows`` and ``mean_/min_/max_`` entries per metric.
    """
    import numpy as np

    groups = np.asarray(store.column(group_by))
    uniques, inverse = np.unique(groups, return_inverse=True)
    if len(uniques) == 0:
        return []
    counts = np.bincount(inverse, minlength=len(uniques))
    summary: List[Dict[str, object]] = [
        {group_by: str(value), "rows": int(count)}
        for value, count in zip(uniques.tolist(), counts.tolist())
    ]
    for metric in metrics:
        values = store.column(metric).astype(np.float64)
        means = np.bincount(inverse, weights=values,
                            minlength=len(uniques)) / counts
        lows = np.full(len(uniques), np.inf)
        highs = np.full(len(uniques), -np.inf)
        np.minimum.at(lows, inverse, values)
        np.maximum.at(highs, inverse, values)
        for row, mean, low, high in zip(summary, means.tolist(),
                                        lows.tolist(), highs.tolist()):
            row[f"mean_{metric}"] = mean
            row[f"min_{metric}"] = low
            row[f"max_{metric}"] = high
    return summary


def format_store_summary(store, group_by: str = "schedule") -> str:
    """Render a columnar store as a per-schedule aggregate table."""
    summary = summarize_store(store, group_by=group_by)
    rows = [{
        group_by: entry[group_by],
        "rows": entry["rows"],
        "mean_kcycles": entry["mean_test_length_cycles"] / 1e3,
        "min_kcycles": entry["min_test_length_cycles"] / 1e3,
        "mean_peak_tam": f"{entry['mean_peak_tam_utilization']:.0%}",
        "mean_peak_power": entry["mean_peak_power"],
        "max_peak_power": entry["max_peak_power"],
    } for entry in summary]
    table = format_table(rows, [group_by, "rows", "mean_kcycles",
                                "min_kcycles", "mean_peak_tam",
                                "mean_peak_power", "max_peak_power"])
    footer = (f"{store.row_count} rows in {store.chunk_count} chunk(s), "
              f"schema v{store.schema_version}, grouped by {group_by}")
    return f"{table}\n\n{footer}"


def format_coordinator_status(status: Mapping[str, object]) -> str:
    """Render a coordinator status document as a live-operations view.

    One row per submitted campaign (progress, queue position, steals)
    followed by the fleet counters (queue depth, lease ages, throughput).
    The input is the versioned document from
    :meth:`~repro.explore.coordinator.Coordinator.status`; because those
    counters are read from the coordinator's metrics registry, this table
    shows the same numbers a ``/metrics`` scrape exposes.
    """
    campaigns = status.get("campaigns", [])
    rows = []
    for entry in campaigns:
        done = entry["completed"]
        spans = entry["spans"]
        rows.append({
            "campaign": entry["campaign"],
            "label": entry["label"],
            "jobs": entry["total_jobs"],
            "spans": f"{done}/{spans}",
            "pending": entry["pending"],
            "leased": entry["leased"],
            "rows": entry["row_count"],
            "steals": entry["steals"],
            "state": "done" if entry["complete"] else "running",
        })
    table = format_table(rows, ["campaign", "label", "jobs", "spans",
                                "pending", "leased", "rows", "steals",
                                "state"]) if rows else "no campaigns submitted"
    workers = status.get("workers", {})
    footer = (f"queue depth {status['queue_depth']}, "
              f"{status['active_leases']} active lease(s) "
              f"(oldest {status['max_lease_age_seconds']:.1f} s), "
              f"{status['steals']} steal(s), "
              f"{status['stale_completions']} stale completion(s); "
              f"{status['completed_spans']} span(s) / "
              f"{status['completed_rows']} row(s) done "
              f"({status['spans_per_second']:.2f} spans/s, "
              f"{status['rows_per_second']:.1f} rows/s) "
              f"over {status['uptime_seconds']:.1f} s; "
              f"{len(workers)} worker(s) seen")
    # v2 registry-backed counters; absent when rendering a v1 document.
    if "leases_granted" in status:
        footer += (f"; {status['leases_granted']} lease(s) granted, "
                   f"{status['heartbeats']} heartbeat(s)")
    if status.get("invalid_documents"):
        footer += f", {status['invalid_documents']} invalid document(s)"
    if status.get("draining"):
        footer += "; DRAINING"
    return f"{table}\n\n{footer}"


def format_worker_stats(worker_id: str, stats: Mapping[str, int]) -> str:
    """One summary line for a finished :class:`~repro.explore.worker.
    CampaignWorker` run."""
    line = (f"worker {worker_id}: {stats['completed']} span(s) completed, "
            f"{stats['stale']} stale, {stats['leases']} lease(s), "
            f"{stats['idle_polls']} idle poll(s)")
    if stats.get("reconnects"):
        line += f", {stats['reconnects']} reconnect(s)"
    return line


def _percent(value) -> str:
    return f"{value:.0%}" if isinstance(value, (int, float)) else ""


def _number(value) -> str:
    return f"{value:.0f}" if isinstance(value, (int, float)) else ""
