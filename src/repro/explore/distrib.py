"""Sharded campaign execution: plan shards, run them anywhere, merge artifacts.

Campaign jobs are pure data (:class:`~repro.explore.campaign.CampaignJob` is
a frozen spec + schedule name) and campaign artifacts are versioned
CSV/JSON documents, so distributing a campaign across hosts is a pure-data
problem.  This module is the distribution subsystem the ROADMAP left open:

* :func:`plan_shards` — split a campaign's job list into ``N`` self-contained
  :class:`CampaignShard` slices.  The split is deterministic and contiguous
  in the monolithic job order (shard ``i`` owns jobs
  ``[i·M/N, (i+1)·M/N)``), so concatenating shard results in shard order *is*
  the monolithic result.  Every shard carries scenario-space provenance: a
  SHA-256 fingerprint of the complete serialized job list, the total job
  count and its own span.
* :class:`CampaignShard` — a serializable shard spec
  (:meth:`~CampaignShard.write_json` / :meth:`~CampaignShard.read_json`),
  so a coordinator can plan once and ship one file per host.  Because grid
  generation itself is deterministic, hosts can equivalently re-plan locally
  from the same axes (the CLI's ``campaign --shard I/N`` path) — both roads
  produce identical shards.
* :func:`run_shard` — execute one shard through
  :func:`repro.explore.campaign.run_jobs`, i.e. the exact cached/batched
  worker-pool path of a monolithic run, and collect a :class:`ShardRun`
  whose artifact embeds the shard provenance.
* :func:`merge_shard_documents` — validate a set of shard artifacts (schema
  versions, fingerprints, shard count, exactly-once index coverage,
  canonical spans, column agreement) and recombine their rows into a
  document identical to the one a single-host run writes.  For
  *deterministic* shard artifacts (the default) the merged document is
  **bitwise identical** to ``CampaignRun.write_json(deterministic=True)`` of
  the monolithic campaign — the property the differential shard tests pin
  down.  ``partial=True`` (CLI: ``merge --partial``) accepts an incomplete
  shard set: surviving shards merge, the result carries a ``partial`` block
  naming the missing spans, and :func:`replan_document` turns those gaps
  into a re-plan worklist (each gap is one ``campaign --shard I/N`` rerun).

Shard and merge documents embed the campaign row schema
(``schema_version`` = :data:`repro.explore.campaign.SCHEMA_VERSION`); the
shard envelope itself (the ``shard`` provenance block) is versioned
separately as ``distrib_schema_version`` = :data:`DISTRIB_SCHEMA_VERSION`.
Validation failures raise :class:`MergeError` (a ``ValueError``), which the
CLI maps to a non-zero exit status.
"""

from __future__ import annotations

import csv
import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.explore.campaign import (
    SCHEMA_VERSION,
    Campaign,
    CampaignJob,
    CampaignRun,
    run_jobs,
)
from repro.explore.scenarios import spec_from_dict, spec_to_dict

#: Version of the shard-spec / shard-artifact envelope (the ``shard`` block
#: and the plan-document layout).  Bump on any change to either.
DISTRIB_SCHEMA_VERSION = 1


class MergeError(ValueError):
    """A shard set cannot be merged (version/provenance/coverage mismatch)."""


# -- job serialization ------------------------------------------------------
def job_to_dict(job: CampaignJob,
                validate: bool = True) -> Dict[str, object]:
    """One campaign job as a JSON-serializable dict (lossless)."""
    return {"spec": spec_to_dict(job.spec, validate=validate),
            "schedule": job.schedule}


def job_from_dict(document: Mapping[str, object]) -> CampaignJob:
    """Reconstruct a :class:`CampaignJob` written by :func:`job_to_dict`."""
    return CampaignJob(spec=spec_from_dict(document["spec"]),
                       schedule=str(document["schedule"]))


def space_fingerprint(jobs: Sequence[CampaignJob]) -> str:
    """Deterministic digest of the complete job list (scenario-space
    provenance).  Two shards merge only when they were planned from job
    lists with identical fingerprints — same specs, same schedules, same
    monolithic order."""
    # One serialization pass: this dump both canonicalizes and validates
    # (per-spec probe dumps would double the cost of planning large grids).
    try:
        canonical = json.dumps([job_to_dict(job, validate=False)
                                for job in jobs],
                               sort_keys=True, separators=(",", ":"))
    except TypeError as error:
        raise ValueError(
            f"campaign jobs cannot be serialized to JSON (a spec "
            f"config_overrides value is not JSON-compatible): {error}"
        ) from error
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- planning ---------------------------------------------------------------
def shard_span(index: int, count: int, total_jobs: int) -> Tuple[int, int]:
    """The canonical ``[start, stop)`` span of shard *index* of *count*.

    The single source of truth for the split rule: the planner slices by it,
    the merger validates declared spans against it, and the partial-merge
    gap report derives missing spans from it.
    """
    return index * total_jobs // count, (index + 1) * total_jobs // count


@dataclass(frozen=True)
class CampaignShard:
    """One host's self-contained slice of a campaign's job list."""

    index: int
    count: int
    #: Span of this shard in the monolithic job order: ``[start, stop)``.
    start: int
    stop: int
    total_jobs: int
    fingerprint: str
    jobs: Tuple[CampaignJob, ...]

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    def as_document(self) -> Dict[str, object]:
        """The shard spec as a shippable JSON document."""
        return {
            "schema_version": SCHEMA_VERSION,
            "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
            "shard": self.provenance(),
            # plan_shards' fingerprint pass already proved every job
            # JSON-serializable; skip the per-spec probe dumps.
            "jobs": [job_to_dict(job, validate=False) for job in self.jobs],
        }

    def provenance(self) -> Dict[str, object]:
        """The ``shard`` provenance block embedded in spec and result
        artifacts alike."""
        return {
            "index": self.index,
            "count": self.count,
            "start": self.start,
            "stop": self.stop,
            "total_jobs": self.total_jobs,
            "fingerprint": self.fingerprint,
        }

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_document(), handle, indent=2, sort_keys=False)
            handle.write("\n")

    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "CampaignShard":
        _require_version(document, "schema_version", SCHEMA_VERSION,
                         "shard spec")
        _require_version(document, "distrib_schema_version",
                         DISTRIB_SCHEMA_VERSION, "shard spec")
        shard = document["shard"]
        jobs = tuple(job_from_dict(entry) for entry in document["jobs"])
        if len(jobs) != shard["stop"] - shard["start"]:
            raise ValueError(
                f"shard spec carries {len(jobs)} jobs but declares the span "
                f"[{shard['start']}, {shard['stop']})"
            )
        return cls(index=int(shard["index"]), count=int(shard["count"]),
                   start=int(shard["start"]), stop=int(shard["stop"]),
                   total_jobs=int(shard["total_jobs"]),
                   fingerprint=str(shard["fingerprint"]), jobs=jobs)

    @classmethod
    def read_json(cls, path) -> "CampaignShard":
        with open(path) as handle:
            return cls.from_document(json.load(handle))


def plan_shards(source: Union[Campaign, Sequence[CampaignJob]],
                count: int) -> List[CampaignShard]:
    """Split a campaign (or an explicit job list) into *count* shards.

    Shards are contiguous slices of the monolithic job order, sized within
    one job of each other (``i·M/N`` boundaries), so uneven splits are
    handled and merge order equals job order.  Planning is deterministic:
    any host planning the same campaign produces identical shards.
    """
    jobs = list(source.jobs()) if isinstance(source, Campaign) else list(source)
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not jobs:
        raise ValueError("cannot shard an empty job list")
    if count > len(jobs):
        raise ValueError(
            f"cannot split {len(jobs)} job(s) into {count} shards "
            f"(every shard must own at least one job)"
        )
    fingerprint = space_fingerprint(jobs)
    shards = []
    for index in range(count):
        start, stop = shard_span(index, count, len(jobs))
        shards.append(CampaignShard(
            index=index, count=count, start=start, stop=stop,
            total_jobs=len(jobs), fingerprint=fingerprint,
            jobs=tuple(jobs[start:stop]),
        ))
    return shards


# -- execution --------------------------------------------------------------
@dataclass
class ShardRun:
    """The collected outcomes of one executed shard."""

    shard: CampaignShard
    run: CampaignRun

    def as_document(self, deterministic: bool = True) -> Dict[str, object]:
        """A campaign result document plus the shard provenance block.

        Deterministic by default: shard artifacts exist to be merged, and
        only deterministic rows recombine bitwise-identically to a
        single-host run.  The result layout is delegated to
        :meth:`CampaignRun.as_document` so there is exactly one source of
        truth for the key order the merger's bitwise contract depends on.
        """
        document: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
            "shard": self.shard.provenance(),
        }
        body = self.run.as_document(deterministic)
        body.pop("schema_version")
        document.update(body)
        return document

    def write_json(self, path, deterministic: bool = True) -> None:
        with open(path, "w") as handle:
            json.dump(self.as_document(deterministic), handle, indent=2,
                      sort_keys=False)
            handle.write("\n")

    def write_csv(self, path, deterministic: bool = True) -> None:
        self.run.write_csv(path, deterministic=deterministic)


def run_shard(shard: CampaignShard, workers: int = 1,
              mp_context: Optional[str] = None,
              batch_size: Optional[int] = None) -> ShardRun:
    """Execute one shard on the standard campaign worker-pool path."""
    run = run_jobs(list(shard.jobs), workers=workers, mp_context=mp_context,
                   batch_size=batch_size)
    return ShardRun(shard=shard, run=run)


# -- merging ----------------------------------------------------------------
def _require_version(document: Mapping[str, object], key: str, expected: int,
                     what: str) -> None:
    found = document.get(key)
    if found != expected:
        raise MergeError(
            f"{what} has {key}={found!r}, expected {expected} — refusing to "
            f"combine artifacts across schema versions"
        )


@dataclass(frozen=True)
class MergePlan:
    """The validated layout of one shard merge — everything but the rows.

    Produced by :func:`plan_merge`; consumed by :func:`merge_shard_documents`
    (in-memory row concatenation) and by the columnar store's streaming merge
    (:func:`repro.explore.store.merge_artifacts_to_store`), which never holds
    more than one shard's rows at a time.
    """

    count: int
    total_jobs: int
    fingerprint: str
    columns: Tuple[str, ...]
    #: Shard indexes present / absent (absent only when planned partial).
    present: Tuple[int, ...]
    missing: Tuple[int, ...]
    #: Positions of the input documents in shard-index order — the order
    #: their rows concatenate in.
    order: Tuple[int, ...]
    #: Declared row count of each input document (input order, not shard
    #: order); already validated against the canonical spans.
    row_counts: Tuple[int, ...]

    @property
    def row_count(self) -> int:
        return sum(self.row_counts)

    def header(self) -> Dict[str, object]:
        """The merged document minus ``row_count``/``rows`` — the exact key
        order of ``CampaignRun.as_document(deterministic=True)`` (bitwise
        contract)."""
        merged: Dict[str, object] = {"schema_version": SCHEMA_VERSION,
                                     "columns": list(self.columns)}
        if self.missing:
            merged["partial"] = {
                "count": self.count,
                "total_jobs": self.total_jobs,
                "fingerprint": self.fingerprint,
                "present": list(self.present),
                "missing": missing_shard_spans(self.missing, self.count,
                                               self.total_jobs),
            }
        return merged


def plan_merge(documents: Sequence[Mapping[str, object]],
               partial: bool = False,
               row_counts: Optional[Sequence[Optional[int]]] = None,
               ) -> MergePlan:
    """Validate a shard artifact set and plan its merge without touching rows.

    *documents* are shard result artifacts — or row-less *headers* of them,
    in which case *row_counts* supplies each document's row count (the
    streaming merge path, which validates every artifact before re-reading
    any rows).  All of :func:`merge_shard_documents`'s validation lives here:
    schema versions, single fingerprint/count/total, exactly-once index
    coverage (``partial=True`` tolerates gaps), canonical spans, column
    agreement and per-span row counts.  Raises :class:`MergeError`.
    """
    if not documents:
        raise MergeError("no shard artifacts to merge")
    declared: List[Optional[int]] = (list(row_counts) if row_counts is not None
                                     else [None] * len(documents))
    if len(declared) != len(documents):
        raise MergeError("row_counts does not match the artifact list")
    for position, document in enumerate(documents):
        what = f"shard artifact #{position}"
        if not isinstance(document, Mapping):
            raise MergeError(f"{what} is not a JSON object")
        _require_version(document, "schema_version", SCHEMA_VERSION, what)
        _require_version(document, "distrib_schema_version",
                         DISTRIB_SCHEMA_VERSION, what)
        if not isinstance(document.get("shard"), Mapping):
            raise MergeError(f"{what} carries no shard provenance block")
        if "adaptive_schema_version" in document:
            raise MergeError(f"{what} is an adaptive artifact, not a "
                             f"campaign shard")
        if declared[position] is None and isinstance(document.get("rows"),
                                                     list):
            declared[position] = len(document["rows"])
        if declared[position] is None or "columns" not in document:
            hint = (" (a shard *spec* file, not a shard result artifact?)"
                    if "jobs" in document else "")
            raise MergeError(f"{what} carries no result rows/columns{hint}")

    def provenance(document) -> Dict[str, object]:
        return document["shard"]

    counts = {provenance(d)["count"] for d in documents}
    if len(counts) != 1:
        raise MergeError(f"shard counts disagree: {sorted(counts)}")
    count = counts.pop()
    fingerprints = {provenance(d)["fingerprint"] for d in documents}
    if len(fingerprints) != 1:
        raise MergeError(
            "scenario-space fingerprints disagree — the shards were planned "
            f"from different campaigns: {sorted(fingerprints)}"
        )
    fingerprints_value = fingerprints.pop()
    totals = {provenance(d)["total_jobs"] for d in documents}
    if len(totals) != 1:
        raise MergeError(f"total job counts disagree: {sorted(totals)}")
    total_jobs = totals.pop()

    indexes = sorted(provenance(d)["index"] for d in documents)
    # One Counter pass: coordinator-scale merges hand this hundreds of
    # shards, where the old indexes.count(i)-per-element scan was O(n²).
    index_counts = Counter(indexes)
    duplicates = sorted(index for index, times in index_counts.items()
                        if times > 1)
    if duplicates:
        raise MergeError(f"overlapping shards: index(es) {duplicates} "
                         f"supplied more than once")
    missing = sorted(set(range(count)) - index_counts.keys())
    if sorted(index_counts.keys() - set(range(count))):
        raise MergeError(f"shard indexes {indexes} exceed the shard count "
                         f"{count}")
    if missing and not partial:
        raise MergeError(f"incomplete shard set: missing shard index(es) "
                         f"{missing} of {count}")

    columns = [list(d["columns"]) for d in documents]
    if any(c != columns[0] for c in columns[1:]):
        raise MergeError("shard artifacts disagree on the column list "
                         "(mixed deterministic/timing artifacts?)")

    order = sorted(range(len(documents)),
                   key=lambda position: provenance(documents[position])["index"])
    for position in order:
        document = documents[position]
        shard = provenance(document)
        start, stop = shard["start"], shard["stop"]
        # Spans are a pure function of (index, count, total): validating
        # against the canonical formula catches overlaps and doctored spans
        # whether or not the neighbouring shard is present.
        expected_start, expected_stop = shard_span(shard["index"], count,
                                                   total_jobs)
        if start != expected_start:
            kind = "overlapping" if start < expected_start else "gapped"
            raise MergeError(
                f"{kind} shard spans: shard {shard['index']} starts at job "
                f"{start}, expected {expected_start}"
            )
        if stop != expected_stop:
            raise MergeError(
                f"shard {shard['index']} declares the span [{start}, {stop}),"
                f" expected [{expected_start}, {expected_stop}) for "
                f"{total_jobs} jobs in {count} shard(s)"
            )
        row_count = declared[position]
        if row_count != stop - start or \
                document.get("row_count") != row_count:
            raise MergeError(
                f"shard {shard['index']} carries {row_count} row(s) for the "
                f"span [{start}, {stop})"
            )

    return MergePlan(
        count=count, total_jobs=total_jobs, fingerprint=fingerprints_value,
        columns=tuple(columns[0]),
        present=tuple(i for i in range(count) if i not in missing),
        missing=tuple(missing), order=tuple(order),
        row_counts=tuple(declared),
    )


def validate_shard_result(document: Mapping[str, object], *,
                          count: int, total_jobs: int, fingerprint: str,
                          columns: Optional[Sequence[str]] = None,
                          actual_rows: Optional[int] = None) -> int:
    """Validate a single shard *result* document against a known plan.

    The per-document half of :func:`plan_merge`, for callers that receive
    shard artifacts one at a time instead of as a complete set — the live
    coordinator's completion path and the incremental streaming merge
    (:class:`repro.explore.store.IncrementalShardMerge`).  Checks schema and
    envelope versions, the provenance block (shard count, total job count,
    scenario-space fingerprint), the canonical ``i·M/N`` span, the declared
    and actual row counts, and — when *columns* is given — the column list.
    Returns the shard index; raises :class:`MergeError` on any mismatch, so
    a worker returning a doctored, truncated or foreign-campaign artifact is
    rejected before any of its rows land anywhere.

    ``actual_rows`` validates the *columnar* form (a decoded
    :class:`~repro.explore.store.ShardBlock`): the caller passes the decoded
    array length and the document is a row-less header — no per-row dicts
    are materialized just to count them.
    """
    what = "shard result"
    if not isinstance(document, Mapping):
        raise MergeError(f"{what} is not a JSON object")
    _require_version(document, "schema_version", SCHEMA_VERSION, what)
    _require_version(document, "distrib_schema_version",
                     DISTRIB_SCHEMA_VERSION, what)
    shard = document.get("shard")
    if not isinstance(shard, Mapping):
        raise MergeError(f"{what} carries no shard provenance block")
    index = int(shard["index"])
    if shard["count"] != count:
        raise MergeError(f"{what} was planned into {shard['count']} shard(s),"
                         f" expected {count}")
    if shard["total_jobs"] != total_jobs:
        raise MergeError(f"{what} declares {shard['total_jobs']} total "
                         f"job(s), expected {total_jobs}")
    if shard["fingerprint"] != fingerprint:
        raise MergeError(
            "scenario-space fingerprints disagree — the shard was planned "
            f"from a different campaign: {shard['fingerprint']!r}")
    if not 0 <= index < count:
        raise MergeError(f"shard index {index} exceeds the shard count "
                         f"{count}")
    expected_start, expected_stop = shard_span(index, count, total_jobs)
    if (shard["start"], shard["stop"]) != (expected_start, expected_stop):
        raise MergeError(
            f"shard {index} declares the span [{shard['start']}, "
            f"{shard['stop']}), expected [{expected_start}, {expected_stop})")
    if actual_rows is None:
        rows = document.get("rows")
        if not isinstance(rows, list):
            raise MergeError(f"{what} carries no result rows")
        actual = len(rows)
    else:
        actual = int(actual_rows)
    if actual != expected_stop - expected_start or \
            document.get("row_count") != actual:
        raise MergeError(f"shard {index} carries {actual} row(s) for the "
                         f"span [{expected_start}, {expected_stop})")
    if columns is not None and list(document.get("columns", ())) != \
            list(columns):
        raise MergeError(f"shard {index} disagrees on the column list "
                         f"(mixed deterministic/timing artifacts?)")
    return index


def merge_shard_documents(
        documents: Sequence[Mapping[str, object]],
        partial: bool = False) -> Dict[str, object]:
    """Validate and recombine shard result documents into one result set.

    The returned document has exactly the layout of
    ``CampaignRun.as_document(deterministic=True)`` — for deterministic shard
    artifacts it is bitwise identical (after ``json.dump``) to the artifact
    of a monolithic single-host run.  Raises :class:`MergeError` when the
    shards do not form exactly one complete, non-overlapping cover of one
    campaign.

    ``partial=True`` additionally accepts an *incomplete* shard set (lost
    hosts, straggler shards): the present shards still have to agree on
    provenance, sit on their canonical ``i·M/N`` spans and not overlap, and
    their rows are recombined in shard order.  When shards are actually
    missing, the returned document carries a ``partial`` block (present and
    missing spans — the re-plan worklist) instead of masquerading as a
    complete artifact; a complete set degrades to the ordinary bitwise merge.

    All validation is delegated to :func:`plan_merge`; this function only
    concatenates rows in memory.  Callers that cannot afford the in-memory
    concatenation stream the same plan into a columnar store instead
    (:func:`repro.explore.store.merge_artifacts_to_store`).
    """
    plan = plan_merge(documents, partial=partial)
    merged_rows: List[Dict[str, object]] = []
    for position in plan.order:
        merged_rows.extend(documents[position]["rows"])
    merged = plan.header()
    merged["row_count"] = len(merged_rows)
    merged["rows"] = merged_rows
    return merged


def missing_shard_spans(missing: Sequence[int], count: int,
                        total_jobs: int) -> List[Dict[str, int]]:
    """The canonical ``[start, stop)`` spans of the missing shard indexes —
    the gaps a re-plan has to cover."""
    spans = []
    for index in sorted(missing):
        start, stop = shard_span(index, count, total_jobs)
        spans.append({"index": index, "start": start, "stop": stop})
    return spans


def replan_document(merged: Mapping[str, object]) -> Dict[str, object]:
    """A re-plan worklist for the gaps of a partial merge.

    The returned document names the missing shards of the original plan —
    each gap is exactly the job span of one ``campaign --shard I/N`` rerun
    against the same grid (the fingerprint pins the scenario space).  Raises
    :class:`ValueError` when *merged* has no gaps.
    """
    block = merged.get("partial")
    if not isinstance(block, Mapping) or not block.get("missing"):
        raise ValueError("merged document has no gaps to re-plan")
    return {
        "schema_version": SCHEMA_VERSION,
        "distrib_schema_version": DISTRIB_SCHEMA_VERSION,
        "kind": "replan",
        "fingerprint": block["fingerprint"],
        "count": block["count"],
        "total_jobs": block["total_jobs"],
        "missing": list(block["missing"]),
    }


def load_artifact(path) -> Dict[str, object]:
    """Load one JSON artifact (shard, campaign or adaptive) from disk."""
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"{path}: artifact is not a JSON object")
    return document


def merge_artifacts(paths: Sequence, partial: bool = False) -> Dict[str, object]:
    """:func:`merge_shard_documents` over artifacts read from *paths*."""
    return merge_shard_documents([load_artifact(path) for path in paths],
                                 partial=partial)


def write_merged_json(document: Mapping[str, object], path) -> None:
    """Write a merged document exactly like ``CampaignRun.write_json``."""
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def write_merged_csv(document: Mapping[str, object], path) -> None:
    """Write a merged document's rows as CSV (header = its column list)."""
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(document["columns"]))
        writer.writeheader()
        writer.writerows(document["rows"])
