"""Campaign worker: the execution plane for the live coordinator.

A worker is deliberately dumb: it leases a span, executes it on the
standard :func:`~repro.explore.distrib.run_shard` path (the *same* code a
``campaign --shard I/N`` host runs, which is what keeps coordinated
artifacts bitwise identical to monolithic ones), posts the deterministic
shard document back, and repeats.  All scheduling intelligence — fairness,
stealing, merge order — lives in the coordinator.

Three client flavours plug into the same loop:

* :class:`~repro.explore.coordinator.CoordinatorSession` — the protocol-v2
  framed-session client (persistent socket, batched ops, binary columnar
  completions); the default for the ``work`` CLI subcommand.
* :class:`~repro.explore.coordinator.CoordinatorClient` — the legacy v1
  connection-per-op JSONL client, kept as a compatibility shim
  (``work --protocol v1``).
* :class:`InProcessClient` — direct method calls against a
  :class:`~repro.explore.coordinator.Coordinator`; the deterministic test
  seam (no sockets, no threads unless the test asks for them).

While a span executes, an optional daemon thread heartbeats the lease so a
*slow* worker is distinguishable from a *dead* one.  A heartbeat answered
with ``live=False`` means the coordinator already stole the lease; the
loop notes it and keeps going — its eventual completion is acknowledged as
stale and merged by nobody, preserving exactly-once ingestion.

With ``prefetch > 1`` (and a client that supports batched leasing) the
worker leases up to N spans per round trip and a single daemon thread
coalesces heartbeats for *all* held leases into one frame, shipping the
worker's cumulative heartbeat-RTT histogram snapshot along for coordinator
-side aggregation.  With ``reconnect_tries > 0`` a transient connection
error triggers bounded exponential backoff instead of an immediate exit;
leases are abandoned only once the budget is exhausted.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional, Sequence, Set

from repro.explore.coordinator import Coordinator
from repro.explore.distrib import CampaignShard, run_shard
from repro.explore.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    StructuredLog,
)


class InProcessClient:
    """The wire-client API as direct calls on a local coordinator."""

    def __init__(self, coordinator: Coordinator):
        self._coordinator = coordinator

    def request_lease(self, worker: str) -> Dict[str, object]:
        granted = self._coordinator.request_lease(worker)
        if granted is None:
            if self._coordinator.draining:
                return {"ok": True, "shutdown": True}
            return {"ok": True, "idle": True}
        lease, shard = granted
        return {"ok": True, "lease": lease.as_document(),
                "heartbeat_seconds": self._coordinator._lease_timeout / 3.0,
                "shard": shard.as_document()}

    def request_leases(self, worker: str, count: int) -> Dict[str, object]:
        granted = self._coordinator.request_leases(worker, count)
        if not granted and self._coordinator.draining:
            return {"ok": True, "shutdown": True}
        return {"ok": True,
                "heartbeat_seconds": self._coordinator._lease_timeout / 3.0,
                "leases": [{"lease": lease.as_document(),
                            "shard": shard.as_document()}
                           for lease, shard in granted]}

    def heartbeat(self, lease_id: int) -> bool:
        return self._coordinator.heartbeat(lease_id)

    def heartbeat_many(self, lease_ids: Sequence[int],
                       worker: Optional[str] = None,
                       rtt: Optional[Mapping[str, object]] = None,
                       ) -> Dict[int, bool]:
        if rtt is not None and worker:
            self._coordinator.record_worker_rtt(worker, rtt)
        return self._coordinator.heartbeat_many(list(lease_ids))

    def complete(self, lease_id: int,
                 document: Mapping[str, object]) -> bool:
        return self._coordinator.complete_lease(lease_id, document)

    def submit(self, job_documents: Sequence[Mapping[str, object]],
               shards: int, **kwargs) -> str:
        return self._coordinator.submit_job_documents(
            job_documents, shards,
            label=kwargs.get("label"), json_path=kwargs.get("json_path"),
            csv_path=kwargs.get("csv_path"),
            store_path=kwargs.get("store_path"))

    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        return self._coordinator.campaign_progress(campaign_id)

    def status(self) -> Dict[str, object]:
        return self._coordinator.status()

    def shutdown(self) -> None:
        self._coordinator.drain()


def _default_executor(shard: CampaignShard) -> Dict[str, object]:
    return run_shard(shard).as_document(deterministic=True)


class CampaignWorker:
    """Lease/execute/complete loop against a coordinator client."""

    def __init__(self, client, worker_id: str,
                 poll_interval: float = 0.5,
                 max_idle_polls: Optional[int] = None,
                 heartbeat_interval: Optional[float] = None,
                 prefetch: int = 1,
                 reconnect_tries: int = 0,
                 reconnect_backoff: float = 0.5,
                 sleep: Callable[[float], None] = time.sleep,
                 executor: Callable[[CampaignShard],
                                    Mapping[str, object]] = _default_executor,
                 should_run: Optional[Callable[[], bool]] = None,
                 status_callback: Optional[Callable[[str], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 log: Optional[StructuredLog] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.client = client
        self.worker_id = worker_id
        self.poll_interval = poll_interval
        self.max_idle_polls = max_idle_polls
        self.heartbeat_interval = heartbeat_interval
        self.prefetch = max(1, int(prefetch))
        self.reconnect_tries = max(0, int(reconnect_tries))
        self.reconnect_backoff = max(0.0, float(reconnect_backoff))
        self._sleep = sleep
        self._executor = executor
        self._should_run = should_run
        self._status = status_callback
        self._log = log
        self._clock = clock
        self.stats: Dict[str, int] = {
            "leases": 0, "completed": 0, "stale": 0, "idle_polls": 0,
        }
        if self.reconnect_tries > 0:
            self.stats["reconnects"] = 0
        # Worker-side observability: its own registry (the coordinator's
        # lives in another process), dominated by the heartbeat RTT
        # histogram — the one latency only the worker can measure.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_rtt = self.metrics.histogram(
            "worker_heartbeat_rtt_seconds",
            "Round-trip time of heartbeat calls to the coordinator.",
            LATENCY_BUCKETS)
        self._m_spans = self.metrics.counter(
            "worker_spans_total",
            "Spans executed, by acceptance outcome.")

    def _emit(self, event: str, **fields: object) -> None:
        if self._log is not None:
            self._log.emit(event, worker=self.worker_id, **fields)

    def _report(self, message: str) -> None:
        if self._status is not None:
            self._status(f"[{self.worker_id}] {message}")

    def _heartbeat_loop(self, lease_id: int, interval: float,
                        stop: threading.Event) -> None:
        while not stop.wait(interval):
            try:
                sent = self._clock()
                live = self.client.heartbeat(lease_id)
                self._m_rtt.observe(self._clock() - sent)
                if not live:
                    self._report(f"lease {lease_id} was stolen; "
                                 "finishing anyway")
                    return
            except (OSError, ValueError):
                # Coordinator unreachable mid-span: keep computing; the
                # completion attempt will surface the failure.
                return

    def _coalesced_heartbeat_loop(self, held: Set[int],
                                  held_lock: threading.Lock,
                                  interval: float,
                                  stop: threading.Event) -> None:
        """One frame per beat for *all* held leases, RTT snapshot included.

        The snapshot is cumulative, so retransmits are idempotent — the
        coordinator merges only the delta since the last one it saw."""
        while not stop.wait(interval):
            with held_lock:
                lease_ids = sorted(held)
            if not lease_ids:
                continue
            try:
                sent = self._clock()
                live = self.client.heartbeat_many(
                    lease_ids, worker=self.worker_id,
                    rtt=self._m_rtt.snapshot())
                self._m_rtt.observe(self._clock() - sent)
            except (OSError, ValueError):
                return
            stolen = [lease_id for lease_id, alive in live.items()
                      if not alive]
            if stolen:
                with held_lock:
                    held.difference_update(stolen)
                self._report(f"lease(s) {stolen} were stolen; "
                             "finishing anyway")

    def run_one(self) -> bool:
        """Lease and execute one span.  False when no work was granted."""
        response = self.client.request_lease(self.worker_id)
        if response.get("shutdown"):
            raise StopIteration
        if response.get("idle"):
            return False
        lease = response["lease"]
        lease_id = int(lease["lease_id"])
        shard = CampaignShard.from_document(response["shard"])
        self.stats["leases"] += 1
        self._report(f"leased span {lease['campaign_id']}/"
                     f"{lease['shard_index']} "
                     f"({len(shard.jobs)} job(s))")
        self._emit("worker-lease", campaign=lease["campaign_id"],
                   span=lease["shard_index"], lease=lease_id,
                   jobs=len(shard.jobs))
        interval = self.heartbeat_interval
        if interval is None:
            interval = float(response.get("heartbeat_seconds") or 0) or None
        stop = threading.Event()
        beat: Optional[threading.Thread] = None
        if interval is not None and interval > 0:
            beat = threading.Thread(
                target=self._heartbeat_loop, args=(lease_id, interval, stop),
                daemon=True)
            beat.start()
        try:
            document = self._executor(shard)
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=5.0)
        self._complete_span(lease, lease_id, document)
        return True

    def _complete_span(self, lease: Mapping[str, object], lease_id: int,
                       document: Mapping[str, object]) -> None:
        if self.client.complete(lease_id, document):
            self.stats["completed"] += 1
            self._m_spans.inc(outcome="accepted")
            self._report(f"completed span {lease['campaign_id']}/"
                         f"{lease['shard_index']}")
            self._emit("worker-complete", campaign=lease["campaign_id"],
                       span=lease["shard_index"], lease=lease_id,
                       accepted=True)
        else:
            self.stats["stale"] += 1
            self._m_spans.inc(outcome="stale")
            self._report(f"span {lease['campaign_id']}/"
                         f"{lease['shard_index']} already completed "
                         "elsewhere (stale)")
            self._emit("worker-complete", campaign=lease["campaign_id"],
                       span=lease["shard_index"], lease=lease_id,
                       accepted=False)

    def run_batch(self) -> bool:
        """Lease up to ``prefetch`` spans in one round trip, execute them
        back to back under a single coalesced heartbeat thread.  False when
        no work was granted."""
        response = self.client.request_leases(self.worker_id, self.prefetch)
        if response.get("shutdown"):
            raise StopIteration
        entries = response.get("leases") or []
        if not entries:
            return False
        held: Set[int] = set()
        held_lock = threading.Lock()
        spans = []
        for entry in entries:
            lease = entry["lease"]
            lease_id = int(lease["lease_id"])
            shard = CampaignShard.from_document(entry["shard"])
            self.stats["leases"] += 1
            self._report(f"leased span {lease['campaign_id']}/"
                         f"{lease['shard_index']} "
                         f"({len(shard.jobs)} job(s))")
            self._emit("worker-lease", campaign=lease["campaign_id"],
                       span=lease["shard_index"], lease=lease_id,
                       jobs=len(shard.jobs))
            held.add(lease_id)
            spans.append((lease, lease_id, shard))
        interval = self.heartbeat_interval
        if interval is None:
            interval = float(response.get("heartbeat_seconds") or 0) or None
        stop = threading.Event()
        beat: Optional[threading.Thread] = None
        if interval is not None and interval > 0 \
                and hasattr(self.client, "heartbeat_many"):
            beat = threading.Thread(
                target=self._coalesced_heartbeat_loop,
                args=(held, held_lock, interval, stop), daemon=True)
            beat.start()
        try:
            for lease, lease_id, shard in spans:
                document = self._executor(shard)
                self._complete_span(lease, lease_id, document)
                with held_lock:
                    held.discard(lease_id)
        finally:
            stop.set()
            if beat is not None:
                beat.join(timeout=5.0)
        return True

    def run(self) -> Dict[str, int]:
        """Loop until the coordinator drains, idle polls run out, or
        ``should_run`` turns false.  Returns the stats counters."""
        idle = 0
        failures = 0
        batched = self.prefetch > 1 \
            and hasattr(self.client, "request_leases")
        while self._should_run is None or self._should_run():
            try:
                worked = self.run_batch() if batched else self.run_one()
            except StopIteration:
                self._report("coordinator is draining; exiting")
                self._emit("worker-exit", reason="draining")
                break
            except ConnectionError:
                failures += 1
                if failures > self.reconnect_tries:
                    self._report("coordinator unreachable; exiting")
                    self._emit("worker-exit", reason="unreachable")
                    break
                delay = self.reconnect_backoff * (2 ** (failures - 1))
                self.stats["reconnects"] += 1
                self._report(f"coordinator unreachable; retry "
                             f"{failures}/{self.reconnect_tries} "
                             f"in {delay:g}s")
                self._emit("worker-reconnect", attempt=failures,
                           budget=self.reconnect_tries,
                           delay_seconds=round(delay, 6))
                self._sleep(delay)
                reconnect = getattr(self.client, "reconnect", None)
                if reconnect is not None:
                    reconnect()
                continue
            failures = 0
            if worked:
                idle = 0
                continue
            idle += 1
            self.stats["idle_polls"] += 1
            if self.max_idle_polls is not None and idle >= self.max_idle_polls:
                self._report("no work after "
                             f"{idle} poll(s); exiting")
                self._emit("worker-exit", reason="idle")
                break
            self._sleep(self.poll_interval)
        return dict(self.stats)
