"""Adaptive exploration: Pareto fronts + successive halving over scenarios.

PR 1's campaign engine explores the design space exhaustively: every
scenario × schedule pair is simulated at full pattern volume.  This module
turns that sweeper into a *search engine* that drives the same worker pool
(:func:`repro.explore.campaign.run_jobs` → ``_execute_job_batch``) in rounds:

* **Successive halving** — every candidate pair is first evaluated on a cheap
  *budget* (the external-scan pattern volume scaled down to a fraction of the
  spec's ``patterns_per_core``), only the most promising ``1/eta`` of the
  field advances, and survivors are re-run at an ``eta``-times larger budget
  until a final full-fidelity round.  The cheap rounds are faithful proxies
  because scenario expansion is independent of the pattern volume: the same
  cores, tasks and schedules are simulated, just with fewer patterns.
* **Pareto-front tracking** — candidates are compared on a configurable
  objective vector (default: minimize ``test_length_cycles`` *and*
  ``peak_power``, the paper's central trade-off).  Between rounds, dominated
  pairs are ranked behind the front and pruned first; the final round's
  non-dominated outcomes are the search result (:attr:`AdaptiveResult.front`).

Result-schema versioning: adaptive artifacts reuse the campaign row schema
(:data:`repro.explore.campaign.RESULT_COLUMNS`, versioned by
``schema_version`` = :data:`repro.explore.campaign.SCHEMA_VERSION`) and append
the per-round provenance columns :data:`PROVENANCE_COLUMNS`, versioned
independently as ``adaptive_schema_version`` =
:data:`ADAPTIVE_SCHEMA_VERSION`.  Bump the adaptive version whenever the
provenance columns or the JSON document layout change; bump the campaign
version when the underlying row schema changes.

Version history: adaptive v1 — the original ``round/budget/survivor``
provenance (PR 3); adaptive v2 — documents additionally carry the complete
search definition (serialized ``specs``, ``schedules_override``, the planned
round count) plus per-round ``round_stats`` and a ``complete`` /
``completed_rounds`` pair, which makes every artifact a *resumable
checkpoint*: ``AdaptiveSearch.run(max_rounds=k)`` stops at a round boundary,
and :func:`resume_search` (CLI: ``adaptive --resume-from``) replays the
completed rounds from the artifact — reconstructing survivors, budgets and
the evaluated-job memo from the provenance columns instead of re-simulating —
then continues mid-search.  A resumed run's final artifact is bitwise
identical to the uninterrupted run's.

Artifacts default to *deterministic* rows (the timing/placement columns
``cpu_seconds``/``worker`` and the run's wall-clock are dropped), so the same
seed produces bitwise-identical CSV/JSON files — the property the adaptive
determinism test pins down.  Pass ``deterministic=False`` to keep timings.

Budget scaling only thins ``generated`` scenarios; ``jpeg``-kind specs carry
their pattern volumes in the fixed test plan, so they run at full cost in
every round (the search still prunes them on the observed objectives).

Round sharding: every round's job list is plain
:class:`~repro.explore.campaign.CampaignJob` data, so ``run(round_shards=N)``
(CLI: ``adaptive --shard I/N``) executes each round through the distribution
layer — :func:`~repro.explore.distrib.plan_shards` →
:func:`~repro.explore.distrib.run_shard` →
:func:`~repro.explore.distrib.merge_shard_documents` — and recombines the
shard rows before selection.  Sharding is execution-only metadata (never
serialized), so sharded, rotated and unsharded runs all write bitwise
identical artifacts.
"""

from __future__ import annotations

import csv
import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import (
    Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union,
)

import numpy as np

from repro.explore.campaign import (
    NONDETERMINISTIC_COLUMNS,
    RESULT_COLUMNS,
    SCHEMA_VERSION,
    CampaignJob,
    CampaignOutcome,
    CampaignRun,
    cached_scenario,
    execute_job_raced,
    outcome_from_row,
    run_jobs,
)
from repro.explore.distrib import (
    merge_shard_documents,
    plan_shards,
    run_shard,
)
from repro.explore.scenarios import (
    ScenarioGrid,
    ScenarioSpec,
    spec_from_dict,
    spec_to_dict,
)
from repro.schedule.estimator import BatchEstimator
from repro.schedule.strategies import canonical_schedule_names

#: Version of the adaptive provenance schema (see the module docstring).
ADAPTIVE_SCHEMA_VERSION = 2

#: Per-round provenance columns appended to the campaign row schema.
PROVENANCE_COLUMNS = ("round", "budget", "survivor")

#: Result columns that hold labels, not numbers — unusable as objectives.
_NON_NUMERIC_COLUMNS = ("scenario", "kind", "schedule", "strategy",
                        "strategy_params")


# -- objectives and dominance ---------------------------------------------------
@dataclass(frozen=True)
class Objective:
    """One search objective: a result-row column and an optimization sense."""

    column: str
    maximize: bool = False

    def __post_init__(self):
        if self.column not in RESULT_COLUMNS:
            raise ValueError(
                f"unknown objective column {self.column!r}; "
                f"must be one of the campaign result columns"
            )
        if self.column in NONDETERMINISTIC_COLUMNS:
            raise ValueError(
                f"objective column {self.column!r} is nondeterministic "
                f"(timing/placement); searching on it would break the "
                f"bitwise-reproducible artifact guarantee"
            )
        if self.column in _NON_NUMERIC_COLUMNS:
            raise ValueError(
                f"objective column {self.column!r} holds labels, not "
                f"numbers; it cannot be minimized or maximized"
            )

    def __str__(self) -> str:
        return f"{self.column}:{'max' if self.maximize else 'min'}"


#: The paper's central trade-off: test application time vs. peak power.
DEFAULT_OBJECTIVES = (Objective("test_length_cycles"), Objective("peak_power"))


def parse_objective(text: str) -> Objective:
    """Parse ``"column"`` / ``"column:min"`` / ``"column:max"`` (CLI syntax)."""
    column, _, sense = text.partition(":")
    sense = sense or "min"
    if sense not in ("min", "max"):
        raise ValueError(f"objective sense must be 'min' or 'max', got {sense!r}")
    return Objective(column=column, maximize=(sense == "max"))


def objective_vector(outcome: CampaignOutcome,
                     objectives: Sequence[Objective]) -> Tuple[float, ...]:
    """The outcome's objective values in canonical minimizing form."""
    row = outcome.as_row()
    return tuple(
        -float(row[o.column]) if o.maximize else float(row[o.column])
        for o in objectives
    )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance on minimizing vectors: ``a`` at least as good in all
    objectives and strictly better in at least one.  Equal vectors do not
    dominate each other (ties survive together)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


class ParetoFront:
    """Incrementally maintained set of mutually non-dominated points.

    Points are arbitrary payloads judged by their minimizing objective
    vectors.  :meth:`add` keeps the front minimal: a newly dominated point is
    rejected, a newly dominating point evicts everything it dominates.
    Duplicate vectors coexist on the front (neither dominates the other).
    """

    def __init__(self, objectives: Sequence[Objective] = DEFAULT_OBJECTIVES):
        self.objectives = tuple(objectives)
        if not self.objectives:
            raise ValueError("at least one objective is required")
        self._points: List[Tuple[Tuple[float, ...], object]] = []

    def add(self, payload: object,
            vector: Optional[Sequence[float]] = None) -> bool:
        """Offer a point; returns True when it joins the front."""
        if vector is None:
            vector = objective_vector(payload, self.objectives)
        vector = tuple(float(v) for v in vector)
        if len(vector) != len(self.objectives):
            raise ValueError("vector length does not match the objectives")
        for existing, _ in self._points:
            if dominates(existing, vector):
                return False
        self._points = [(v, p) for v, p in self._points
                        if not dominates(vector, v)]
        self._points.append((vector, payload))
        return True

    def extend(self, payloads: Iterable[object]) -> None:
        """Bulk-add payloads through one vectorized non-dominated filter.

        Equivalent to calling :meth:`add` per payload (dominance is
        transitive, so the survivors of sequential adds are exactly the
        non-dominated subset of old-front ∪ new points, in insertion
        order) — but one :func:`pareto_front_mask` call instead of a
        Python scan per point.
        """
        new_points = [(objective_vector(payload, self.objectives), payload)
                      for payload in payloads]
        if not new_points:
            return
        combined = self._points + new_points
        mask = pareto_front_mask([vector for vector, _ in combined])
        self._points = [point for point, keep in zip(combined, mask) if keep]

    @property
    def vectors(self) -> List[Tuple[float, ...]]:
        return [vector for vector, _ in self._points]

    @property
    def points(self) -> List[object]:
        return [payload for _, payload in self._points]

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self):
        return (f"ParetoFront({len(self._points)} points, "
                f"objectives=[{', '.join(map(str, self.objectives))}])")


#: Largest point count for which pareto_ranks keeps the full n×n dominance
#: matrix (one byte per pair; 8192² = 64 MiB).  Beyond it the fronts are
#: peeled with recomputed blocks instead — same result, no n² storage.
_DOMINANCE_MATRIX_MAX_POINTS = 8192

#: Broadcast block size budget: ≈32M comparison cells per temporary.
_DOMINANCE_BLOCK_CELLS = 32_000_000


def _dominance_block(block: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Boolean matrix: ``[i, j]`` is True when ``block[i]`` dominates
    ``vectors[j]`` (minimizing; equal vectors do not dominate)."""
    less_equal = (block[:, None, :] <= vectors[None, :, :]).all(axis=-1)
    less = (block[:, None, :] < vectors[None, :, :]).any(axis=-1)
    return less_equal & less


def _block_rows(total: int, dims: int) -> int:
    return max(1, _DOMINANCE_BLOCK_CELLS // max(1, total * dims))


def pareto_ranks(vectors: Sequence[Sequence[float]]) -> List[int]:
    """Non-dominated sorting: rank 0 is the front, rank 1 the front of the
    rest, and so on.  Equal vectors tie (same rank), exactly like the
    peeling definition: a point's rank is the round in which it becomes
    non-dominated once all earlier rounds' points are removed.

    Vectorized as dominator *counting*: one blocked numpy broadcast builds
    per-point dominator counts (and, for round-sized inputs, the dominance
    matrix itself), then each front is the zero-count set and its outgoing
    dominance is subtracted — O(n²·d) total work instead of O(n²·d·rounds)
    Python-level scans.  Values are compared as float64.
    """
    count = len(vectors)
    if count == 0:
        return []
    matrix = np.asarray([tuple(vector) for vector in vectors],
                        dtype=np.float64)
    dims = matrix.shape[1] if matrix.ndim == 2 else 1
    matrix = matrix.reshape(count, dims)
    block_rows = _block_rows(count, dims)
    keep_matrix = count <= _DOMINANCE_MATRIX_MAX_POINTS
    dominance = (np.empty((count, count), dtype=bool) if keep_matrix
                 else None)
    counts = np.zeros(count, dtype=np.int64)
    for start in range(0, count, block_rows):
        block = _dominance_block(matrix[start:start + block_rows], matrix)
        if keep_matrix:
            dominance[start:start + block_rows] = block
        counts += block.sum(axis=0)

    ranks = np.full(count, -1, dtype=np.int64)
    unassigned = np.ones(count, dtype=bool)
    rank = 0
    while unassigned.any():
        front = unassigned & (counts == 0)
        if not front.any():  # pragma: no cover - defensive (cannot happen)
            front = unassigned.copy()
        ranks[front] = rank
        if keep_matrix:
            counts -= dominance[front].sum(axis=0)
        else:
            front_vectors = matrix[front]
            for start in range(0, len(front_vectors), block_rows):
                counts -= _dominance_block(
                    front_vectors[start:start + block_rows],
                    matrix).sum(axis=0)
        unassigned &= ~front
        rank += 1
    return ranks.tolist()


def pareto_front_mask(vectors: Sequence[Sequence[float]]) -> List[bool]:
    """Vectorized non-dominated filter: ``mask[i]`` is True when no other
    point dominates ``vectors[i]`` (minimizing; equal vectors both survive).

    The two-objective case — the paper's time-vs-power trade-off and the
    search default — runs in O(n log n) via a lexicographic sweep; higher
    dimensions fall back to the blocked dominance broadcast.
    """
    count = len(vectors)
    if count == 0:
        return []
    matrix = np.asarray([tuple(vector) for vector in vectors],
                        dtype=np.float64)
    dims = matrix.shape[1] if matrix.ndim == 2 else 1
    matrix = matrix.reshape(count, dims)
    if dims == 2:
        x, y = matrix[:, 0], matrix[:, 1]
        order = np.lexsort((y, x))
        x_sorted, y_sorted = x[order], y[order]
        # First position of each x-group: everything before it has strictly
        # smaller x, so its running y-minimum is the best possible partner
        # for an x-strict domination.
        group_start = np.searchsorted(x_sorted, x_sorted, side="left")
        running_min = np.minimum.accumulate(y_sorted)
        min_y_smaller_x = np.where(
            group_start > 0,
            running_min[np.maximum(group_start - 1, 0)], np.inf)
        dominated_sorted = ((min_y_smaller_x <= y_sorted)
                            | (y_sorted[group_start] < y_sorted))
        mask = np.ones(count, dtype=bool)
        mask[order] = ~dominated_sorted
        return mask.tolist()
    dominated = np.zeros(count, dtype=bool)
    block_rows = _block_rows(count, dims)
    for start in range(0, count, block_rows):
        dominated |= _dominance_block(matrix[start:start + block_rows],
                                      matrix).any(axis=0)
    return (~dominated).tolist()


def _normalized_scores(vectors: Sequence[Tuple[float, ...]]) -> List[float]:
    """Scalarized tie-break: sum of min-max-normalized objective values.

    Vectorized: per-objective min/max plus one broadcast normalization pass.
    Degenerate objectives (zero span) contribute nothing, exactly like the
    original per-element loop; the per-point summation order over the (few)
    objectives is unchanged, so scores — and the selection tie-breaks built
    on them — are bit-identical to the scalar implementation.
    """
    if not vectors:
        return []
    matrix = np.asarray([tuple(vector) for vector in vectors],
                        dtype=np.float64)
    matrix = matrix.reshape(len(vectors), -1)
    lows = matrix.min(axis=0)
    spans = matrix.max(axis=0) - lows
    live = spans > 0
    if not live.any():
        return [0.0] * len(vectors)
    normalized = (matrix[:, live] - lows[live]) / spans[live]
    return normalized.sum(axis=1).tolist()


# -- the search ------------------------------------------------------------------
#: One search candidate: (scenario name, schedule name).
CandidateKey = Tuple[str, str]

#: Objective columns the surrogate tier can score under the batch estimator.
SURROGATE_OBJECTIVE_COLUMNS = ("test_length_cycles", "test_length_mcycles",
                               "peak_power")

#: Objective columns whose partial values are provable lower bounds during a
#: bounded simulation (the soundness requirement of racing).  The makespan
#: objective must be ``test_length_cycles`` — its integer cycle count maps
#: exactly onto the simulation horizon.
RACE_OBJECTIVE_COLUMNS = ("test_length_cycles", "peak_power")


def validate_surrogate_objectives(objectives: Sequence[Objective]) -> None:
    """Reject objective sets the batch estimator cannot score."""
    unsupported = [str(o) for o in objectives
                   if o.maximize or o.column not in SURROGATE_OBJECTIVE_COLUMNS]
    if unsupported:
        raise ValueError(
            f"the surrogate tier only scores minimizing objectives "
            f"over {list(SURROGATE_OBJECTIVE_COLUMNS)}; "
            f"unsupported: {unsupported}")


def validate_race_objectives(objectives: Sequence[Objective]) -> None:
    """Reject objective sets whose partial values are not lower bounds."""
    unsupported = [str(o) for o in objectives
                   if o.maximize or o.column not in RACE_OBJECTIVE_COLUMNS]
    if unsupported:
        raise ValueError(
            f"racing needs provable lower bounds: only minimizing "
            f"objectives over {list(RACE_OBJECTIVE_COLUMNS)} are "
            f"supported; unsupported: {unsupported}")
    if all(o.column != "test_length_cycles" for o in objectives):
        raise ValueError(
            "racing requires the test_length_cycles objective "
            "(the makespan horizon is derived from it)")


@dataclass
class SurrogateEntry:
    """The surrogate tier's verdict on one candidate pair."""

    scenario: str
    schedule: str
    #: Estimated schedule makespan under the vectorized batch estimator.
    cycles: int
    #: Power-model peak over the schedule's phases.
    peak_power: float
    #: Whether the candidate advanced into the simulated rounds.
    kept: bool = True

    @property
    def key(self) -> CandidateKey:
        return (self.scenario, self.schedule)


@dataclass
class SurrogateScreen:
    """Provenance of the estimator pre-screening round."""

    #: The exploration margin: fraction of the estimator-dominated
    #: candidates forwarded into simulation anyway.
    keep: float
    #: One entry per screened candidate, in candidate order.
    entries: List[SurrogateEntry] = field(default_factory=list)

    @property
    def screened(self) -> int:
        return len(self.entries)

    @property
    def kept(self) -> int:
        return sum(1 for entry in self.entries if entry.kept)

    def scores(self) -> Dict[CandidateKey, Tuple[int, float]]:
        """``(scenario, schedule) -> (cycles, peak_power)`` of every entry."""
        return {entry.key: (entry.cycles, entry.peak_power)
                for entry in self.entries}


def _surrogate_vector(cycles: int, peak: float,
                      objectives: Sequence[Objective]) -> Tuple[float, ...]:
    """Surrogate scores mapped onto the search objectives (minimizing)."""
    values = {"test_length_cycles": float(cycles),
              "test_length_mcycles": cycles / 1e6,
              "peak_power": peak}
    return tuple(values[o.column] for o in objectives)


def surrogate_screen_candidates(
    specs: Sequence[ScenarioSpec],
    candidates: List[Tuple[ScenarioSpec, str]],
    objectives: Sequence[Objective],
    keep: float,
) -> Tuple[SurrogateScreen, List[Tuple[ScenarioSpec, str]]]:
    """Score candidate pairs under the batch estimator and keep the
    estimator Pareto front plus the exploration margin.

    Every scenario's task set is appended into one
    :class:`~repro.schedule.estimator.BatchEstimator` (per-row platform
    parameters, so mixed platforms vectorize together); each candidate's
    score is then a phase-max sum over the shared cycles array plus the
    power model's peak.  ``keep`` is the fraction of the estimator-dominated
    candidates forwarded into simulation anyway — 0 trusts the estimator
    front alone, 1 disables pruning.  Selection order (Pareto rank,
    normalized score, names) matches the simulated rounds' selection, so
    screening is fully deterministic.
    """
    validate_surrogate_objectives(objectives)
    if not 0.0 <= keep <= 1.0:
        raise ValueError("surrogate_keep must be in [0, 1]")
    batch = BatchEstimator()
    scenarios = {}
    task_rows = {}
    for spec in specs:
        scenario = cached_scenario(spec)
        scenarios[spec.name] = scenario
        task_rows[spec.name] = batch.add_estimator_tasks(
            scenario.estimator, scenario.tasks)
    entries: List[SurrogateEntry] = []
    vectors: List[Tuple[float, ...]] = []
    for spec, schedule_name in candidates:
        scenario = scenarios[spec.name]
        schedule = scenario.schedule_for(schedule_name)
        cycles = batch.schedule_cycles(schedule, task_rows[spec.name])
        peak = scenario.power_model.schedule_peak_power(
            schedule, scenario.tasks)
        entries.append(SurrogateEntry(scenario=spec.name,
                                      schedule=schedule_name,
                                      cycles=cycles, peak_power=peak,
                                      kept=False))
        vectors.append(_surrogate_vector(cycles, peak, objectives))
    ranks = pareto_ranks(vectors)
    scores = _normalized_scores(vectors)
    front_size = sum(1 for rank in ranks if rank == 0)
    margin = math.ceil(keep * (len(candidates) - front_size))
    order = sorted(
        range(len(candidates)),
        key=lambda i: (ranks[i], scores[i],
                       entries[i].scenario, entries[i].schedule))
    for index in order[:front_size + margin]:
        entries[index].kept = True
    kept_pairs = [candidate for candidate, entry in zip(candidates, entries)
                  if entry.kept]
    return SurrogateScreen(keep=keep, entries=entries), kept_pairs


def _race_horizon(front: "ParetoFront", power_lb: float,
                  objectives: Sequence[Objective]) -> Optional[int]:
    """Largest makespan (cycles) a candidate may reach before the incumbent
    front provably dominates any completion.

    A candidate's final vector is bounded below by ``(L, power_lb)``: the
    simulated makespan only grows, and the simulated peak power is at least
    the largest task power in the schedule (every task records one activity
    interval at its own power).  A front point with ``peak_power <=
    power_lb`` therefore dominates every completion whose length reaches the
    returned horizon, so stopping there is provably sound — the stopped
    candidate could never have joined the front.  Returns None when no front
    point constrains the candidate.
    """
    columns = [o.column for o in objectives]
    length_index = columns.index("test_length_cycles")
    power_index = (columns.index("peak_power")
                   if "peak_power" in columns else None)
    horizon: Optional[int] = None
    for vector in front.vectors:
        length = int(vector[length_index])
        if power_index is None:
            bound = length + 1
        elif vector[power_index] < power_lb:
            bound = length
        elif vector[power_index] == power_lb:
            bound = length + 1
        else:
            continue
        if horizon is None or bound < horizon:
            horizon = bound
    return horizon


def race_jobs(jobs: Sequence[CampaignJob],
              objectives: Sequence[Objective] = None,
              ) -> Tuple[CampaignRun, List[CandidateKey]]:
    """Run campaign jobs sequentially, racing against the incumbent front.

    Each completed job tightens a shared :class:`ParetoFront`; a later job
    is abandoned at the horizon where its completion provably cannot join
    that front.  Returns the run holding only the *completed* outcomes (in
    job order) plus the stopped candidate keys — stopped jobs carry partial
    lower-bound metrics that would poison a flat campaign artifact, so they
    are dropped from the rows rather than recorded.
    """
    if objectives is None:
        objectives = DEFAULT_OBJECTIVES
    validate_race_objectives(objectives)
    wall_start = time.perf_counter()
    incumbent = ParetoFront(objectives)
    completed: List[CampaignOutcome] = []
    stopped: List[CandidateKey] = []
    for job in jobs:
        scenario = cached_scenario(job.spec)
        schedule = scenario.schedule_for(job.schedule)
        power_lb = max((scenario.tasks[name].power
                        for name in schedule.task_names), default=0.0)
        horizon = _race_horizon(incumbent, power_lb, objectives)
        outcome, was_stopped = execute_job_raced(job, horizon)
        if was_stopped:
            stopped.append((job.spec.name, job.schedule))
        else:
            completed.append(outcome)
            incumbent.add(outcome)
    run = CampaignRun(outcomes=completed, workers=1,
                      wall_seconds=time.perf_counter() - wall_start)
    return run, stopped


@dataclass
class AdaptiveRound:
    """Provenance of one successive-halving round."""

    index: int
    budget: float
    run: CampaignRun
    #: Candidate keys that advanced out of this round (for the final round:
    #: the keys of the Pareto front).
    survivors: List[CandidateKey] = field(default_factory=list)
    #: Jobs actually simulated this round.  Budget quantization can make a
    #: job identical to one from an earlier round (``max(1, round(...))``
    #: maps nearby budgets to the same pattern count); such jobs reuse the
    #: earlier outcome — determinism makes the reuse exact — and do not
    #: count as simulated again.
    simulated_jobs: int = 0
    #: Candidates whose simulation was early-stopped by racing (their rows
    #: hold partial lower bounds; they never join fronts or the job memo).
    race_stopped: List[CandidateKey] = field(default_factory=list)

    @property
    def job_count(self) -> int:
        """Result rows of this round (simulated + reused)."""
        return len(self.run.outcomes)

    @property
    def completed_jobs(self) -> int:
        """Jobs simulated to completion this round (stopped ones excluded)."""
        return self.simulated_jobs - len(self.race_stopped)


@dataclass
class AdaptiveResult:
    """The collected outcome of one adaptive search."""

    objectives: Tuple[Objective, ...]
    eta: float
    min_budget: float
    rounds: List[AdaptiveRound]
    #: Non-dominated outcomes of the final full-fidelity round.
    front: List[CampaignOutcome]
    #: Candidate count of the equivalent exhaustive full-fidelity grid.
    exhaustive_jobs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: The search definition (serialized into v2 artifacts so a checkpoint
    #: is self-contained and resumable on any host).
    specs: List[ScenarioSpec] = field(default_factory=list)
    schedules_override: Optional[Tuple[str, ...]] = None
    #: Length of the full budget ladder; ``len(rounds) < planned_rounds``
    #: (equivalently ``complete=False``) marks a round-boundary checkpoint.
    planned_rounds: int = 0
    complete: bool = True
    #: Rounds replayed from a resume artifact instead of simulated.  Run
    #: metadata only (reported, never serialized): a resumed run's final
    #: artifact stays bitwise identical to the uninterrupted run's.
    resumed_rounds: int = 0
    #: Shards each round's job list was executed through (None: unsharded).
    #: Run metadata only, never serialized: sharded rounds recombine through
    #: the provenance-validated merger and stay bitwise identical to
    #: unsharded rounds.
    round_shards: Optional[int] = None
    #: The estimator pre-screening provenance (None: surrogate tier off).
    surrogate: Optional[SurrogateScreen] = None
    #: Whether in-round simulation racing was enabled.
    race: bool = False

    @property
    def total_jobs(self) -> int:
        """Jobs actually simulated (rows reused across rounds not counted)."""
        return sum(r.simulated_jobs for r in self.rounds)

    @property
    def full_fidelity_jobs(self) -> int:
        """Jobs simulated *to completion* at budget 1.0 (what halving,
        surrogate screening and racing are all meant to minimize)."""
        return sum(r.completed_jobs for r in self.rounds if r.budget >= 1.0)

    @property
    def race_stopped_jobs(self) -> int:
        """Simulations early-stopped by racing, across all rounds."""
        return sum(len(r.race_stopped) for r in self.rounds)

    def survivor_specs(self) -> List[ScenarioSpec]:
        """Full-budget specs of the final front, schedules narrowed to the
        surviving ones — feed these into a new :class:`AdaptiveSearch` (to
        extend the search around the front) or into a plain
        :class:`~repro.explore.campaign.Campaign` (to re-measure it)."""
        schedules_by_name: Dict[str, List[str]] = {}
        specs_by_name: Dict[str, ScenarioSpec] = {}
        for outcome in self.front:
            name = outcome.spec.name
            specs_by_name[name] = outcome.spec
            schedules_by_name.setdefault(name, []).append(outcome.schedule)
        return [replace(spec, schedules=tuple(schedules_by_name[name]))
                for name, spec in specs_by_name.items()]

    # -- artifacts ---------------------------------------------------------
    def iter_rows(self, deterministic: bool = True,
                  ) -> Iterator[Dict[str, object]]:
        """Stream every round's result rows plus the provenance columns
        (one row dict at a time — the columnar store's append path)."""
        surrogate_scores = (self.surrogate.scores()
                            if self.surrogate is not None else None)
        for round_ in self.rounds:
            survivors = set(round_.survivors)
            stopped = set(round_.race_stopped)
            for outcome in round_.run.outcomes:
                row = (outcome.deterministic_row() if deterministic
                       else outcome.as_row())
                key = (outcome.spec.name, outcome.schedule)
                row["round"] = round_.index
                row["budget"] = round_.budget
                row["survivor"] = key in survivors
                if surrogate_scores is not None:
                    cycles, peak = surrogate_scores[key]
                    row["surrogate_cycles"] = cycles
                    row["surrogate_peak_power"] = peak
                if self.race:
                    row["race_stopped"] = key in stopped
                yield row

    def rows(self, deterministic: bool = True) -> List[Dict[str, object]]:
        """Every round's result rows plus the provenance columns."""
        return list(self.iter_rows(deterministic))

    def columns(self, deterministic: bool = True) -> List[str]:
        columns = [c for c in RESULT_COLUMNS
                   if not deterministic or c not in NONDETERMINISTIC_COLUMNS]
        columns += list(PROVENANCE_COLUMNS)
        # The surrogate/race provenance columns appear only when the feature
        # ran, so default searches keep writing byte-identical artifacts.
        if self.surrogate is not None:
            columns += ["surrogate_cycles", "surrogate_peak_power"]
        if self.race:
            columns += ["race_stopped"]
        return columns

    def write_csv(self, path, deterministic: bool = True) -> None:
        """Write all rounds as CSV (campaign schema + provenance columns)."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=self.columns(deterministic))
            writer.writeheader()
            writer.writerows(self.rows(deterministic))

    def write_json(self, path, deterministic: bool = True) -> None:
        """Write a versioned JSON artifact with rows, rounds and the front."""
        with open(path, "w") as handle:
            json.dump(self.as_document(deterministic), handle, indent=2,
                      sort_keys=False)
            handle.write("\n")

    def as_document(self, deterministic: bool = True) -> Dict[str, object]:
        document = {
            "schema_version": SCHEMA_VERSION,
            "adaptive_schema_version": ADAPTIVE_SCHEMA_VERSION,
            "complete": self.complete,
            "planned_rounds": self.planned_rounds,
            "completed_rounds": len(self.rounds),
            "objectives": [str(o) for o in self.objectives],
            "eta": self.eta,
            "min_budget": self.min_budget,
            "budgets": [r.budget for r in self.rounds],
            "round_stats": [
                {"index": r.index, "budget": r.budget,
                 "simulated_jobs": r.simulated_jobs,
                 "survivors": len(r.survivors),
                 **({"race_stopped": len(r.race_stopped)} if self.race
                    else {})}
                for r in self.rounds
            ],
            "exhaustive_jobs": self.exhaustive_jobs,
            "total_jobs": self.total_jobs,
            "full_fidelity_jobs": self.full_fidelity_jobs,
            "specs": [spec_to_dict(spec) for spec in self.specs],
            "schedules_override": (list(self.schedules_override)
                                   if self.schedules_override is not None
                                   else None),
            "columns": self.columns(deterministic),
            "rows": self.rows(deterministic),
            "front": [
                {"scenario": outcome.spec.name, "schedule": outcome.schedule,
                 **{o.column: outcome.as_row()[o.column]
                    for o in self.objectives}}
                for outcome in self.front
            ],
        }
        # Feature blocks appear only when the feature ran (default artifacts
        # stay byte-identical); their presence is also what tells
        # from_document to re-enable the feature on resume.
        if self.surrogate is not None:
            document["surrogate"] = {
                "keep": self.surrogate.keep,
                "screened": self.surrogate.screened,
                "kept": self.surrogate.kept,
                "scores": [
                    {"scenario": entry.scenario, "schedule": entry.schedule,
                     "surrogate_cycles": entry.cycles,
                     "surrogate_peak_power": entry.peak_power,
                     "kept": entry.kept}
                    for entry in self.surrogate.entries
                ],
            }
        if self.race:
            document["race"] = {"stopped_jobs": self.race_stopped_jobs}
        if not deterministic:
            # Placement/timing metadata varies run to run, exactly like the
            # cpu_seconds/worker row columns it accompanies.
            document["workers"] = self.workers
            document["wall_seconds"] = self.wall_seconds
        return document


class AdaptiveSearch:
    """Successive halving with Pareto pruning over scenario × schedule pairs.

    ``specs`` (or a :class:`~repro.explore.scenarios.ScenarioGrid`) define the
    candidate scenarios; ``schedules`` overrides the per-spec schedule
    selection exactly like :class:`~repro.explore.campaign.Campaign`.  The
    budget ladder runs ``min_budget, min_budget·eta, ... , 1.0``; each round
    evaluates the surviving pairs at its budget through
    :func:`~repro.explore.campaign.run_jobs` (``workers=N`` fans out to the
    pool) and keeps the best ``1/eta`` in Pareto-rank order — dominated pairs
    are pruned first, ties inside the cutting rank are broken by a normalized
    objective sum and then by name, so selection is fully deterministic.
    """

    def __init__(self, specs: Union[ScenarioGrid, Iterable[ScenarioSpec]],
                 schedules: Optional[Sequence[str]] = None,
                 objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
                 eta: float = 2.0, min_budget: float = 0.25,
                 surrogate: bool = False, surrogate_keep: float = 0.25,
                 race: bool = False):
        if isinstance(specs, ScenarioGrid):
            specs = specs.specs()
        self.specs: List[ScenarioSpec] = list(specs)
        self.schedules = (canonical_schedule_names(schedules)
                          if schedules is not None else None)
        self.objectives = tuple(objectives)
        if not self.specs:
            raise ValueError("an adaptive search needs at least one scenario")
        if not self.objectives:
            raise ValueError("at least one objective is required")
        if eta <= 1.0:
            raise ValueError("eta must be > 1")
        if not 0.0 < min_budget <= 1.0:
            raise ValueError("min_budget must be in (0, 1]")
        self.eta = float(eta)
        self.min_budget = float(min_budget)
        self.surrogate = bool(surrogate)
        self.surrogate_keep = float(surrogate_keep)
        self.race = bool(race)
        if not 0.0 <= self.surrogate_keep <= 1.0:
            raise ValueError("surrogate_keep must be in [0, 1]")
        if self.surrogate:
            validate_surrogate_objectives(self.objectives)
        if self.race:
            validate_race_objectives(self.objectives)
        names = [spec.name for spec in self.specs]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(f"duplicate scenario names in search: {duplicates}")

    # -- schedule of budgets ------------------------------------------------
    def budgets(self) -> List[float]:
        """The ascending budget ladder ``min_budget, min_budget·eta, ...``,
        capped at (and always ending with) the full-fidelity round."""
        ladder = []
        budget = self.min_budget
        while budget < 1.0 - 1e-12:
            ladder.append(budget)
            budget *= self.eta
        ladder.append(1.0)
        return ladder

    def candidates(self) -> List[Tuple[ScenarioSpec, str]]:
        """The initial candidate pairs, spec-major (cache-friendly order)."""
        return [(spec, schedule)
                for spec in self.specs
                for schedule in (self.schedules or spec.schedules)]

    @staticmethod
    def budgeted_spec(spec: ScenarioSpec, budget: float) -> ScenarioSpec:
        """*spec* thinned to *budget*: the external-scan pattern volume (and
        with it the derived BIST volume) scales down; everything structural —
        cores, tasks, schedules, seeds — is untouched."""
        if budget >= 1.0:
            return spec
        patterns = max(1, round(spec.patterns_per_core * budget))
        return replace(spec, patterns_per_core=patterns)

    # -- selection ----------------------------------------------------------
    def _select(self, outcomes: List[CampaignOutcome], keep: int,
                stopped: Sequence[CandidateKey] = (),
                ) -> List[CandidateKey]:
        """The best *keep* candidate keys, Pareto-rank order.

        Race-stopped outcomes carry partial lower bounds, not comparable to
        completed metrics, so they are excluded from the rank computation
        and sorted (by name) behind every completed candidate — they advance
        only when the keep quota exceeds the completed field.
        """
        stopped_keys = set(stopped)
        completed = [o for o in outcomes
                     if (o.spec.name, o.schedule) not in stopped_keys]
        vectors = [objective_vector(o, self.objectives) for o in completed]
        ranks = pareto_ranks(vectors)
        scores = _normalized_scores(vectors)
        order = sorted(
            range(len(completed)),
            key=lambda i: (ranks[i], scores[i],
                           completed[i].spec.name, completed[i].schedule),
        )
        selected = [(completed[i].spec.name, completed[i].schedule)
                    for i in order]
        selected += sorted(stopped_keys)
        return selected[:keep]

    # -- surrogate screening --------------------------------------------------
    def _surrogate_screen(self, candidates: List[Tuple[ScenarioSpec, str]],
                          ) -> Tuple[SurrogateScreen,
                                     List[Tuple[ScenarioSpec, str]]]:
        return surrogate_screen_candidates(
            self.specs, candidates, self.objectives, self.surrogate_keep)

    # -- racing ---------------------------------------------------------------
    def _race_horizon(self, front: ParetoFront,
                      power_lb: float) -> Optional[int]:
        return _race_horizon(front, power_lb, self.objectives)

    def _run_round_raced(self, jobs: Sequence[CampaignJob],
                         evaluated: Dict[CampaignJob, CampaignOutcome],
                         ) -> Tuple[Dict[CampaignJob, CampaignOutcome],
                                    List[CandidateKey], float]:
        """Race one round in-process: jobs run sequentially against a shared
        incumbent front, and a job is abandoned at the horizon where its
        completion provably cannot join the front.

        Returns ``(outcomes by job, stopped keys, wall seconds)``.  Reused
        outcomes seed the front before any new job runs; each completed job
        tightens it.  Stopped outcomes never enter the cross-round memo (a
        later round re-simulates them fresh) and never join a front.
        """
        wall_start = time.perf_counter()
        incumbent = ParetoFront(self.objectives)
        for job in jobs:
            if job in evaluated:
                incumbent.add(evaluated[job])
        outcomes: Dict[CampaignJob, CampaignOutcome] = {}
        stopped: List[CandidateKey] = []
        for job in jobs:
            if job in evaluated:
                outcomes[job] = evaluated[job]
                continue
            scenario = cached_scenario(job.spec)
            schedule = scenario.schedule_for(job.schedule)
            power_lb = max((scenario.tasks[name].power
                            for name in schedule.task_names), default=0.0)
            horizon = self._race_horizon(incumbent, power_lb)
            outcome, was_stopped = execute_job_raced(job, horizon)
            outcomes[job] = outcome
            if was_stopped:
                stopped.append((job.spec.name, job.schedule))
            else:
                evaluated[job] = outcome
                incumbent.add(outcome)
        return outcomes, stopped, time.perf_counter() - wall_start

    # -- resume -------------------------------------------------------------
    @classmethod
    def from_document(cls, document: Mapping[str, object]) -> "AdaptiveSearch":
        """Rebuild the search an artifact document was written by.

        v2 artifacts are self-contained: they carry the serialized specs, the
        schedule override and every search parameter.  Older artifacts (and
        plain campaign artifacts) are rejected with a clear error.
        """
        _validate_resume_versions(document)
        specs = [spec_from_dict(entry) for entry in document["specs"]]
        schedules = document.get("schedules_override")
        surrogate_block = document.get("surrogate")
        return cls(
            specs,
            schedules=tuple(schedules) if schedules is not None else None,
            objectives=tuple(parse_objective(text)
                             for text in document["objectives"]),
            eta=float(document["eta"]),
            min_budget=float(document["min_budget"]),
            surrogate=surrogate_block is not None,
            surrogate_keep=(float(surrogate_block["keep"])
                            if surrogate_block is not None else 0.25),
            race="race" in document,
        )

    def _replayable_rounds(self, document: Mapping[str, object],
                           budgets: Sequence[float],
                           ) -> Dict[int, Dict[CandidateKey, Mapping]]:
        """Validate a checkpoint document against this search and index its
        rows as ``round -> (scenario, schedule) -> row`` for replay."""
        _validate_resume_versions(document)
        if document.get("complete", False):
            raise ValueError(
                "resume artifact is already complete; nothing to resume "
                "(re-running the search reproduces it bit for bit)"
            )
        completed = int(document.get("completed_rounds", 0))
        if completed < 1:
            raise ValueError("resume artifact has no completed rounds")
        doc_budgets = [float(b) for b in document.get("budgets", [])]
        if len(doc_budgets) != completed or doc_budgets != budgets[:completed]:
            raise ValueError(
                f"resume artifact budget ladder {doc_budgets} does not match "
                f"the search's ladder {budgets} — different eta/min_budget?"
            )
        rows = document.get("rows")
        if not isinstance(rows, list) or \
                not all(isinstance(row, Mapping) for row in rows):
            raise ValueError("resume artifact rows are malformed")
        by_round: Dict[int, Dict[CandidateKey, Mapping]] = {}
        for row in rows:
            key = (str(row["scenario"]), str(row["schedule"]))
            by_round.setdefault(int(row["round"]), {})[key] = row
        if sorted(by_round) != list(range(completed)):
            raise ValueError(
                f"resume artifact rows cover rounds {sorted(by_round)}, "
                f"expected 0..{completed - 1}"
            )
        return by_round

    # -- per-round execution ------------------------------------------------
    def _run_round_jobs(self, new_jobs: Sequence[CampaignJob], workers: int,
                        mp_context: Optional[str],
                        batch_size: Optional[int],
                        round_shards: Optional[int],
                        lead_shard: int) -> Tuple[List[CampaignOutcome], float]:
        """Simulate one round's new jobs, optionally through shards.

        With ``round_shards=N`` the round's job list — plain
        :class:`CampaignJob` data, exactly like a campaign's — is planned
        into ``N`` deterministic shards, each executed on the standard
        worker-pool path, and the shard artifacts are recombined through the
        provenance-validated merger before selection.  Execution starts at
        ``lead_shard`` and wraps around; because the merger reorders by
        shard index, the result is independent of that rotation and bitwise
        identical to an unsharded round.  Sharded rounds rebuild outcomes
        from deterministic artifact rows, so the timing/placement fields
        (``cpu_seconds``/``worker``) are zeroed — the deterministic artifact
        is unaffected.

        Each shard runs through :func:`~repro.explore.distrib.run_shard`
        with its own worker pool and per-shard batch sizing — deliberately
        the exact code path (and cost profile) one host of a distributed
        fleet would execute, at the price of ``N`` pool spawns per round on
        a single machine.  Use the plain path when local wall-clock is the
        only concern.
        """
        if round_shards is None or round_shards <= 1 or len(new_jobs) < 2:
            run = run_jobs(list(new_jobs), workers=workers,
                           mp_context=mp_context, batch_size=batch_size)
            return run.outcomes, run.wall_seconds
        count = min(round_shards, len(new_jobs))
        shards = plan_shards(list(new_jobs), count)
        wall_seconds = 0.0
        documents: Dict[int, Mapping[str, object]] = {}
        for offset in range(count):
            index = (lead_shard + offset) % count
            shard_run = run_shard(shards[index], workers=workers,
                                  mp_context=mp_context,
                                  batch_size=batch_size)
            wall_seconds += shard_run.run.wall_seconds
            documents[index] = shard_run.as_document()
        merged = merge_shard_documents([documents[i] for i in range(count)])
        outcomes = [outcome_from_row(row, job.spec)
                    for row, job in zip(merged["rows"], new_jobs)]
        return outcomes, wall_seconds

    # -- execution ----------------------------------------------------------
    def run(self, workers: int = 1, mp_context: Optional[str] = None,
            batch_size: Optional[int] = None,
            max_rounds: Optional[int] = None,
            resume_from: Optional[Mapping[str, object]] = None,
            round_shards: Optional[int] = None,
            lead_shard: int = 0) -> AdaptiveResult:
        """Run the search and return the collected result.

        ``max_rounds=k`` stops after *k* rounds at a round boundary; the
        partial result (``complete=False``, empty front) serializes to a
        checkpoint artifact.  ``resume_from=document`` replays the completed
        rounds recorded in such an artifact — outcomes, survivors and the
        evaluated-job memo are reconstructed from the provenance columns, no
        job is re-simulated — and continues with the remaining rounds.
        Replay is validated against this search (budget ladder, candidate
        sets, survivor selection, simulation counters), so a mismatched or
        doctored artifact fails loudly instead of corrupting the search.

        ``round_shards=N`` routes every round's job list through the
        distribution layer (:func:`~repro.explore.distrib.plan_shards` →
        :func:`~repro.explore.distrib.run_shard` →
        :func:`~repro.explore.distrib.merge_shard_documents`, starting at
        ``lead_shard``); results stay bitwise identical to an unsharded run
        (see :meth:`_run_round_jobs`).
        """
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if round_shards is not None and round_shards < 1:
            raise ValueError("round_shards must be >= 1")
        if round_shards is not None and not 0 <= lead_shard < round_shards:
            raise ValueError(
                f"lead_shard must be in [0, {round_shards}) "
                f"for {round_shards} shard(s)")
        if self.race and round_shards is not None and round_shards > 1:
            raise ValueError(
                "racing runs each round in-process against a shared "
                "incumbent front; it cannot be combined with round shards")
        if self.race and workers > 1:
            raise ValueError(
                "racing runs each round in-process against a shared "
                "incumbent front; it cannot be combined with workers > 1")
        candidates = self.candidates()
        exhaustive_jobs = len(candidates)
        surrogate_screen: Optional[SurrogateScreen] = None
        if self.surrogate:
            # The estimator pre-screen is deterministic and cheap, so a
            # resumed run simply recomputes it; the replay validation below
            # would catch any divergence in the surviving candidate set.
            surrogate_screen, candidates = self._surrogate_screen(candidates)
        budgets = self.budgets()
        replayable = (self._replayable_rounds(resume_from, budgets)
                      if resume_from is not None else {})
        limit = (len(budgets) if max_rounds is None
                 else min(max_rounds, len(budgets)))
        rounds: List[AdaptiveRound] = []
        front = ParetoFront(self.objectives)
        # Budget quantization (max(1, round(patterns * b))) can map nearby
        # budgets to identical budgeted specs; evaluated jobs are memoized so
        # such repeats reuse the (deterministic) earlier outcome for free.
        # Race-stopped outcomes are never memoized: their partial metrics are
        # only meaningful against the round front that stopped them.
        evaluated: Dict[CampaignJob, CampaignOutcome] = {}
        resumed_rounds = 0
        wall_start = time.perf_counter()
        for index, budget in enumerate(budgets[:limit]):
            jobs = [CampaignJob(spec=self.budgeted_spec(spec, budget),
                                schedule=schedule)
                    for spec, schedule in candidates]
            new_jobs = [job for job in jobs if job not in evaluated]
            stopped_keys: List[CandidateKey] = []
            round_outcomes: Optional[Dict[CampaignJob, CampaignOutcome]] = None
            if index in replayable:
                stopped_keys, round_outcomes = self._replay_round(
                    index, jobs, new_jobs, replayable[index],
                    resume_from, evaluated)
                resumed_rounds += 1
                wall_seconds = 0.0
            elif self.race:
                round_outcomes, stopped_keys, wall_seconds = \
                    self._run_round_raced(jobs, evaluated)
            elif new_jobs:
                outcomes, wall_seconds = self._run_round_jobs(
                    new_jobs, workers, mp_context, batch_size,
                    round_shards, lead_shard)
                evaluated.update(zip(new_jobs, outcomes))
            else:
                wall_seconds = 0.0
            if round_outcomes is None:
                round_outcomes = {job: evaluated[job] for job in jobs}
            run = CampaignRun(outcomes=[round_outcomes[job] for job in jobs],
                              workers=workers, wall_seconds=wall_seconds)
            final = index == len(budgets) - 1
            stopped_set = set(stopped_keys)
            if final:
                front.extend([o for o in run.outcomes
                              if (o.spec.name, o.schedule) not in stopped_set])
                survivors = [(o.spec.name, o.schedule) for o in front.points]
            else:
                keep = max(1, math.ceil(len(candidates) / self.eta))
                survivors = self._select(run.outcomes, keep, stopped_keys)
                surviving = set(survivors)
                candidates = [(spec, schedule) for spec, schedule in candidates
                              if (spec.name, schedule) in surviving]
            if index in replayable:
                recorded = {key for key, row in replayable[index].items()
                            if row["survivor"]}
                if recorded != set(survivors):
                    raise ValueError(
                        f"resume artifact survivors of round {index} do not "
                        f"match the deterministic selection"
                    )
            rounds.append(AdaptiveRound(index=index, budget=budget, run=run,
                                        survivors=list(survivors),
                                        simulated_jobs=len(new_jobs),
                                        race_stopped=list(stopped_keys)))
        wall_seconds = time.perf_counter() - wall_start
        return AdaptiveResult(
            objectives=self.objectives, eta=self.eta,
            min_budget=self.min_budget, rounds=rounds,
            front=list(front.points), exhaustive_jobs=exhaustive_jobs,
            workers=workers, wall_seconds=wall_seconds,
            specs=list(self.specs), schedules_override=self.schedules,
            planned_rounds=len(budgets), complete=limit == len(budgets),
            resumed_rounds=resumed_rounds,
            round_shards=(round_shards if round_shards
                          and round_shards > 1 else None),
            surrogate=surrogate_screen, race=self.race,
        )

    def _replay_round(
        self, index: int, jobs: Sequence[CampaignJob],
        new_jobs: Sequence[CampaignJob],
        rows_by_key: Mapping[CandidateKey, Mapping],
        document: Mapping[str, object],
        evaluated: Dict[CampaignJob, CampaignOutcome],
    ) -> Tuple[List[CandidateKey], Dict[CampaignJob, CampaignOutcome]]:
        """Load one completed round's outcomes from artifact rows.

        Returns the race-stopped candidate keys recorded for the round and
        the per-job outcome map.  Stopped outcomes carry partial lower-bound
        metrics and are deliberately *not* memoized into ``evaluated``.
        """
        job_keys = [(job.spec.name, job.schedule) for job in jobs]
        if set(job_keys) != set(rows_by_key):
            raise ValueError(
                f"resume artifact round {index} evaluated different "
                f"candidates than this search would — was the artifact "
                f"written by another scenario space?"
            )
        stats = document.get("round_stats", [])
        if index < len(stats):
            recorded = int(stats[index]["simulated_jobs"])
            if recorded != len(new_jobs):
                raise ValueError(
                    f"resume artifact recorded {recorded} simulated job(s) "
                    f"in round {index}, replay derives {len(new_jobs)}"
                )
        stopped_keys: List[CandidateKey] = []
        round_outcomes: Dict[CampaignJob, CampaignOutcome] = {}
        for job, key in zip(jobs, job_keys):
            row = rows_by_key[key]
            if bool(row.get("race_stopped", False)):
                stopped_keys.append(key)
                round_outcomes[job] = outcome_from_row(row, job.spec)
                continue
            if job not in evaluated:
                evaluated[job] = outcome_from_row(row, job.spec)
            round_outcomes[job] = evaluated[job]
        return stopped_keys, round_outcomes


def _validate_resume_versions(document: Mapping[str, object]) -> None:
    """Reject artifacts this code cannot faithfully resume from."""
    found = document.get("schema_version")
    if found != SCHEMA_VERSION:
        raise ValueError(
            f"cannot resume from an artifact with schema_version {found!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    found = document.get("adaptive_schema_version")
    if found != ADAPTIVE_SCHEMA_VERSION:
        raise ValueError(
            f"cannot resume from an artifact with adaptive_schema_version "
            f"{found!r} (expected {ADAPTIVE_SCHEMA_VERSION}; campaign "
            f"artifacts and pre-resume adaptive artifacts are not resumable)"
        )


def resume_search(document: Mapping[str, object], workers: int = 1,
                  mp_context: Optional[str] = None,
                  batch_size: Optional[int] = None,
                  max_rounds: Optional[int] = None,
                  round_shards: Optional[int] = None,
                  lead_shard: int = 0) -> AdaptiveResult:
    """Continue an interrupted adaptive run from its JSON artifact document.

    Rebuilds the search from the artifact's embedded definition
    (:meth:`AdaptiveSearch.from_document`), replays the completed rounds from
    the provenance columns and simulates only the remaining ones.  The final
    result — rows, survivors, front and artifact bytes — is identical to the
    uninterrupted run's (the differential resume tests pin this down).
    """
    search = AdaptiveSearch.from_document(document)
    return search.run(workers=workers, mp_context=mp_context,
                      batch_size=batch_size, max_rounds=max_rounds,
                      resume_from=document, round_shards=round_shards,
                      lead_shard=lead_shard)


def adaptive_search_from_axes(axes, base: Optional[ScenarioSpec] = None,
                              schedules: Optional[Sequence[str]] = None,
                              name_prefix: str = "scenario",
                              **kwargs) -> AdaptiveSearch:
    """Convenience constructor: grid axes straight to a runnable search."""
    grid = ScenarioGrid(axes, base=base, name_prefix=name_prefix)
    return AdaptiveSearch(grid, schedules=schedules, **kwargs)
