"""Parallel exploration campaigns over generated SoC scenarios.

A *campaign* is the cross product of scenarios × schedules, executed as
independent simulation jobs and collected into structured result rows.  Jobs
are pure functions of their :class:`~repro.explore.scenarios.ScenarioSpec`
(deterministic seeds all the way down), so a campaign can fan out to a
``multiprocessing`` worker pool and still produce bitwise-identical metrics
to a serial run — the property the result-equality tests pin down.

The result schema (:data:`RESULT_COLUMNS`) is stable and versioned; campaigns
can be persisted as CSV or JSON artifacts for downstream analysis.

Result-schema versioning: :data:`SCHEMA_VERSION` is written into every JSON
artifact (``schema_version``) and must be bumped whenever :data:`RESULT_COLUMNS`
changes — column additions included, because CSV consumers key on the exact
header.  History: v1 — the original campaign schema (PR 1); v2 — the scenario
grammar grew ``wrapper_parallel_width_bits``, ``wrapper_serial_width_bits``
and ``ate_vector_memory_words`` columns (adaptive-exploration PR); v3 —
artifacts gained a *deterministic* mode (timing/placement columns and run
metadata dropped, so the same seed yields bitwise-identical files) which is
the merge unit of the sharded-execution layer (:mod:`repro.explore.distrib`),
and adaptive documents grew the resume provenance described in
:mod:`repro.explore.adaptive`; v4 — schedule generation became the pluggable
strategy axis (:mod:`repro.schedule.strategies`): the ``schedule`` column
now holds canonical strategy spec strings (``"anneal:steps=512"``) next to
pre-built schedule names, and the ``strategy`` / ``strategy_params`` columns
record the registry name and parameter fingerprint ("" for hand-written
schedules).  The adaptive layer appends provenance columns to this schema
and versions them separately.
"""

from __future__ import annotations

import csv
import json
import multiprocessing
import os
import time
import warnings
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.explore.scenarios import Scenario, ScenarioGrid, ScenarioSpec, build_scenario
from repro.schedule.strategies import canonical_schedule_names, strategy_fingerprint
from repro.soc.system import TestRunMetrics

#: Version of the result-row schema written to artifacts (see the module
#: docstring for the version history).
SCHEMA_VERSION = 4

#: Stable column order of one campaign result row.
RESULT_COLUMNS = (
    "scenario",
    "kind",
    "seed",
    "core_count",
    "tam_width_bits",
    "ate_width_bits",
    "compression_ratio",
    "power_budget",
    "patterns_per_core",
    "memory_words",
    "wrapper_parallel_width_bits",
    "wrapper_serial_width_bits",
    "ate_vector_memory_words",
    "schedule",
    "strategy",
    "strategy_params",
    "phase_count",
    "task_count",
    "estimated_cycles",
    "test_length_cycles",
    "test_length_mcycles",
    "peak_tam_utilization",
    "avg_tam_utilization",
    "peak_power",
    "avg_power",
    "simulated_activations",
    "cpu_seconds",
    "worker",
)

#: Columns that legitimately differ between runs (timing and placement).
NONDETERMINISTIC_COLUMNS = ("cpu_seconds", "worker")


def result_columns(deterministic: bool = False) -> List[str]:
    """The artifact column list; deterministic mode drops timing/placement."""
    if deterministic:
        return [column for column in RESULT_COLUMNS
                if column not in NONDETERMINISTIC_COLUMNS]
    return list(RESULT_COLUMNS)


@dataclass(frozen=True)
class CampaignJob:
    """One unit of campaign work: a scenario simulated under one schedule."""

    spec: ScenarioSpec
    schedule: str


@dataclass
class CampaignOutcome:
    """The structured result row of one campaign job."""

    spec: ScenarioSpec
    schedule: str
    phase_count: int
    task_count: int
    estimated_cycles: int
    test_length_cycles: int
    peak_tam_utilization: float
    avg_tam_utilization: float
    peak_power: float
    avg_power: float
    simulated_activations: int
    #: CPU time of the schedule simulation (``time.process_time()`` around
    #: the run, i.e. user+system time of this process), matching the paper's
    #: "CPU [s]" column.  Not wall-clock: on a loaded host the two diverge,
    #: and the paper reports compute cost, not queueing.  Nondeterministic
    #: (dropped from deterministic artifacts).
    cpu_seconds: float = 0.0
    worker: int = 0

    @property
    def test_length_mcycles(self) -> float:
        return self.test_length_cycles / 1e6

    def as_row(self) -> Dict[str, object]:
        """The outcome as a flat dict following :data:`RESULT_COLUMNS`."""
        row = dict(self.spec.as_dict())
        row["scenario"] = row.pop("name")
        strategy, params = strategy_fingerprint(self.schedule)
        row.update({
            "schedule": self.schedule,
            "strategy": strategy,
            "strategy_params": params,
            "phase_count": self.phase_count,
            "task_count": self.task_count,
            "estimated_cycles": self.estimated_cycles,
            "test_length_cycles": self.test_length_cycles,
            "test_length_mcycles": self.test_length_mcycles,
            "peak_tam_utilization": self.peak_tam_utilization,
            "avg_tam_utilization": self.avg_tam_utilization,
            "peak_power": self.peak_power,
            "avg_power": self.avg_power,
            "simulated_activations": self.simulated_activations,
            "cpu_seconds": self.cpu_seconds,
            "worker": self.worker,
        })
        return {column: row[column] for column in RESULT_COLUMNS}

    def deterministic_row(self) -> Dict[str, object]:
        """The row without timing/placement columns (stable across runs)."""
        row = self.as_row()
        for column in NONDETERMINISTIC_COLUMNS:
            row.pop(column)
        return row

    def to_metrics(self) -> TestRunMetrics:
        """Reconstruct a :class:`TestRunMetrics` view (sweep compatibility)."""
        return TestRunMetrics(
            schedule_name=self.schedule,
            test_length_cycles=self.test_length_cycles,
            peak_tam_utilization=self.peak_tam_utilization,
            avg_tam_utilization=self.avg_tam_utilization,
            peak_power=self.peak_power,
            avg_power=self.avg_power,
            cpu_seconds=self.cpu_seconds,
            simulated_activations=self.simulated_activations,
        )


def outcome_from_row(row: Mapping[str, object],
                     spec: ScenarioSpec) -> CampaignOutcome:
    """Rebuild a :class:`CampaignOutcome` from an artifact row.

    The inverse of :meth:`CampaignOutcome.as_row` for a caller-supplied
    *spec* (rows drop the structural ``schedules``/``config_overrides``
    fields, so the spec cannot be reconstructed from the row alone).  Rows
    from deterministic artifacts lack the timing/placement columns; those
    fall back to the neutral defaults.  Used by the adaptive resume path to
    replay completed rounds without re-simulating them.
    """
    return CampaignOutcome(
        spec=spec,
        schedule=str(row["schedule"]),
        phase_count=int(row["phase_count"]),
        task_count=int(row["task_count"]),
        estimated_cycles=int(row["estimated_cycles"]),
        test_length_cycles=int(row["test_length_cycles"]),
        peak_tam_utilization=float(row["peak_tam_utilization"]),
        avg_tam_utilization=float(row["avg_tam_utilization"]),
        peak_power=float(row["peak_power"]),
        avg_power=float(row["avg_power"]),
        simulated_activations=int(row["simulated_activations"]),
        cpu_seconds=float(row.get("cpu_seconds", 0.0)),
        worker=int(row.get("worker", 0)),
    )


#: Per-process memo of expanded scenarios (spec -> Scenario).  A campaign
#: typically runs several schedules per scenario, and a pool worker receives
#: many jobs of the same scenario back to back (jobs are ordered spec-major
#: and submitted in batches), so re-expanding the spec for every job wastes
#: most of the pool warm-up.  Specs are frozen/hashable pure data and
#: scenario expansion is deterministic, which makes the cache transparent:
#: cache hits are bitwise identical to cold builds (pinned by the campaign
#: cache tests).  Bounded FIFO so huge grids cannot exhaust worker memory.
_SCENARIO_CACHE: Dict[ScenarioSpec, Scenario] = {}
_SCENARIO_CACHE_MAX = 256
_SCENARIO_CACHE_HITS = 0
_SCENARIO_CACHE_MISSES = 0


def cached_scenario(spec: ScenarioSpec) -> Scenario:
    """`build_scenario` with per-process memoization (worker fast path)."""
    global _SCENARIO_CACHE_HITS, _SCENARIO_CACHE_MISSES
    scenario = _SCENARIO_CACHE.get(spec)
    if scenario is None:
        _SCENARIO_CACHE_MISSES += 1
        scenario = build_scenario(spec)
        if len(_SCENARIO_CACHE) >= _SCENARIO_CACHE_MAX:
            _SCENARIO_CACHE.pop(next(iter(_SCENARIO_CACHE)))
        _SCENARIO_CACHE[spec] = scenario
    else:
        _SCENARIO_CACHE_HITS += 1
    return scenario


def scenario_cache_stats() -> Dict[str, int]:
    """Hit/miss counts since process start (scraped by the metrics plane)."""
    return {"hits": _SCENARIO_CACHE_HITS, "misses": _SCENARIO_CACHE_MISSES,
            "size": len(_SCENARIO_CACHE)}


def clear_scenario_cache() -> None:
    """Drop the per-process scenario memo (test isolation hook)."""
    global _SCENARIO_CACHE_HITS, _SCENARIO_CACHE_MISSES
    _SCENARIO_CACHE.clear()
    _SCENARIO_CACHE_HITS = 0
    _SCENARIO_CACHE_MISSES = 0


def execute_job(job: CampaignJob) -> CampaignOutcome:
    """Run one campaign job to completion (also the worker-pool entry point).

    Builds the scenario from its spec (through the per-process memo),
    instantiates a fresh SoC TLM, runs the schedule and reduces the metrics
    to plain scalars so the outcome travels cheaply across process
    boundaries.
    """
    scenario = cached_scenario(job.spec)
    # Resolves pre-built schedules and materializes registered strategy
    # specs on demand (deterministically, so memoized builds equal cold
    # ones); unknown names raise KeyError.
    schedule = scenario.schedule_for(job.schedule)
    soc = scenario.build_soc()
    # CPU time, not wall clock: the cpu_seconds column reproduces the
    # paper's "CPU [s]" numbers, which measure compute cost.  perf_counter
    # here would fold in scheduler queueing on loaded hosts.
    cpu_start = time.process_time()
    metrics = soc.run_test_schedule(schedule, scenario.tasks)
    cpu_seconds = time.process_time() - cpu_start
    return CampaignOutcome(
        spec=job.spec,
        schedule=job.schedule,
        phase_count=schedule.phase_count,
        task_count=len(schedule.task_names),
        estimated_cycles=scenario.estimated_cycles(job.schedule),
        test_length_cycles=metrics.test_length_cycles,
        peak_tam_utilization=metrics.peak_tam_utilization,
        avg_tam_utilization=metrics.avg_tam_utilization,
        peak_power=metrics.peak_power,
        avg_power=metrics.avg_power,
        simulated_activations=metrics.simulated_activations,
        cpu_seconds=cpu_seconds,
        worker=os.getpid(),
    )


def execute_job_raced(job: CampaignJob,
                      horizon_cycles: Optional[int],
                      ) -> Tuple[CampaignOutcome, bool]:
    """Run one campaign job under a makespan horizon (the racing path).

    Returns ``(outcome, stopped)``.  With ``horizon_cycles=None`` this is
    exactly :func:`execute_job`.  A job whose simulated makespan exceeds the
    horizon is abandoned (``stopped=True``); its outcome then holds the
    *partial* metrics — deterministic lower bounds of the full run, never
    comparable to completed outcomes on the Pareto front.
    """
    scenario = cached_scenario(job.spec)
    schedule = scenario.schedule_for(job.schedule)
    soc = scenario.build_soc()
    cpu_start = time.process_time()
    metrics = soc.run_test_schedule(schedule, scenario.tasks,
                                    horizon_cycles=horizon_cycles)
    cpu_seconds = time.process_time() - cpu_start
    outcome = CampaignOutcome(
        spec=job.spec,
        schedule=job.schedule,
        phase_count=schedule.phase_count,
        task_count=len(schedule.task_names),
        estimated_cycles=scenario.estimated_cycles(job.schedule),
        test_length_cycles=metrics.test_length_cycles,
        peak_tam_utilization=metrics.peak_tam_utilization,
        avg_tam_utilization=metrics.avg_tam_utilization,
        peak_power=metrics.peak_power,
        avg_power=metrics.avg_power,
        simulated_activations=metrics.simulated_activations,
        cpu_seconds=cpu_seconds,
        worker=os.getpid(),
    )
    return outcome, not metrics.completed


def _execute_job_batch(jobs: Sequence[CampaignJob]) -> List[CampaignOutcome]:
    """Pool entry point: run a batch of consecutive jobs in one worker."""
    return [execute_job(job) for job in jobs]


def run_jobs(jobs: Sequence[CampaignJob], workers: int = 1,
             mp_context: Optional[str] = None,
             batch_size: Optional[int] = None) -> CampaignRun:
    """Execute an explicit job list and collect the outcomes.

    The execution engine behind :meth:`Campaign.run` and behind each round of
    :class:`repro.explore.adaptive.AdaptiveSearch`.  ``workers=1`` runs
    in-process; ``workers>1`` fans batches of consecutive jobs
    (:func:`_execute_job_batch`) out to a ``multiprocessing`` pool of the
    given start method, so per-job pickling/IPC is amortized and jobs sharing
    a scenario land on the worker whose scenario memo serves them.  Job
    order — and therefore result order — is identical for serial and parallel
    execution regardless of batching.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    jobs = list(jobs)
    wall_start = time.perf_counter()
    if workers == 1:
        outcomes = [execute_job(job) for job in jobs]
    else:
        if batch_size is None:
            # Small enough to keep every worker busy (several batches per
            # worker), large enough to amortize pickling and keep
            # same-scenario jobs together.
            batch_size = max(1, min(32, len(jobs) // (workers * 4) or 1))
        batches = [jobs[index:index + batch_size]
                   for index in range(0, len(jobs), batch_size)]
        context = multiprocessing.get_context(mp_context)
        with context.Pool(processes=workers) as pool:
            # chunksize stays 1: batches are already the IPC unit, and
            # grouping them further would starve workers on small grids.
            outcome_batches = pool.map(_execute_job_batch, batches,
                                       chunksize=1)
        outcomes = [outcome for batch in outcome_batches for outcome in batch]
    wall_seconds = time.perf_counter() - wall_start
    return CampaignRun(outcomes=outcomes, workers=workers,
                       wall_seconds=wall_seconds)


@dataclass
class CampaignRun:
    """The collected outcomes of one campaign execution."""

    outcomes: List[CampaignOutcome]
    workers: int = 1
    wall_seconds: float = 0.0

    def rows(self, deterministic: bool = False) -> List[Dict[str, object]]:
        if deterministic:
            return self.deterministic_rows()
        return [outcome.as_row() for outcome in self.outcomes]

    def deterministic_rows(self) -> List[Dict[str, object]]:
        return [outcome.deterministic_row() for outcome in self.outcomes]

    @property
    def scenario_count(self) -> int:
        return len({outcome.spec.name for outcome in self.outcomes})

    @property
    def rows_per_second(self) -> float:
        """Result rows per wall-clock second.  A campaign usually runs
        several schedules per scenario, so this counts *rows* (jobs), not
        distinct scenarios — the rate the report footer prints as rows/s."""
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.wall_seconds

    @property
    def scenarios_per_second(self) -> float:
        """Deprecated alias of :attr:`rows_per_second` (the quantity was
        always rows per second; the old name miscounted)."""
        warnings.warn(
            "CampaignRun.scenarios_per_second is deprecated; it always "
            "computed rows per second — use rows_per_second",
            DeprecationWarning, stacklevel=2)
        return self.rows_per_second

    # -- artifacts ---------------------------------------------------------
    def write_csv(self, path, deterministic: bool = False) -> None:
        """Write the result rows as CSV (header = :data:`RESULT_COLUMNS`;
        deterministic mode drops the timing/placement columns, so the same
        seed produces bitwise-identical files)."""
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle,
                                    fieldnames=result_columns(deterministic))
            writer.writeheader()
            writer.writerows(self.rows(deterministic))

    def write_json(self, path, deterministic: bool = False) -> None:
        """Write a versioned JSON artifact with rows and run metadata."""
        with open(path, "w") as handle:
            json.dump(self.as_document(deterministic), handle, indent=2,
                      sort_keys=False)
            handle.write("\n")

    def as_document(self, deterministic: bool = False) -> Dict[str, object]:
        # Key order is part of the bitwise-identity contract: the shard
        # merger (repro.explore.distrib) reassembles exactly this layout, so
        # a merged artifact compares equal byte for byte to a single-host
        # deterministic run.
        document: Dict[str, object] = {
            "schema_version": SCHEMA_VERSION,
            "columns": result_columns(deterministic),
        }
        if not deterministic:
            # Placement/timing metadata varies run to run, exactly like the
            # cpu_seconds/worker row columns it accompanies.
            document["workers"] = self.workers
            document["wall_seconds"] = self.wall_seconds
        document["row_count"] = len(self.outcomes)
        document["rows"] = self.rows(deterministic)
        return document


class Campaign:
    """A set of scenario specs executed under their schedules.

    ``schedules`` overrides the per-spec schedule selection when given (every
    scenario then runs exactly those schedules).  ``run(workers=N)`` fans the
    jobs out to a ``multiprocessing`` pool; job order — and therefore result
    order — is identical for serial and parallel execution.
    """

    def __init__(self, specs: Union[ScenarioGrid, Iterable[ScenarioSpec]],
                 schedules: Optional[Sequence[str]] = None):
        if isinstance(specs, ScenarioGrid):
            specs = specs.specs()
        self.specs: List[ScenarioSpec] = list(specs)
        self.schedules = (canonical_schedule_names(schedules)
                          if schedules is not None else None)
        counts = Counter(spec.name for spec in self.specs)
        duplicates = sorted(name for name, count in counts.items() if count > 1)
        if duplicates:
            raise ValueError(f"duplicate scenario names in campaign: {duplicates}")

    def jobs(self) -> List[CampaignJob]:
        return [
            CampaignJob(spec=spec, schedule=schedule_name)
            for spec in self.specs
            for schedule_name in (self.schedules or spec.schedules)
        ]

    def __len__(self) -> int:
        return len(self.jobs())

    def run(self, workers: int = 1, mp_context: Optional[str] = None,
            batch_size: Optional[int] = None) -> CampaignRun:
        """Execute every job and collect the outcomes.

        ``workers=1`` runs in-process; ``workers>1`` uses a worker pool of the
        given ``multiprocessing`` start method (platform default when None).
        Jobs are submitted to the pool in *batches* of consecutive jobs
        (``batch_size``; an adaptive default when None) so that per-job
        pickling/IPC overhead is amortized and jobs sharing a scenario land
        on the same worker, where the scenario memo serves them.  Job order —
        and therefore result order — is identical for serial and parallel
        execution regardless of batching.  (Thin wrapper over
        :func:`run_jobs`.)
        """
        return run_jobs(self.jobs(), workers=workers, mp_context=mp_context,
                        batch_size=batch_size)


def campaign_from_axes(axes: Mapping[str, Sequence],
                       base: Optional[ScenarioSpec] = None,
                       schedules: Optional[Sequence[str]] = None,
                       name_prefix: str = "scenario") -> Campaign:
    """Convenience constructor: grid axes straight to a runnable campaign."""
    grid = ScenarioGrid(axes, base=base, name_prefix=name_prefix)
    return Campaign(grid, schedules=schedules)
