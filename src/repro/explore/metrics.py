"""Dependency-free observability plane: metrics registry + structured logs.

The live coordinator (ROADMAP item 1) runs as a long-lived service, and a
service that can only be inspected through a one-shot ``status()`` call is
a black box: you cannot plot queue depth over a night run, correlate a
steal burst with a worker death, or prove that an hour-long campaign is
still making progress.  This module is the observability plane ROADMAP
item 5 asks for, in the shape the ATS-node exemplar pairs with its test
execution plane — a Prometheus exporter plus structured run logs — with
two hard constraints carried over from the rest of the stack:

* **No dependencies.**  The registry renders the Prometheus text
  exposition format itself (it is a line protocol, not a library), and the
  ``/metrics`` endpoint is a stdlib :mod:`http.server`.  Nothing here
  imports outside the standard library.
* **Injected clocks, deterministic output.**  :class:`StructuredLog`
  timestamps events with a caller-supplied monotonic clock, and its JSON
  field order is fixed — so a fault-injection test driving a
  :class:`FakeClock` replays the *byte-identical* event stream on every
  run, and the log itself becomes an assertable artifact (the same
  determinism contract the campaign artifacts already honour).

Three instrument kinds, all label-aware and thread-safe behind one
re-entrant lock per registry:

* :class:`Counter` — monotone; ``inc()`` rejects negative deltas.
* :class:`Gauge` — settable, or backed by a callback
  (:meth:`Gauge.set_function`) for values best computed at scrape time.
* :class:`Histogram` — fixed, finite bucket bounds chosen at registration
  (lease age, span latency, merge drain size); renders cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``.

The :class:`Coordinator` derives its ``status()`` counters *from* the
registry, so the CLI status table and a scrape of ``/metrics`` can never
disagree — one source of truth, two renderings.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, IO, List, Optional, Sequence, Tuple

#: Version of the structured-log event schema (the ``v`` field).
LOG_SCHEMA_VERSION = 1

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Bucket bounds (seconds) for lease ages and span latencies: sub-second
#: spans up to a stalled multi-minute lease.
LATENCY_BUCKETS = (0.01, 0.05, 0.25, 1.0, 5.0, 15.0, 60.0, 300.0)

#: Bucket bounds (rows) for merge drain sizes: one shard's worth up to a
#: large out-of-order backlog draining at once.
DRAIN_ROW_BUCKETS = (1.0, 8.0, 64.0, 512.0, 4096.0, 32768.0)

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricsError(ValueError):
    """A metric registration or observation is invalid."""


def _format_value(value: float) -> str:
    """Render a sample value: integral floats as integers, rest as repr."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        return {float("inf"): "+Inf", float("-inf"): "-Inf"}.get(value, "NaN")
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _label_key(labels: Dict[str, str]) -> Tuple[Tuple[str, str], ...]:
    for name in labels:
        if not _LABEL_NAME.match(name):
            raise MetricsError(f"invalid label name {name!r}")
    return tuple(sorted((name, str(value))
                        for name, value in labels.items()))


def _render_labels(key: Tuple[Tuple[str, str], ...],
                   extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in pairs)
    return "{" + body + "}"


class _Metric:
    """Shared bookkeeping: name, help text, per-labelset samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        if not _METRIC_NAME.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help_text
        self._lock = lock

    def samples(self) -> List[Tuple[Tuple[Tuple[str, str], ...], float]]:
        raise NotImplementedError

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, value in self.samples():
            lines.append(f"{self.name}{_render_labels(key)} "
                         f"{_format_value(value)}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value (events since process start)."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        super().__init__(name, help_text, lock)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricsError(
                f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum across every labelset (convenience for status documents)."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        with self._lock:
            return sorted(self._values.items())


class Gauge(_Metric):
    """A value that can go up and down, or be computed at scrape time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.RLock):
        super().__init__(name, help_text, lock)
        self._values: Dict[Tuple[Tuple[str, str], ...], float] = {}
        self._functions: Dict[Tuple[Tuple[str, str], ...],
                              Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def set_function(self, function: Callable[[], float],
                     **labels: str) -> None:
        """Compute the gauge at scrape time (e.g. cache hit counts)."""
        key = _label_key(labels)
        with self._lock:
            self._functions[key] = function

    def remove(self, **labels: str) -> None:
        """Drop a labelset (e.g. a finished campaign's queue gauge)."""
        key = _label_key(labels)
        with self._lock:
            self._values.pop(key, None)
            self._functions.pop(key, None)

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        with self._lock:
            function = self._functions.get(key)
            if function is not None:
                return float(function())
            return self._values.get(key, 0.0)

    def samples(self):
        with self._lock:
            merged = dict(self._values)
            for key, function in self._functions.items():
                merged[key] = float(function())
            return sorted(merged.items())


class Histogram(_Metric):
    """Distribution over fixed, finite bucket bounds set at registration."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, lock: threading.RLock,
                 buckets: Sequence[float]):
        super().__init__(name, help_text, lock)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricsError(
                f"histogram {name} needs strictly increasing bounds, "
                f"got {buckets!r}")
        self.bounds = bounds
        # Per labelset: per-bound event counts (not cumulative), sum, count.
        self._counts: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
        self._sums: Dict[Tuple[Tuple[str, str], ...], float] = {}
        self._totals: Dict[Tuple[Tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.setdefault(
                key, [0] * (len(self.bounds) + 1))
            slot = len(self.bounds)
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    slot = position
                    break
            counts[slot] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        with self._lock:
            return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def snapshot(self, **labels: str) -> Dict[str, object]:
        """The cumulative state of one labelset as a JSON-shippable dict.

        The worker piggybacks this on heartbeat frames so the coordinator
        can aggregate per-worker distributions; the receiving side folds the
        delta between two snapshots back in with :meth:`merge_counts`.
        """
        key = _label_key(labels)
        with self._lock:
            counts = list(self._counts.get(key,
                                           [0] * (len(self.bounds) + 1)))
            return {"bounds": list(self.bounds), "counts": counts,
                    "sum": self._sums.get(key, 0.0),
                    "count": self._totals.get(key, 0)}

    def merge_counts(self, counts: Sequence[int], value_sum: float,
                     total: int, **labels: str) -> None:
        """Fold raw per-bucket event-count deltas into one labelset.

        ``counts`` has one slot per bound plus the overflow slot — the same
        layout :meth:`snapshot` ships.  Negative deltas and shape mismatches
        are rejected; histograms are monotone like counters.
        """
        deltas = [int(count) for count in counts]
        total = int(total)
        if len(deltas) != len(self.bounds) + 1:
            raise MetricsError(
                f"histogram {self.name} takes {len(self.bounds) + 1} bucket "
                f"count(s), got {len(deltas)}")
        if any(delta < 0 for delta in deltas) or total < 0:
            raise MetricsError(
                f"histogram {self.name} cannot decrease (merge of negative "
                f"count deltas)")
        if sum(deltas) != total:
            raise MetricsError(
                f"histogram {self.name} merge disagrees with itself: bucket "
                f"counts sum to {sum(deltas)}, total says {total}")
        key = _label_key(labels)
        with self._lock:
            slots = self._counts.setdefault(
                key, [0] * (len(self.bounds) + 1))
            for position, delta in enumerate(deltas):
                slots[position] += delta
            self._sums[key] = self._sums.get(key, 0.0) + float(value_sum)
            self._totals[key] = self._totals.get(key, 0) + total

    def samples(self):  # pragma: no cover - histograms render specially
        return []

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        with self._lock:
            for key in sorted(self._counts):
                counts = self._counts[key]
                running = 0
                for bound, count in zip(self.bounds, counts):
                    running += count
                    labels = _render_labels(
                        key, [("le", _format_value(bound))])
                    lines.append(f"{self.name}_bucket{labels} {running}")
                running += counts[-1]
                labels = _render_labels(key, [("le", "+Inf")])
                lines.append(f"{self.name}_bucket{labels} {running}")
                lines.append(f"{self.name}_sum{_render_labels(key)} "
                             f"{_format_value(self._sums[key])}")
                lines.append(f"{self.name}_count{_render_labels(key)} "
                             f"{self._totals[key]}")
        return lines


class MetricsRegistry:
    """Registration-ordered collection of instruments with one renderer.

    Registration is idempotent: asking for an existing name returns the
    existing instrument (so the coordinator and the merge it owns can share
    one registry without coordinating creation), but re-registering a name
    as a different kind is an error.
    """

    def __init__(self) -> None:
        # Re-entrant: a scrape-time gauge callback may read other metrics.
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, name: str, factory: Callable[[], _Metric],
                  kind: type) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise MetricsError(
                        f"metric {name} already registered as "
                        f"{existing.kind}")
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str) -> Counter:
        return self._register(
            name, lambda: Counter(name, help_text, self._lock), Counter)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._register(
            name, lambda: Gauge(name, help_text, self._lock), Gauge)

    def histogram(self, name: str, help_text: str,
                  buckets: Sequence[float]) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_text, self._lock, buckets),
            Histogram)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter or gauge (0.0 when unregistered)."""
        metric = self.get(name)
        if metric is None:
            return 0.0
        return metric.value(**labels)  # type: ignore[attr-defined]

    def render(self) -> str:
        """The Prometheus text exposition document (trailing newline)."""
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# -- structured run logs ------------------------------------------------------

class StructuredLog:
    """Append-only JSONL event log with an injected monotonic clock.

    One event per line: ``{"v": 1, "ts": <clock>, "event": <kind>, ...}``.
    Field order is fixed (insertion order, never sorted) and floats are
    emitted by :func:`json.dumps` defaults, so two runs under the same fake
    clock produce byte-identical files — the replayability contract the
    fault-injection suite pins.

    *sink* is a path (opened for append) or any object with ``write``.
    Writes are flushed per event: a ``kill -9`` mid-run must not lose the
    events that explain the death.
    """

    def __init__(self, sink, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        if hasattr(sink, "write"):
            self._handle: IO[str] = sink
            self._owns_handle = False
        else:
            self._handle = open(sink, "a", encoding="utf-8")
            self._owns_handle = True

    def emit(self, event: str, **fields: object) -> Dict[str, object]:
        record: Dict[str, object] = {
            "v": LOG_SCHEMA_VERSION,
            "ts": round(float(self._clock()), 6),
            "event": event,
        }
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
        return record

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


def read_log(path) -> List[Dict[str, object]]:
    """Parse a structured log back into its event dicts (test helper)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


# -- the /metrics endpoint ----------------------------------------------------

class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        if self.path.split("?", 1)[0] != "/metrics":
            self.send_error(404, "only /metrics is served")
            return
        payload = self.server.registry.render().encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", METRICS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:
        """Scrapes are periodic; stderr chatter would drown real events."""


class MetricsServer(ThreadingHTTPServer):
    """Serve a registry's text exposition on GET ``/metrics``.

    Runs beside the coordinator's JSONL socket on its own port (``serve
    --metrics-port``); scrape threads only take the registry lock, never
    the coordinator lock, so a slow scraper cannot stall lease traffic.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, registry: MetricsRegistry,
                 address: Tuple[str, int] = ("127.0.0.1", 0)):
        super().__init__(address, _MetricsHandler)
        self.registry = registry

    @property
    def port(self) -> int:
        return self.server_address[1]

    def start(self) -> threading.Thread:
        """Serve on a daemon thread; pair with :meth:`stop`."""
        thread = threading.Thread(target=self.serve_forever,
                                  kwargs={"poll_interval": 0.1}, daemon=True)
        thread.start()
        return thread

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
