"""Live campaign coordinator: fair-share queue, span leases, work stealing.

The distribution subsystem (:mod:`repro.explore.distrib`) made campaigns a
pure-data problem — deterministic shard plans in, provenance-validated shard
artifacts out — but execution stayed one-shot: a human assigns ``--shard
I/N`` to hosts and a dead host stalls the merge until someone re-plans the
gap by hand.  This module is the missing control plane, ROADMAP item 1:

* :class:`Coordinator` — a transport-agnostic state machine that accepts
  campaign submissions into a fair-share queue, leases each campaign's
  deterministic spans (planned once via :func:`~repro.explore.distrib.
  plan_shards`) to workers, heartbeats lease age, *steals* expired leases
  back from stragglers and dead hosts (the span simply re-enters the queue:
  spans are pure data, so a re-run is bitwise identical to the lost run),
  and streams completed shard documents into a
  :class:`~repro.explore.store.IncrementalShardMerge` the moment they
  arrive.  When the last span lands, the final JSON/CSV artifacts are
  regenerated from the store — **bitwise identical** to a single-host
  ``campaign`` run of the same grid, the invariant the fault-injection
  differential tests pin down.
* :class:`CoordinatorServer` / :class:`CoordinatorSession` — a localhost
  TCP transport for the state machine, protocol v2: persistent
  length-prefixed framed sessions (one socket per worker for its whole
  lifetime), batched ops (multi-span lease prefetch, one coalesced
  heartbeat frame for every held lease) and *binary columnar completion
  payloads* (:func:`~repro.explore.store.encode_shard_block`), so a
  completed span streams from worker to :class:`~repro.explore.store.
  ColumnarStore` without ever round-tripping through per-row dicts or
  JSON.  The v1 JSONL protocol (one request per connection,
  :class:`CoordinatorClient`) stays served by the same port — the server
  sniffs the first byte of each connection — so old workers keep working.
  The worker side lives in :mod:`repro.explore.worker`.

Determinism and fault injection: the coordinator takes its wall clock as a
constructor argument (``clock=time.monotonic``), performs *no* waiting of
its own (expiry is evaluated lazily on every public call), and mutates
state only inside its public methods — so a test can drive arbitrary
interleavings of grant/complete/expire/heartbeat against a fake clock and
fake workers, byte-compare the final artifacts, and never sleep.

Exactly-once: every span is *executed* at-least-once (steals re-run lost
work) and *merged* exactly once — a completion for an already-merged span
is acknowledged as ``stale`` and dropped before any row lands, and the
incremental merge independently rejects double ingestion.  Because jobs are
deterministic, at-least-once execution plus exactly-once ingestion equals
the monolithic artifact.

The status document (:meth:`Coordinator.status`) is versioned
(``coordinator_schema_version`` = :data:`COORDINATOR_SCHEMA_VERSION`) and
carries the operational counters the ROADMAP's observability item asks
for: queue depth, active lease ages, steal/stale counts, spans and rows
per second, per-campaign progress.
"""

from __future__ import annotations

import heapq
import itertools
import json
import shutil
import socket
import socketserver
import struct
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    BinaryIO, Callable, Dict, Iterable, List, Mapping, Optional, Sequence,
    Tuple, Union,
)

from repro.explore.campaign import (
    SCHEMA_VERSION,
    CampaignJob,
    result_columns,
    scenario_cache_stats,
)
from repro.explore.distrib import (
    CampaignShard,
    MergeError,
    job_from_dict,
    plan_shards,
)
from repro.explore.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    StructuredLog,
)
from repro.explore.store import (
    ColumnarStore,
    IncrementalShardMerge,
    ShardBlock,
    StoreError,
    decode_shard_block,
    encode_shard_block,
    write_document_csv,
    write_document_json,
)

#: Version of the coordinator status document and wire protocol.  v2 added
#: the registry-backed counters (leases granted, heartbeats, invalid
#: documents); v3 is the framed-session transport (persistent sessions,
#: batched ops, binary completion payloads, ``protocol_errors`` counter).
COORDINATOR_SCHEMA_VERSION = 3

#: Default seconds a lease may go without a heartbeat before it is stolen.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Preamble a protocol-v2 client sends once per connection; the server
#: sniffs the first byte to tell a framed session (``R``) from a legacy
#: JSONL request (``{``) on the same port.
PROTOCOL_MAGIC = b"RXP2"

#: Frame header: big-endian u32 payload length + u8 frame kind.
FRAME_HEADER = struct.Struct(">IB")

#: Frame kinds: a JSON control/op payload, or a completion carrying a
#: binary columnar shard block after a short JSON meta prefix.
FRAME_KIND_JSON = 0x4A
FRAME_KIND_BLOCK = 0x43

#: Upper bound on a single frame (and on a v1 request line).  Far above any
#: legitimate op — a shard block of a million-row span is a few tens of MB —
#: while bounding what a misbehaving client can make the server buffer.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class CoordinatorError(ValueError):
    """A submission, lease operation or protocol message is invalid."""


class FrameError(CoordinatorError):
    """A wire frame is malformed, truncated or oversized."""


# -- frame codec --------------------------------------------------------------
def encode_frame(kind: int, payload: bytes) -> bytes:
    """One length-prefixed frame: ``u32 len | u8 kind | payload``."""
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(payload)} byte(s) exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    return FRAME_HEADER.pack(len(payload), kind) + payload


def encode_json_frame(request: Mapping[str, object]) -> bytes:
    """A JSON op as one frame (compact separators: wire bytes, not art)."""
    return encode_frame(FRAME_KIND_JSON,
                        json.dumps(request, separators=(",", ":"))
                        .encode("utf-8"))


def encode_block_frame(meta: Mapping[str, object], block: bytes) -> bytes:
    """A completion frame: ``u32 meta_len | meta_json | shard_block``.

    The meta prefix carries the op and lease id; the block bytes are an
    :func:`~repro.explore.store.encode_shard_block` payload passed through
    opaquely — the server hands them to the merge without JSON-parsing a
    single row.
    """
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    return encode_frame(FRAME_KIND_BLOCK,
                        struct.pack(">I", len(meta_bytes)) + meta_bytes
                        + block)


def decode_block_payload(payload: bytes) -> Tuple[Dict[str, object], bytes]:
    """Split a completion frame payload into (meta, shard block bytes)."""
    if len(payload) < 4:
        raise FrameError("truncated completion frame")
    (meta_len,) = struct.unpack_from(">I", payload, 0)
    if len(payload) < 4 + meta_len:
        raise FrameError(f"truncated completion meta ({len(payload)} "
                         f"byte(s), meta needs {4 + meta_len})")
    try:
        meta = json.loads(payload[4:4 + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FrameError(f"malformed completion meta: {error}")
    if not isinstance(meta, dict):
        raise FrameError("completion meta is not a JSON object")
    return meta, payload[4 + meta_len:]


def _read_exact(reader: BinaryIO, size: int) -> Optional[bytes]:
    """Read exactly *size* bytes; None at clean EOF, FrameError mid-frame."""
    data = reader.read(size)
    if not data and size:
        return None
    if len(data) != size:
        raise FrameError(f"connection closed mid-frame ({len(data)} of "
                         f"{size} byte(s))")
    return data


def read_frame(reader: BinaryIO) -> Optional[Tuple[int, bytes]]:
    """Read one frame; None at a clean end-of-stream.

    Raises :class:`FrameError` for an oversized declared length or a
    stream truncated inside a frame.
    """
    header = _read_exact(reader, FRAME_HEADER.size)
    if header is None:
        return None
    length, kind = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {length} byte(s) exceeds the "
                         f"{MAX_FRAME_BYTES}-byte limit")
    payload = _read_exact(reader, length)
    if payload is None and length:
        raise FrameError("connection closed mid-frame (0 of "
                         f"{length} byte(s))")
    return kind, payload if length else b""


@dataclass
class SpanLease:
    """One grant of one campaign span to one worker."""

    lease_id: int
    campaign_id: str
    shard_index: int
    worker: str
    granted_at: float
    deadline: float

    def as_document(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "campaign_id": self.campaign_id,
            "shard_index": self.shard_index,
            "worker": self.worker,
        }


class _CampaignState:
    """Internal bookkeeping of one submitted campaign."""

    def __init__(self, campaign_id: str, label: str, sequence: int,
                 shards: List[CampaignShard], merge: IncrementalShardMerge,
                 submitted_at: float,
                 json_path: Optional[str], csv_path: Optional[str]):
        self.campaign_id = campaign_id
        self.label = label
        self.sequence = sequence
        self.shards = shards
        self.merge = merge
        self.submitted_at = submitted_at
        self.json_path = json_path
        self.csv_path = csv_path
        #: Spans waiting for a worker, as a min-heap of shard indexes so a
        #: stolen span re-enters ahead of later work.
        self.pending: List[int] = list(range(len(shards)))
        heapq.heapify(self.pending)
        #: Active lease per outstanding span.
        self.leases: Dict[int, SpanLease] = {}
        self.completed: set = set()
        self.steals = 0
        self.row_count = 0
        self.finished_at: Optional[float] = None
        self.store: Optional[ColumnarStore] = None

    @property
    def span_count(self) -> int:
        return len(self.shards)

    @property
    def complete(self) -> bool:
        return len(self.completed) == self.span_count

    @property
    def in_flight(self) -> int:
        """Spans granted or done — the fair-share load measure."""
        return len(self.leases) + len(self.completed)

    def progress(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign_id,
            "label": self.label,
            "spans": self.span_count,
            "total_jobs": self.shards[0].total_jobs,
            "pending": len(self.pending),
            "leased": len(self.leases),
            "completed": len(self.completed),
            "complete": self.complete,
            "row_count": self.row_count,
            "steals": self.steals,
            "artifacts": {key: value for key, value in
                          (("json", self.json_path), ("csv", self.csv_path),
                           ("store", str(self.merge._store.path)))
                          if value},
        }


class Coordinator:
    """The lease/steal/merge state machine (transport-agnostic).

    All waiting is the caller's problem: expiry is evaluated lazily at the
    top of every public method (:meth:`tick`), so idle-polling workers are
    what drives stealing — no timer thread, no hidden clock reads.  The
    *clock* only needs to be monotone; tests inject a fake.

    Not thread-safe by itself; :class:`CoordinatorServer` serializes calls
    under one lock.
    """

    def __init__(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 clock: Callable[[], float] = time.monotonic,
                 work_dir=None,
                 on_event: Optional[Callable[[str], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 log: Optional[StructuredLog] = None):
        if lease_timeout <= 0:
            raise CoordinatorError("lease timeout must be > 0")
        self._lease_timeout = float(lease_timeout)
        self._clock = clock
        self._on_event = on_event
        self._work_dir = Path(work_dir) if work_dir is not None else None
        self._owns_work_dir = False
        self._campaigns: Dict[str, _CampaignState] = {}
        self._sequence = itertools.count(1)
        self._lease_sequence = itertools.count(1)
        #: Every lease ever granted, by id — completions may legitimately
        #: arrive for leases that have long been stolen.
        self._leases: Dict[int, SpanLease] = {}
        #: Worker name -> last-seen timestamp.
        self._workers: Dict[str, float] = {}
        self._draining = False
        self._started = clock()
        #: Optional structured JSONL run log (one event per lease / steal /
        #: completion / merge-drain, timestamped by the injected clock).
        self._log = log
        #: The registry is always live — instrumentation is the status
        #: document's single source of truth, the exporter just renders it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        metrics = self.metrics
        self._m_submitted = metrics.counter(
            "coordinator_campaigns_submitted_total",
            "Campaigns accepted into the fair-share queue.")
        self._m_campaigns_done = metrics.counter(
            "coordinator_campaigns_completed_total",
            "Campaigns whose final span landed and artifacts finalized.")
        self._m_granted = metrics.counter(
            "coordinator_leases_granted_total",
            "Span leases handed to workers (including re-grants).")
        self._m_heartbeats = metrics.counter(
            "coordinator_heartbeats_total",
            "Heartbeat calls received (live or not).")
        self._m_steals = metrics.counter(
            "coordinator_leases_stolen_total",
            "Expired leases stolen back into the queue.")
        self._m_spans = metrics.counter(
            "coordinator_spans_completed_total",
            "Span completions accepted and merged exactly once.")
        self._m_rows = metrics.counter(
            "coordinator_rows_merged_total",
            "Result rows accepted from completed spans (jobs finished).")
        self._m_stale = metrics.counter(
            "coordinator_stale_completions_total",
            "Valid completions dropped because the span already merged.")
        self._m_invalid = metrics.counter(
            "coordinator_invalid_documents_total",
            "Completions rejected by provenance/span/row validation.")
        self._m_protocol_errors = metrics.counter(
            "coordinator_protocol_errors_total",
            "Malformed or oversized wire frames answered with a structured "
            "error.")
        self._m_worker_rtt = metrics.histogram(
            "worker_heartbeat_rtt_seconds",
            "Worker-observed heartbeat round-trip time, shipped in "
            "heartbeat frames and aggregated per worker.", LATENCY_BUCKETS)
        #: Last cumulative RTT snapshot per worker (delta-merge baseline).
        self._worker_rtt_seen: Dict[str, Tuple[List[int], float, int]] = {}
        self._m_queue = metrics.gauge(
            "coordinator_queue_depth",
            "Spans waiting for a worker, per campaign.")
        self._m_active = metrics.gauge(
            "coordinator_active_leases",
            "Leases currently outstanding across all campaigns.")
        self._m_draining = metrics.gauge(
            "coordinator_draining",
            "1 while the coordinator refuses new leases and submissions.")
        self._m_lease_age = metrics.histogram(
            "coordinator_lease_age_seconds",
            "Age of a lease when it ended (completed or stolen).",
            LATENCY_BUCKETS)
        self._m_span_latency = metrics.histogram(
            "coordinator_span_latency_seconds",
            "Grant-to-accepted-completion latency per span.",
            LATENCY_BUCKETS)
        metrics.gauge(
            "coordinator_uptime_seconds",
            "Seconds since the coordinator started (injected clock)."
        ).set_function(lambda: max(self._now() - self._started, 0.0))
        cache = metrics.gauge(
            "scenario_cache_entries",
            "Scenario cache outcomes in this process (hits/misses/size).")
        cache.set_function(lambda: scenario_cache_stats()["hits"],
                           outcome="hit")
        cache.set_function(lambda: scenario_cache_stats()["misses"],
                           outcome="miss")
        cache.set_function(lambda: scenario_cache_stats()["size"],
                           outcome="size")
        self._m_draining.set(0)
        self._m_active.set(0)

    # -- plumbing -----------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _emit(self, event: str, **fields: object) -> None:
        if self._log is not None:
            self._log.emit(event, **fields)

    def _refresh_gauges(self) -> None:
        """Re-derive queue/lease gauges after any state mutation."""
        self._m_active.set(sum(len(state.leases)
                               for state in self._campaigns.values()))
        for state in self._campaigns.values():
            self._m_queue.set(len(state.pending),
                              campaign=state.campaign_id)

    def _ensure_work_dir(self) -> Path:
        if self._work_dir is None:
            self._work_dir = Path(tempfile.mkdtemp(prefix="repro-coord-"))
            self._owns_work_dir = True
        return self._work_dir

    def close(self) -> None:
        """Drop the coordinator's own spool directory (not user artifacts)."""
        if self._owns_work_dir and self._work_dir is not None and \
                self._work_dir.exists():
            shutil.rmtree(self._work_dir, ignore_errors=True)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Stop granting leases; outstanding completions are still accepted."""
        self._draining = True
        self._m_draining.set(1)
        self._event("draining: no further leases will be granted")
        self._emit("draining")

    @property
    def is_idle(self) -> bool:
        """No pending or leased span anywhere."""
        return all(not state.pending and not state.leases
                   for state in self._campaigns.values())

    # -- submissions --------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[CampaignJob], shard_count: int,
                    label: Optional[str] = None,
                    json_path: Optional[str] = None,
                    csv_path: Optional[str] = None,
                    store_path=None) -> str:
        """Queue a campaign: plan *jobs* into spans, return the campaign id.

        Artifact paths are written by the coordinator process at
        finalization; *store_path* defaults to a spool directory.  Planning
        is the same :func:`~repro.explore.distrib.plan_shards` call a
        ``--shard I/N`` host makes, so the spans — and the final merged
        artifact — are identical to the offline path.
        """
        if self._draining:
            raise CoordinatorError("coordinator is draining; "
                                   "submission rejected")
        shards = plan_shards(list(jobs), shard_count)
        sequence = next(self._sequence)
        campaign_id = f"c{sequence:04d}"
        if store_path is None:
            store_path = self._ensure_work_dir() / f"{campaign_id}.store"
        merge = IncrementalShardMerge(
            store_path, count=shard_count, total_jobs=shards[0].total_jobs,
            fingerprint=shards[0].fingerprint,
            columns=result_columns(deterministic=True),
            metadata={"campaign": campaign_id},
            metrics=self.metrics, log=self._log)
        state = _CampaignState(campaign_id, label or campaign_id, sequence,
                               shards, merge, self._now(), json_path,
                               csv_path)
        self._campaigns[campaign_id] = state
        self._m_submitted.inc()
        self._refresh_gauges()
        self._event(f"submitted {campaign_id} ({state.label}): "
                    f"{shards[0].total_jobs} job(s) in "
                    f"{shard_count} span(s)")
        self._emit("submit", campaign=campaign_id, label=state.label,
                   jobs=shards[0].total_jobs, spans=shard_count)
        return campaign_id

    def submit_job_documents(self, documents: Sequence[Mapping[str, object]],
                             shard_count: int, **kwargs) -> str:
        """:meth:`submit_jobs` over wire-format job dicts (the submit op)."""
        return self.submit_jobs([job_from_dict(doc) for doc in documents],
                                shard_count, **kwargs)

    # -- leases -------------------------------------------------------------
    def tick(self) -> List[SpanLease]:
        """Expire overdue leases, re-queueing their spans (the steal).

        Called implicitly by every public operation; returns the leases
        stolen by this pass.
        """
        now = self._now()
        stolen: List[SpanLease] = []
        for state in self._campaigns.values():
            for index, lease in list(state.leases.items()):
                if lease.deadline <= now:
                    del state.leases[index]
                    heapq.heappush(state.pending, index)
                    state.steals += 1
                    stolen.append(lease)
                    age = now - lease.granted_at
                    self._m_steals.inc()
                    self._m_lease_age.observe(age)
                    self._event(
                        f"stole span {lease.campaign_id}/{index} from "
                        f"{lease.worker} (lease {lease.lease_id} aged out)")
                    self._emit("steal", campaign=lease.campaign_id,
                               span=index, lease=lease.lease_id,
                               worker=lease.worker, age=round(age, 6))
        if stolen:
            self._refresh_gauges()
        return stolen

    def _pick_campaign(self) -> Optional[_CampaignState]:
        """Fair share: the least-served campaign with pending spans.

        Load is the fraction of a campaign's spans already granted or done,
        so a freshly submitted campaign immediately receives a share of the
        fleet instead of queueing behind an earlier large submission;
        submission order breaks ties deterministically.
        """
        candidates = [state for state in self._campaigns.values()
                      if state.pending]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda state: (state.in_flight / state.span_count,
                                      state.sequence))

    def request_lease(self, worker: str
                      ) -> Optional[Tuple[SpanLease, CampaignShard]]:
        """Grant the next span to *worker*, or None when nothing is pending.

        The returned shard document is self-contained (it carries its job
        list), so the worker needs no grid flags — exactly the file a
        ``campaign --shard I/N`` host would have been shipped.
        """
        self.tick()
        now = self._now()
        self._workers[worker] = now
        if self._draining:
            return None
        state = self._pick_campaign()
        if state is None:
            return None
        index = heapq.heappop(state.pending)
        lease = SpanLease(
            lease_id=next(self._lease_sequence),
            campaign_id=state.campaign_id, shard_index=index, worker=worker,
            granted_at=now, deadline=now + self._lease_timeout)
        state.leases[index] = lease
        self._leases[lease.lease_id] = lease
        self._m_granted.inc()
        self._refresh_gauges()
        self._emit("lease", campaign=state.campaign_id, span=index,
                   lease=lease.lease_id, worker=worker)
        return lease, state.shards[index]

    def request_leases(self, worker: str, count: int = 1
                       ) -> List[Tuple[SpanLease, CampaignShard]]:
        """Grant up to *count* spans in one call (the ``--prefetch`` batch).

        Stops early when the queue runs dry or the coordinator drains; the
        grants follow the same fair-share order as *count* single requests.
        """
        if count < 1:
            raise CoordinatorError("lease count must be >= 1")
        granted: List[Tuple[SpanLease, CampaignShard]] = []
        for _ in range(count):
            one = self.request_lease(worker)
            if one is None:
                break
            granted.append(one)
        return granted

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; False when the lease is no longer
        live (stolen or its span already completed) — the worker's cue to
        abandon cooperatively."""
        self.tick()
        self._m_heartbeats.inc()
        lease = self._leases.get(lease_id)
        if lease is None:
            raise CoordinatorError(f"unknown lease id {lease_id}")
        state = self._campaigns[lease.campaign_id]
        if state.leases.get(lease.shard_index) is not lease:
            return False
        now = self._now()
        lease.deadline = now + self._lease_timeout
        self._workers[lease.worker] = now
        return True

    def heartbeat_many(self, lease_ids: Sequence[int]) -> Dict[int, bool]:
        """Batched heartbeat: every held lease extended from one frame.

        Unlike :meth:`heartbeat`, an unknown lease id maps to ``False``
        instead of raising — in a coalesced batch one stale id (a span
        completed between frames) must not poison the extension of the
        others.
        """
        self.tick()
        now = self._now()
        results: Dict[int, bool] = {}
        for raw_id in lease_ids:
            lease_id = int(raw_id)
            self._m_heartbeats.inc()
            lease = self._leases.get(lease_id)
            if lease is None:
                results[lease_id] = False
                continue
            state = self._campaigns[lease.campaign_id]
            if state.leases.get(lease.shard_index) is not lease:
                results[lease_id] = False
                continue
            lease.deadline = now + self._lease_timeout
            self._workers[lease.worker] = now
            results[lease_id] = True
        return results

    def record_worker_rtt(self, worker: str,
                          snapshot: Mapping[str, object]) -> None:
        """Aggregate a worker-shipped heartbeat-RTT histogram snapshot.

        Workers piggyback their *cumulative* local
        ``worker_heartbeat_rtt_seconds`` state on heartbeat frames; the
        coordinator keeps the last snapshot per worker and merges only the
        delta into its registry (labelled by worker), so retransmits are
        idempotent and a restarted worker — whose cumulative counts reset —
        simply starts a fresh baseline.
        """
        bounds = tuple(float(bound) for bound in snapshot.get("bounds", ()))
        if bounds != self._m_worker_rtt.bounds:
            raise CoordinatorError(
                f"worker {worker!r} ships RTT bucket bounds {list(bounds)}, "
                f"expected {list(self._m_worker_rtt.bounds)}")
        counts = [int(count) for count in snapshot.get("counts", ())]
        total = int(snapshot.get("count", 0))
        value_sum = float(snapshot.get("sum", 0.0))
        previous = self._worker_rtt_seen.get(worker)
        if previous is not None and len(previous[0]) == len(counts) and \
                total >= previous[2] and \
                all(now >= then for now, then in zip(counts, previous[0])):
            deltas = [now - then
                      for now, then in zip(counts, previous[0])]
            delta_sum = value_sum - previous[1]
            delta_total = total - previous[2]
        else:
            deltas, delta_sum, delta_total = counts, value_sum, total
        self._worker_rtt_seen[worker] = (counts, value_sum, total)
        if delta_total:
            self._m_worker_rtt.merge_counts(deltas, delta_sum, delta_total,
                                            worker=worker)

    def protocol_error(self, message: str) -> None:
        """Count one malformed/oversized wire frame (server handler hook)."""
        self._m_protocol_errors.inc()
        self._emit("protocol-error", error=message)

    def complete_lease(self, lease_id: int,
                       document: Mapping[str, object]) -> bool:
        """Ingest a completed span; returns False for stale completions.

        Validation happens *before* any bookkeeping: a document that fails
        provenance/span/row checks raises
        :class:`~repro.explore.distrib.MergeError` and changes nothing, so a
        misbehaving worker cannot poison a campaign.  A valid completion for
        a span that someone else already completed (a steal raced the
        original worker, or a duplicate send) is acknowledged as stale and
        dropped — rows are merged exactly once.
        """
        def ingest(state: _CampaignState) -> Tuple[int, int]:
            return (state.merge.add_shard_document(document),
                    int(document["row_count"]))
        return self._complete(lease_id, ingest)

    def complete_lease_block(self, lease_id: int,
                             block: Union[ShardBlock, bytes, bytearray,
                                          memoryview]) -> bool:
        """:meth:`complete_lease` over a binary columnar shard payload.

        The protocol-v2 completion path: *block* is an
        :func:`~repro.explore.store.encode_shard_block` payload (or an
        already-decoded :class:`~repro.explore.store.ShardBlock`); its
        decoded column arrays are validated and merged without ever
        materializing per-row dicts.  Decode failures are treated exactly
        like invalid documents — counted, logged, raised as
        :class:`~repro.explore.distrib.MergeError`, and the lease stays
        live.
        """
        def ingest(state: _CampaignState) -> Tuple[int, int]:
            decoded = block
            if isinstance(decoded, (bytes, bytearray, memoryview)):
                try:
                    decoded = decode_shard_block(decoded)
                except StoreError as error:
                    raise MergeError(str(error))
            return state.merge.add_shard_block(decoded), decoded.row_count
        return self._complete(lease_id, ingest)

    def _complete(self, lease_id: int,
                  ingest: Callable[["_CampaignState"], Tuple[int, int]]
                  ) -> bool:
        self.tick()
        lease = self._leases.get(lease_id)
        if lease is None:
            raise CoordinatorError(f"unknown lease id {lease_id}")
        state = self._campaigns[lease.campaign_id]
        now = self._now()
        self._workers[lease.worker] = now
        if lease.shard_index in state.completed:
            self._m_stale.inc()
            self._emit("stale-completion", campaign=lease.campaign_id,
                       span=lease.shard_index, lease=lease_id,
                       worker=lease.worker)
            return False
        # Validate against the planned shard before touching any state; a
        # bad artifact must not consume the span.
        try:
            index, rows = ingest(state)
        except MergeError as error:
            self._m_invalid.inc()
            self._emit("invalid-document", campaign=lease.campaign_id,
                       span=lease.shard_index, lease=lease_id,
                       worker=lease.worker, error=str(error))
            raise
        if index != lease.shard_index:  # pragma: no cover - defensive
            raise MergeError(
                f"lease {lease_id} covers span {lease.shard_index} but the "
                f"document declares shard {index}")
        state.completed.add(index)
        # Cancel whichever lease is currently active on the span — possibly
        # a re-grant to another worker after this one was presumed dead.
        state.leases.pop(index, None)
        # A stolen span may sit back in the queue when its original worker's
        # completion arrives; leaving it there would hand an already-merged
        # span to the next worker (found by the lease-lifecycle property
        # suite).
        if index in state.pending:
            state.pending.remove(index)
            heapq.heapify(state.pending)
        state.row_count += rows
        latency = now - lease.granted_at
        self._m_spans.inc()
        self._m_rows.inc(rows)
        self._m_span_latency.observe(latency)
        self._m_lease_age.observe(latency)
        self._refresh_gauges()
        self._emit("complete", campaign=lease.campaign_id, span=index,
                   lease=lease_id, worker=lease.worker, rows=rows,
                   latency=round(latency, 6))
        if state.complete:
            self._finalize(state)
        return True

    def _finalize(self, state: _CampaignState) -> None:
        state.store = state.merge.finalize()
        if state.json_path:
            write_document_json(state.store, state.json_path)
        if state.csv_path:
            write_document_csv(state.store, state.csv_path)
        state.finished_at = self._now()
        self._m_campaigns_done.inc()
        wrote = [path for path in (state.json_path, state.csv_path) if path]
        self._event(f"completed {state.campaign_id} ({state.label}): "
                    f"{state.row_count} row(s) from {state.span_count} "
                    f"span(s), {state.steals} steal(s)"
                    + (f" -> {', '.join(wrote)}" if wrote else ""))
        self._emit("campaign-complete", campaign=state.campaign_id,
                   rows=state.row_count, spans=state.span_count,
                   steals=state.steals)

    def campaign_store(self, campaign_id: str) -> ColumnarStore:
        """The finalized store of a completed campaign."""
        state = self._state(campaign_id)
        if state.store is None:
            raise CoordinatorError(f"campaign {campaign_id} is not complete")
        return state.store

    def _state(self, campaign_id: str) -> _CampaignState:
        state = self._campaigns.get(campaign_id)
        if state is None:
            raise CoordinatorError(f"unknown campaign {campaign_id!r}")
        return state

    # -- observability ------------------------------------------------------
    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        self.tick()
        return self._state(campaign_id).progress()

    def status(self) -> Dict[str, object]:
        """The structured operational status document (versioned).

        Every counter is read back from the metrics registry — the same
        numbers a ``/metrics`` scrape renders — so the CLI status table and
        the exporter cannot disagree.
        """
        self.tick()
        now = self._now()
        uptime = max(now - self._started, 0.0)
        lease_ages = [now - lease.granted_at
                      for state in self._campaigns.values()
                      for lease in state.leases.values()]
        completed_spans = int(self._m_spans.total())
        completed_rows = int(self._m_rows.total())
        return {
            "coordinator_schema_version": COORDINATOR_SCHEMA_VERSION,
            "uptime_seconds": uptime,
            "lease_timeout_seconds": self._lease_timeout,
            "draining": self._draining,
            "workers": {
                name: {"last_seen_seconds": now - seen}
                for name, seen in sorted(self._workers.items())
            },
            "queue_depth": sum(len(state.pending)
                               for state in self._campaigns.values()),
            "active_leases": len(lease_ages),
            "max_lease_age_seconds": max(lease_ages, default=0.0),
            "leases_granted": int(self._m_granted.total()),
            "heartbeats": int(self._m_heartbeats.total()),
            "completed_spans": completed_spans,
            "completed_rows": completed_rows,
            "steals": int(self._m_steals.total()),
            "stale_completions": int(self._m_stale.total()),
            "invalid_documents": int(self._m_invalid.total()),
            "protocol_errors": int(self._m_protocol_errors.total()),
            "spans_per_second": (completed_spans / uptime
                                 if uptime > 0 else 0.0),
            "rows_per_second": (completed_rows / uptime
                                if uptime > 0 else 0.0),
            "campaigns": [state.progress()
                          for state in self._campaigns.values()],
        }


# -- wire protocol -----------------------------------------------------------
#
# Two protocols share the port; the server sniffs the first byte of every
# connection.
#
# v1 (legacy, CoordinatorClient): first byte "{" — one JSON object per
# line, one request/response pair per connection.
#
# v2 (CoordinatorSession): the connection opens with the 4-byte preamble
# b"RXP2", then carries length-prefixed frames (u32 payload length + u8
# kind) in both directions over one persistent socket — lease, heartbeat
# and complete ops for a worker's whole lifetime are pipelined on a single
# connection.  Frame kinds: 0x4A = JSON op payload, 0x43 = completion
# (u32 meta length + meta JSON + binary columnar shard block).  Responses
# are always JSON frames.
#
# Ops (both protocols; batched forms are v2 idioms but protocol-agnostic):
#
#   {"op": "lease", "worker": W}       -> {"ok": true, "lease": .., "shard": ..}
#                                       | {"ok": true, "idle": true}
#                                       | {"ok": true, "shutdown": true}
#   {"op": "lease", "worker": W,
#    "count": N}                       -> {"ok": true, "leases": [{lease,
#                                          shard}, ..]} (possibly empty)
#                                       | {"ok": true, "shutdown": true}
#   {"op": "heartbeat", "lease_id": L} -> {"ok": true, "live": bool}
#   {"op": "heartbeat", "lease_ids":
#    [..], "worker": W, "rtt": {..}}   -> {"ok": true, "live": {id: bool}}
#   {"op": "complete", "lease_id": L,
#    "document": shard_result}         -> {"ok": true, "accepted": bool}
#   (0x43 frame, meta {"op": "complete",
#    "lease_id": L} + block bytes)     -> {"ok": true, "accepted": bool}
#   {"op": "submit", "jobs": [..],
#    "shards": N, "label"/"json"/
#    "csv"/"store": ..}                -> {"ok": true, "campaign": id}
#   {"op": "campaign", "campaign": id} -> {"ok": true, "progress": {..}}
#   {"op": "status"}                   -> {"ok": true, "status": {..}}
#   {"op": "shutdown"}                 -> {"ok": true}   (server then stops)
#
# Failures answer {"ok": false, "error": msg} and the client raises
# CoordinatorError.  Malformed or oversized frames/lines are answered with
# the same structured error (never silently dropped) and counted in
# coordinator_protocol_errors_total; only a frame whose *framing* is lost
# (truncation, oversized length prefix) also closes the connection, since
# the stream cannot be resynchronized.  All coordinator state changes
# happen under one server-side lock, frame by frame.

class _CoordinatorHandler(socketserver.StreamRequestHandler):
    # Framed request/response round trips on a persistent socket stall for
    # tens of milliseconds under Nagle + delayed-ACK; answer frames must
    # leave immediately.
    disable_nagle_algorithm = True

    def handle(self) -> None:
        first = self.rfile.read(1)
        if not first:
            return
        if first == PROTOCOL_MAGIC[:1]:
            rest = self.rfile.read(len(PROTOCOL_MAGIC) - 1)
            if rest != PROTOCOL_MAGIC[1:]:
                self._answer_line(self._protocol_error(
                    f"unrecognized protocol preamble {(first + rest)!r}"))
                return
            self._handle_session()
        elif first == b"{":
            self._handle_v1(first)
        else:
            self._answer_line(self._protocol_error(
                f"unrecognized protocol preamble {first!r}"))

    # -- v1: one JSONL request per connection ------------------------------
    def _handle_v1(self, first: bytes) -> None:
        line = first + self.rfile.readline(MAX_FRAME_BYTES + 1)
        if len(line) > MAX_FRAME_BYTES:
            self._answer_line(self._protocol_error(
                f"request line exceeds the {MAX_FRAME_BYTES}-byte limit"))
            return
        try:
            request = json.loads(line)
        except ValueError as error:
            self._answer_line(self._protocol_error(
                f"malformed JSON request: {error}"))
            return
        try:
            response = self.server.dispatch(request)  # type: ignore[attr-defined]
        except (ValueError, KeyError, TypeError) as error:
            response = {"ok": False, "error": str(error) or repr(error)}
        self._answer_line(response)

    def _answer_line(self, response: Mapping[str, object]) -> None:
        try:
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
        except OSError:  # pragma: no cover - peer vanished mid-answer
            pass

    # -- v2: persistent framed session -------------------------------------
    def _handle_session(self) -> None:
        while True:
            try:
                frame = read_frame(self.rfile)
            except FrameError as error:
                # Framing is lost — answer once, then close: the stream
                # cannot be resynchronized after a bad length prefix.
                self._answer_frame(self._protocol_error(str(error)))
                return
            except OSError:  # pragma: no cover - peer reset mid-read
                return
            if frame is None:
                return
            kind, payload = frame
            try:
                response = self._dispatch_frame(kind, payload)
            except FrameError as error:
                # Payload-level defect; framing is intact, session survives.
                response = self._protocol_error(str(error))
            except (ValueError, KeyError, TypeError) as error:
                response = {"ok": False, "error": str(error) or repr(error)}
            if not self._answer_frame(response):
                return

    def _dispatch_frame(self, kind: int,
                        payload: bytes) -> Dict[str, object]:
        server = self.server
        if kind == FRAME_KIND_JSON:
            try:
                request = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                raise FrameError(f"malformed JSON frame: {error}")
            if not isinstance(request, dict):
                raise FrameError("JSON frame is not an object")
            return server.dispatch(request)  # type: ignore[attr-defined]
        if kind == FRAME_KIND_BLOCK:
            meta, block = decode_block_payload(payload)
            return server.dispatch_block(meta, block)  # type: ignore[attr-defined]
        raise FrameError(f"unknown frame kind 0x{kind:02x}")

    def _answer_frame(self, response: Mapping[str, object]) -> bool:
        try:
            self.wfile.write(encode_json_frame(response))
            return True
        except OSError:  # pragma: no cover - peer vanished mid-answer
            return False

    def _protocol_error(self, message: str) -> Dict[str, object]:
        self.server.count_protocol_error(message)  # type: ignore[attr-defined]
        return {"ok": False, "error": message}


class CoordinatorServer(socketserver.ThreadingTCPServer):
    """Serve a :class:`Coordinator` over localhost TCP (v1 + v2 protocols)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, coordinator: Coordinator,
                 address: Tuple[str, int] = ("127.0.0.1", 0)):
        super().__init__(address, _CoordinatorHandler)
        self.coordinator = coordinator
        self._lock = threading.Lock()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def count_protocol_error(self, message: str) -> None:
        with self._lock:
            self.coordinator.protocol_error(message)

    def dispatch_block(self, meta: Mapping[str, object],
                       block: bytes) -> Dict[str, object]:
        """A completion frame: lease id from the meta, rows from the block."""
        if meta.get("op") != "complete":
            raise FrameError(f"unexpected op {meta.get('op')!r} in a "
                             f"completion frame")
        with self._lock:
            accepted = self.coordinator.complete_lease_block(
                int(meta["lease_id"]), block)
            return {"ok": True, "accepted": accepted}

    def dispatch(self, request: Mapping[str, object]) -> Dict[str, object]:
        op = request.get("op")
        with self._lock:
            coordinator = self.coordinator
            if op == "lease":
                if "count" in request:
                    granted = coordinator.request_leases(
                        str(request["worker"]), int(request["count"]))
                    if not granted and coordinator.draining:
                        return {"ok": True, "shutdown": True}
                    return {
                        "ok": True,
                        "heartbeat_seconds":
                            coordinator._lease_timeout / 3.0,
                        "leases": [{"lease": lease.as_document(),
                                    "shard": shard.as_document()}
                                   for lease, shard in granted],
                    }
                granted = coordinator.request_lease(str(request["worker"]))
                if granted is None:
                    if coordinator.draining:
                        return {"ok": True, "shutdown": True}
                    return {"ok": True, "idle": True}
                lease, shard = granted
                return {"ok": True, "lease": lease.as_document(),
                        "heartbeat_seconds": coordinator._lease_timeout / 3.0,
                        "shard": shard.as_document()}
            if op == "heartbeat":
                if "lease_ids" in request:
                    rtt = request.get("rtt")
                    if rtt is not None:
                        coordinator.record_worker_rtt(
                            str(request.get("worker", "")), rtt)
                    live = coordinator.heartbeat_many(
                        [int(lease_id)
                         for lease_id in request["lease_ids"]])
                    return {"ok": True,
                            "live": {str(lease_id): alive
                                     for lease_id, alive in live.items()}}
                live = coordinator.heartbeat(int(request["lease_id"]))
                return {"ok": True, "live": live}
            if op == "complete":
                accepted = coordinator.complete_lease(
                    int(request["lease_id"]), request["document"])
                return {"ok": True, "accepted": accepted}
            if op == "submit":
                campaign_id = coordinator.submit_job_documents(
                    request["jobs"], int(request["shards"]),
                    label=request.get("label"),
                    json_path=request.get("json"),
                    csv_path=request.get("csv"),
                    store_path=request.get("store"))
                return {"ok": True, "campaign": campaign_id}
            if op == "campaign":
                progress = coordinator.campaign_progress(
                    str(request["campaign"]))
                return {"ok": True, "progress": progress}
            if op == "status":
                return {"ok": True, "status": coordinator.status()}
            if op == "shutdown":
                coordinator.drain()
                # shutdown() blocks until serve_forever returns, so it must
                # not run on this handler thread; closing the listening
                # socket afterwards turns further connects into refusals
                # instead of hangs.
                threading.Thread(target=self._stop, daemon=True).start()
                return {"ok": True}
        raise CoordinatorError(f"unknown op {op!r}")

    def _stop(self) -> None:
        self.shutdown()
        self.server_close()


class CoordinatorClient:
    """Stateless client: one fresh connection per operation.

    Matches :class:`repro.explore.worker.InProcessClient` method for
    method, so workers and the submit CLI run unchanged over TCP or against
    an in-process coordinator (the deterministic test seam).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def call(self, request: Mapping[str, object]) -> Dict[str, object]:
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as connection:
            connection.sendall(json.dumps(request).encode("utf-8") + b"\n")
            with connection.makefile("rb") as reader:
                line = reader.readline()
        if not line:
            raise ConnectionError("coordinator closed the connection "
                                  "without a response")
        response = json.loads(line)
        if not response.get("ok"):
            raise CoordinatorError(response.get("error", "request failed"))
        return response

    # -- worker plane -------------------------------------------------------
    def request_lease(self, worker: str) -> Dict[str, object]:
        return self.call({"op": "lease", "worker": worker})

    def request_leases(self, worker: str, count: int) -> Dict[str, object]:
        return self.call({"op": "lease", "worker": worker,
                          "count": int(count)})

    def heartbeat(self, lease_id: int) -> bool:
        return bool(self.call({"op": "heartbeat",
                               "lease_id": lease_id})["live"])

    def heartbeat_many(self, lease_ids: Sequence[int],
                       worker: Optional[str] = None,
                       rtt: Optional[Mapping[str, object]] = None,
                       ) -> Dict[int, bool]:
        request: Dict[str, object] = {"op": "heartbeat",
                                      "lease_ids": list(lease_ids)}
        if worker is not None:
            request["worker"] = worker
        if rtt is not None:
            request["rtt"] = dict(rtt)
        live = self.call(request)["live"]
        return {int(lease_id): bool(alive)
                for lease_id, alive in live.items()}

    def complete(self, lease_id: int,
                 document: Mapping[str, object]) -> bool:
        return bool(self.call({"op": "complete", "lease_id": lease_id,
                               "document": document})["accepted"])

    # -- control plane ------------------------------------------------------
    def submit(self, job_documents: Sequence[Mapping[str, object]],
               shards: int, label: Optional[str] = None,
               json_path: Optional[str] = None,
               csv_path: Optional[str] = None,
               store_path: Optional[str] = None) -> str:
        return str(self.call({
            "op": "submit", "jobs": list(job_documents), "shards": shards,
            "label": label, "json": json_path, "csv": csv_path,
            "store": store_path,
        })["campaign"])

    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        return self.call({"op": "campaign",
                          "campaign": campaign_id})["progress"]

    def status(self) -> Dict[str, object]:
        return self.call({"op": "status"})["status"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})


#: Smallest span (in result rows) that a session ships as a binary shard
#: block.  Below this the numpy codec's fixed cost exceeds the JSON rows it
#: saves, so tiny completions ride in ordinary JSON op frames instead.
SESSION_BLOCK_MIN_ROWS = 128


class CoordinatorSession:
    """Persistent protocol-v2 client: framed ops pipelined over one socket.

    Opens a single connection (lazily, on first use), announces itself with
    the ``RXP2`` preamble, and then exchanges length-prefixed frames for the
    session's whole lifetime — no per-op connection setup.  Completions of
    at least ``block_min_rows`` rows travel as binary columnar shard blocks;
    smaller ones go as JSON op frames, and ``json_payloads`` forces JSON for
    every completion (the differential-test seam).  An internal lock
    serializes round trips, so a worker's heartbeat thread can share the
    session with its execution loop.  Any transport fault closes the socket
    and raises :class:`ConnectionError`; the next call transparently
    reconnects.

    API-compatible superset of :class:`CoordinatorClient` /
    :class:`repro.explore.worker.InProcessClient`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 60.0,
                 json_payloads: bool = False,
                 block_min_rows: Optional[int] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.json_payloads = json_payloads
        self.block_min_rows = (SESSION_BLOCK_MIN_ROWS
                               if block_min_rows is None
                               else max(0, int(block_min_rows)))
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._reader: Optional[BinaryIO] = None

    # -- connection lifecycle -----------------------------------------------
    def _connect(self) -> None:
        connection = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        try:
            # The session is a stream of small request/response frames;
            # Nagle would batch them against the delayed ACK and add tens
            # of milliseconds per round trip.
            connection.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            connection.sendall(PROTOCOL_MAGIC)
        except OSError:
            connection.close()
            raise
        self._sock = connection
        self._reader = connection.makefile("rb")

    def _drop(self) -> None:
        reader, sock = self._reader, self._sock
        self._reader = None
        self._sock = None
        for resource in (reader, sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass

    def close(self) -> None:
        with self._lock:
            self._drop()

    def reconnect(self) -> None:
        """Drop the current socket; the next call opens a fresh one."""
        self.close()

    def __enter__(self) -> "CoordinatorSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- framed round trips --------------------------------------------------
    def _round_trip(self, frame: bytes) -> Dict[str, object]:
        return self._exchange([frame])[0]

    def _exchange(self, frames: Iterable[bytes]) -> List[Dict[str, object]]:
        """Pipelined frame exchange: every request frame is written before
        the first response is awaited (frames from a lazy iterable are
        encoded just-in-time, interleaved with the sends).  The server
        answers frames strictly in order, so with *n* requests in flight
        the per-op cost collapses from ``client + wire + server`` to
        whichever side is slowest.
        """
        answers = []
        with self._lock:
            try:
                if self._sock is None:
                    self._connect()
                assert self._sock is not None and self._reader is not None
                sent = 0
                for frame in frames:
                    self._sock.sendall(frame)
                    sent += 1
                for _ in range(sent):
                    answer = read_frame(self._reader)
                    if answer is None:
                        raise ConnectionError(
                            "coordinator closed the session without a "
                            "response")
                    answers.append(answer)
            except FrameError as error:
                self._drop()
                raise ConnectionError(
                    f"coordinator sent an unreadable frame: {error}")
            except ConnectionError:
                self._drop()
                raise
            except OSError as error:
                self._drop()
                raise ConnectionError(
                    f"coordinator connection failed: {error}")
        return [self._parse_response(answer) for answer in answers]

    def _parse_response(self, answer: Tuple[int, bytes]
                        ) -> Dict[str, object]:
        kind, payload = answer
        if kind != FRAME_KIND_JSON:
            self.close()
            raise ConnectionError(
                f"coordinator answered with frame kind 0x{kind:02x}")
        try:
            response = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            self.close()
            raise ConnectionError(
                f"coordinator answered with malformed JSON: {error}")
        if not isinstance(response, dict) or not response.get("ok"):
            error_text = "request failed"
            if isinstance(response, dict):
                error_text = str(response.get("error", error_text))
            raise CoordinatorError(error_text)
        return response

    def call(self, request: Mapping[str, object]) -> Dict[str, object]:
        return self._round_trip(encode_json_frame(request))

    def call_many(self, requests: Sequence[Mapping[str, object]]
                  ) -> List[Dict[str, object]]:
        """Pipelined JSON ops: every request is written before the first
        response is read, responses return in request order.  Lets a caller
        fold the *next* lease batch into the same flight as the current
        batch's completions, hiding the grant latency entirely.
        """
        return self._exchange(encode_json_frame(request)
                              for request in list(requests))

    # -- worker plane -------------------------------------------------------
    def request_lease(self, worker: str) -> Dict[str, object]:
        return self.call({"op": "lease", "worker": worker})

    def request_leases(self, worker: str, count: int) -> Dict[str, object]:
        return self.call({"op": "lease", "worker": worker,
                          "count": int(count)})

    def heartbeat(self, lease_id: int) -> bool:
        return bool(self.call({"op": "heartbeat",
                               "lease_id": lease_id})["live"])

    def heartbeat_many(self, lease_ids: Sequence[int],
                       worker: Optional[str] = None,
                       rtt: Optional[Mapping[str, object]] = None,
                       ) -> Dict[int, bool]:
        request: Dict[str, object] = {"op": "heartbeat",
                                      "lease_ids": list(lease_ids)}
        if worker is not None:
            request["worker"] = worker
        if rtt is not None:
            request["rtt"] = dict(rtt)
        live = self.call(request)["live"]
        return {int(lease_id): bool(alive)
                for lease_id, alive in live.items()}

    def _completion_frame(self, lease_id: int,
                          document: Mapping[str, object]) -> bytes:
        rows = document.get("rows")
        row_count = len(rows) if isinstance(rows, list) else 0
        if self.json_payloads or row_count < self.block_min_rows:
            return encode_json_frame({"op": "complete", "lease_id": lease_id,
                                      "document": document})
        return encode_block_frame({"op": "complete",
                                   "lease_id": int(lease_id)},
                                  encode_shard_block(document))

    def complete(self, lease_id: int,
                 document: Mapping[str, object]) -> bool:
        return bool(self._round_trip(
            self._completion_frame(lease_id, document))["accepted"])

    def complete_many(self, completions: Sequence[
            Tuple[int, Mapping[str, object]]]) -> List[bool]:
        """Complete many leases in one pipelined flight.

        All completion frames (JSON or binary, per the ``block_min_rows``
        policy) are written back-to-back and the responses collected
        afterwards, so the client encodes span *n+1* while the coordinator
        is still validating and ingesting span *n*.  Returns the per-lease
        ``accepted`` flags in input order.
        """
        frames = (self._completion_frame(lease_id, document)
                  for lease_id, document in list(completions))
        return [bool(response["accepted"])
                for response in self._exchange(frames)]

    def complete_block(self, lease_id: int, block: bytes) -> bool:
        frame = encode_block_frame({"op": "complete",
                                    "lease_id": int(lease_id)}, block)
        return bool(self._round_trip(frame)["accepted"])

    # -- control plane ------------------------------------------------------
    def submit(self, job_documents: Sequence[Mapping[str, object]],
               shards: int, label: Optional[str] = None,
               json_path: Optional[str] = None,
               csv_path: Optional[str] = None,
               store_path: Optional[str] = None) -> str:
        return str(self.call({
            "op": "submit", "jobs": list(job_documents), "shards": shards,
            "label": label, "json": json_path, "csv": csv_path,
            "store": store_path,
        })["campaign"])

    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        return self.call({"op": "campaign",
                          "campaign": campaign_id})["progress"]

    def status(self) -> Dict[str, object]:
        return self.call({"op": "status"})["status"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})
