"""Live campaign coordinator: fair-share queue, span leases, work stealing.

The distribution subsystem (:mod:`repro.explore.distrib`) made campaigns a
pure-data problem — deterministic shard plans in, provenance-validated shard
artifacts out — but execution stayed one-shot: a human assigns ``--shard
I/N`` to hosts and a dead host stalls the merge until someone re-plans the
gap by hand.  This module is the missing control plane, ROADMAP item 1:

* :class:`Coordinator` — a transport-agnostic state machine that accepts
  campaign submissions into a fair-share queue, leases each campaign's
  deterministic spans (planned once via :func:`~repro.explore.distrib.
  plan_shards`) to workers, heartbeats lease age, *steals* expired leases
  back from stragglers and dead hosts (the span simply re-enters the queue:
  spans are pure data, so a re-run is bitwise identical to the lost run),
  and streams completed shard documents into a
  :class:`~repro.explore.store.IncrementalShardMerge` the moment they
  arrive.  When the last span lands, the final JSON/CSV artifacts are
  regenerated from the store — **bitwise identical** to a single-host
  ``campaign`` run of the same grid, the invariant the fault-injection
  differential tests pin down.
* :class:`CoordinatorServer` / :class:`CoordinatorClient` — a localhost
  TCP transport for the state machine: one JSON object per line, one
  request/response per connection (so heartbeat threads never share a
  socket with the work loop).  The worker side lives in
  :mod:`repro.explore.worker`.

Determinism and fault injection: the coordinator takes its wall clock as a
constructor argument (``clock=time.monotonic``), performs *no* waiting of
its own (expiry is evaluated lazily on every public call), and mutates
state only inside its public methods — so a test can drive arbitrary
interleavings of grant/complete/expire/heartbeat against a fake clock and
fake workers, byte-compare the final artifacts, and never sleep.

Exactly-once: every span is *executed* at-least-once (steals re-run lost
work) and *merged* exactly once — a completion for an already-merged span
is acknowledged as ``stale`` and dropped before any row lands, and the
incremental merge independently rejects double ingestion.  Because jobs are
deterministic, at-least-once execution plus exactly-once ingestion equals
the monolithic artifact.

The status document (:meth:`Coordinator.status`) is versioned
(``coordinator_schema_version`` = :data:`COORDINATOR_SCHEMA_VERSION`) and
carries the operational counters the ROADMAP's observability item asks
for: queue depth, active lease ages, steal/stale counts, spans and rows
per second, per-campaign progress.
"""

from __future__ import annotations

import heapq
import itertools
import json
import shutil
import socket
import socketserver
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.explore.campaign import (
    SCHEMA_VERSION,
    CampaignJob,
    result_columns,
    scenario_cache_stats,
)
from repro.explore.distrib import (
    CampaignShard,
    MergeError,
    job_from_dict,
    plan_shards,
)
from repro.explore.metrics import (
    LATENCY_BUCKETS,
    MetricsRegistry,
    StructuredLog,
)
from repro.explore.store import (
    ColumnarStore,
    IncrementalShardMerge,
    write_document_csv,
    write_document_json,
)

#: Version of the coordinator status document and wire protocol.  v2 adds
#: the registry-backed counters (leases granted, heartbeats, invalid
#: documents) so the status document and the /metrics exposition render
#: the same numbers.
COORDINATOR_SCHEMA_VERSION = 2

#: Default seconds a lease may go without a heartbeat before it is stolen.
DEFAULT_LEASE_TIMEOUT = 60.0


class CoordinatorError(ValueError):
    """A submission, lease operation or protocol message is invalid."""


@dataclass
class SpanLease:
    """One grant of one campaign span to one worker."""

    lease_id: int
    campaign_id: str
    shard_index: int
    worker: str
    granted_at: float
    deadline: float

    def as_document(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "campaign_id": self.campaign_id,
            "shard_index": self.shard_index,
            "worker": self.worker,
        }


class _CampaignState:
    """Internal bookkeeping of one submitted campaign."""

    def __init__(self, campaign_id: str, label: str, sequence: int,
                 shards: List[CampaignShard], merge: IncrementalShardMerge,
                 submitted_at: float,
                 json_path: Optional[str], csv_path: Optional[str]):
        self.campaign_id = campaign_id
        self.label = label
        self.sequence = sequence
        self.shards = shards
        self.merge = merge
        self.submitted_at = submitted_at
        self.json_path = json_path
        self.csv_path = csv_path
        #: Spans waiting for a worker, as a min-heap of shard indexes so a
        #: stolen span re-enters ahead of later work.
        self.pending: List[int] = list(range(len(shards)))
        heapq.heapify(self.pending)
        #: Active lease per outstanding span.
        self.leases: Dict[int, SpanLease] = {}
        self.completed: set = set()
        self.steals = 0
        self.row_count = 0
        self.finished_at: Optional[float] = None
        self.store: Optional[ColumnarStore] = None

    @property
    def span_count(self) -> int:
        return len(self.shards)

    @property
    def complete(self) -> bool:
        return len(self.completed) == self.span_count

    @property
    def in_flight(self) -> int:
        """Spans granted or done — the fair-share load measure."""
        return len(self.leases) + len(self.completed)

    def progress(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign_id,
            "label": self.label,
            "spans": self.span_count,
            "total_jobs": self.shards[0].total_jobs,
            "pending": len(self.pending),
            "leased": len(self.leases),
            "completed": len(self.completed),
            "complete": self.complete,
            "row_count": self.row_count,
            "steals": self.steals,
            "artifacts": {key: value for key, value in
                          (("json", self.json_path), ("csv", self.csv_path),
                           ("store", str(self.merge._store.path)))
                          if value},
        }


class Coordinator:
    """The lease/steal/merge state machine (transport-agnostic).

    All waiting is the caller's problem: expiry is evaluated lazily at the
    top of every public method (:meth:`tick`), so idle-polling workers are
    what drives stealing — no timer thread, no hidden clock reads.  The
    *clock* only needs to be monotone; tests inject a fake.

    Not thread-safe by itself; :class:`CoordinatorServer` serializes calls
    under one lock.
    """

    def __init__(self, lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 clock: Callable[[], float] = time.monotonic,
                 work_dir=None,
                 on_event: Optional[Callable[[str], None]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 log: Optional[StructuredLog] = None):
        if lease_timeout <= 0:
            raise CoordinatorError("lease timeout must be > 0")
        self._lease_timeout = float(lease_timeout)
        self._clock = clock
        self._on_event = on_event
        self._work_dir = Path(work_dir) if work_dir is not None else None
        self._owns_work_dir = False
        self._campaigns: Dict[str, _CampaignState] = {}
        self._sequence = itertools.count(1)
        self._lease_sequence = itertools.count(1)
        #: Every lease ever granted, by id — completions may legitimately
        #: arrive for leases that have long been stolen.
        self._leases: Dict[int, SpanLease] = {}
        #: Worker name -> last-seen timestamp.
        self._workers: Dict[str, float] = {}
        self._draining = False
        self._started = clock()
        #: Optional structured JSONL run log (one event per lease / steal /
        #: completion / merge-drain, timestamped by the injected clock).
        self._log = log
        #: The registry is always live — instrumentation is the status
        #: document's single source of truth, the exporter just renders it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_metrics()

    def _register_metrics(self) -> None:
        metrics = self.metrics
        self._m_submitted = metrics.counter(
            "coordinator_campaigns_submitted_total",
            "Campaigns accepted into the fair-share queue.")
        self._m_campaigns_done = metrics.counter(
            "coordinator_campaigns_completed_total",
            "Campaigns whose final span landed and artifacts finalized.")
        self._m_granted = metrics.counter(
            "coordinator_leases_granted_total",
            "Span leases handed to workers (including re-grants).")
        self._m_heartbeats = metrics.counter(
            "coordinator_heartbeats_total",
            "Heartbeat calls received (live or not).")
        self._m_steals = metrics.counter(
            "coordinator_leases_stolen_total",
            "Expired leases stolen back into the queue.")
        self._m_spans = metrics.counter(
            "coordinator_spans_completed_total",
            "Span completions accepted and merged exactly once.")
        self._m_rows = metrics.counter(
            "coordinator_rows_merged_total",
            "Result rows accepted from completed spans (jobs finished).")
        self._m_stale = metrics.counter(
            "coordinator_stale_completions_total",
            "Valid completions dropped because the span already merged.")
        self._m_invalid = metrics.counter(
            "coordinator_invalid_documents_total",
            "Completions rejected by provenance/span/row validation.")
        self._m_queue = metrics.gauge(
            "coordinator_queue_depth",
            "Spans waiting for a worker, per campaign.")
        self._m_active = metrics.gauge(
            "coordinator_active_leases",
            "Leases currently outstanding across all campaigns.")
        self._m_draining = metrics.gauge(
            "coordinator_draining",
            "1 while the coordinator refuses new leases and submissions.")
        self._m_lease_age = metrics.histogram(
            "coordinator_lease_age_seconds",
            "Age of a lease when it ended (completed or stolen).",
            LATENCY_BUCKETS)
        self._m_span_latency = metrics.histogram(
            "coordinator_span_latency_seconds",
            "Grant-to-accepted-completion latency per span.",
            LATENCY_BUCKETS)
        metrics.gauge(
            "coordinator_uptime_seconds",
            "Seconds since the coordinator started (injected clock)."
        ).set_function(lambda: max(self._now() - self._started, 0.0))
        cache = metrics.gauge(
            "scenario_cache_entries",
            "Scenario cache outcomes in this process (hits/misses/size).")
        cache.set_function(lambda: scenario_cache_stats()["hits"],
                           outcome="hit")
        cache.set_function(lambda: scenario_cache_stats()["misses"],
                           outcome="miss")
        cache.set_function(lambda: scenario_cache_stats()["size"],
                           outcome="size")
        self._m_draining.set(0)
        self._m_active.set(0)

    # -- plumbing -----------------------------------------------------------
    def _now(self) -> float:
        return self._clock()

    def _event(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _emit(self, event: str, **fields: object) -> None:
        if self._log is not None:
            self._log.emit(event, **fields)

    def _refresh_gauges(self) -> None:
        """Re-derive queue/lease gauges after any state mutation."""
        self._m_active.set(sum(len(state.leases)
                               for state in self._campaigns.values()))
        for state in self._campaigns.values():
            self._m_queue.set(len(state.pending),
                              campaign=state.campaign_id)

    def _ensure_work_dir(self) -> Path:
        if self._work_dir is None:
            self._work_dir = Path(tempfile.mkdtemp(prefix="repro-coord-"))
            self._owns_work_dir = True
        return self._work_dir

    def close(self) -> None:
        """Drop the coordinator's own spool directory (not user artifacts)."""
        if self._owns_work_dir and self._work_dir is not None and \
                self._work_dir.exists():
            shutil.rmtree(self._work_dir, ignore_errors=True)

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self) -> None:
        """Stop granting leases; outstanding completions are still accepted."""
        self._draining = True
        self._m_draining.set(1)
        self._event("draining: no further leases will be granted")
        self._emit("draining")

    @property
    def is_idle(self) -> bool:
        """No pending or leased span anywhere."""
        return all(not state.pending and not state.leases
                   for state in self._campaigns.values())

    # -- submissions --------------------------------------------------------
    def submit_jobs(self, jobs: Sequence[CampaignJob], shard_count: int,
                    label: Optional[str] = None,
                    json_path: Optional[str] = None,
                    csv_path: Optional[str] = None,
                    store_path=None) -> str:
        """Queue a campaign: plan *jobs* into spans, return the campaign id.

        Artifact paths are written by the coordinator process at
        finalization; *store_path* defaults to a spool directory.  Planning
        is the same :func:`~repro.explore.distrib.plan_shards` call a
        ``--shard I/N`` host makes, so the spans — and the final merged
        artifact — are identical to the offline path.
        """
        if self._draining:
            raise CoordinatorError("coordinator is draining; "
                                   "submission rejected")
        shards = plan_shards(list(jobs), shard_count)
        sequence = next(self._sequence)
        campaign_id = f"c{sequence:04d}"
        if store_path is None:
            store_path = self._ensure_work_dir() / f"{campaign_id}.store"
        merge = IncrementalShardMerge(
            store_path, count=shard_count, total_jobs=shards[0].total_jobs,
            fingerprint=shards[0].fingerprint,
            columns=result_columns(deterministic=True),
            metadata={"campaign": campaign_id},
            metrics=self.metrics, log=self._log)
        state = _CampaignState(campaign_id, label or campaign_id, sequence,
                               shards, merge, self._now(), json_path,
                               csv_path)
        self._campaigns[campaign_id] = state
        self._m_submitted.inc()
        self._refresh_gauges()
        self._event(f"submitted {campaign_id} ({state.label}): "
                    f"{shards[0].total_jobs} job(s) in "
                    f"{shard_count} span(s)")
        self._emit("submit", campaign=campaign_id, label=state.label,
                   jobs=shards[0].total_jobs, spans=shard_count)
        return campaign_id

    def submit_job_documents(self, documents: Sequence[Mapping[str, object]],
                             shard_count: int, **kwargs) -> str:
        """:meth:`submit_jobs` over wire-format job dicts (the submit op)."""
        return self.submit_jobs([job_from_dict(doc) for doc in documents],
                                shard_count, **kwargs)

    # -- leases -------------------------------------------------------------
    def tick(self) -> List[SpanLease]:
        """Expire overdue leases, re-queueing their spans (the steal).

        Called implicitly by every public operation; returns the leases
        stolen by this pass.
        """
        now = self._now()
        stolen: List[SpanLease] = []
        for state in self._campaigns.values():
            for index, lease in list(state.leases.items()):
                if lease.deadline <= now:
                    del state.leases[index]
                    heapq.heappush(state.pending, index)
                    state.steals += 1
                    stolen.append(lease)
                    age = now - lease.granted_at
                    self._m_steals.inc()
                    self._m_lease_age.observe(age)
                    self._event(
                        f"stole span {lease.campaign_id}/{index} from "
                        f"{lease.worker} (lease {lease.lease_id} aged out)")
                    self._emit("steal", campaign=lease.campaign_id,
                               span=index, lease=lease.lease_id,
                               worker=lease.worker, age=round(age, 6))
        if stolen:
            self._refresh_gauges()
        return stolen

    def _pick_campaign(self) -> Optional[_CampaignState]:
        """Fair share: the least-served campaign with pending spans.

        Load is the fraction of a campaign's spans already granted or done,
        so a freshly submitted campaign immediately receives a share of the
        fleet instead of queueing behind an earlier large submission;
        submission order breaks ties deterministically.
        """
        candidates = [state for state in self._campaigns.values()
                      if state.pending]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda state: (state.in_flight / state.span_count,
                                      state.sequence))

    def request_lease(self, worker: str
                      ) -> Optional[Tuple[SpanLease, CampaignShard]]:
        """Grant the next span to *worker*, or None when nothing is pending.

        The returned shard document is self-contained (it carries its job
        list), so the worker needs no grid flags — exactly the file a
        ``campaign --shard I/N`` host would have been shipped.
        """
        self.tick()
        now = self._now()
        self._workers[worker] = now
        if self._draining:
            return None
        state = self._pick_campaign()
        if state is None:
            return None
        index = heapq.heappop(state.pending)
        lease = SpanLease(
            lease_id=next(self._lease_sequence),
            campaign_id=state.campaign_id, shard_index=index, worker=worker,
            granted_at=now, deadline=now + self._lease_timeout)
        state.leases[index] = lease
        self._leases[lease.lease_id] = lease
        self._m_granted.inc()
        self._refresh_gauges()
        self._emit("lease", campaign=state.campaign_id, span=index,
                   lease=lease.lease_id, worker=worker)
        return lease, state.shards[index]

    def heartbeat(self, lease_id: int) -> bool:
        """Extend a lease's deadline; False when the lease is no longer
        live (stolen or its span already completed) — the worker's cue to
        abandon cooperatively."""
        self.tick()
        self._m_heartbeats.inc()
        lease = self._leases.get(lease_id)
        if lease is None:
            raise CoordinatorError(f"unknown lease id {lease_id}")
        state = self._campaigns[lease.campaign_id]
        if state.leases.get(lease.shard_index) is not lease:
            return False
        now = self._now()
        lease.deadline = now + self._lease_timeout
        self._workers[lease.worker] = now
        return True

    def complete_lease(self, lease_id: int,
                       document: Mapping[str, object]) -> bool:
        """Ingest a completed span; returns False for stale completions.

        Validation happens *before* any bookkeeping: a document that fails
        provenance/span/row checks raises
        :class:`~repro.explore.distrib.MergeError` and changes nothing, so a
        misbehaving worker cannot poison a campaign.  A valid completion for
        a span that someone else already completed (a steal raced the
        original worker, or a duplicate send) is acknowledged as stale and
        dropped — rows are merged exactly once.
        """
        self.tick()
        lease = self._leases.get(lease_id)
        if lease is None:
            raise CoordinatorError(f"unknown lease id {lease_id}")
        state = self._campaigns[lease.campaign_id]
        now = self._now()
        self._workers[lease.worker] = now
        if lease.shard_index in state.completed:
            self._m_stale.inc()
            self._emit("stale-completion", campaign=lease.campaign_id,
                       span=lease.shard_index, lease=lease_id,
                       worker=lease.worker)
            return False
        # Validate against the planned shard before touching any state; a
        # bad artifact must not consume the span.
        try:
            index = state.merge.add_shard_document(document)
        except MergeError as error:
            self._m_invalid.inc()
            self._emit("invalid-document", campaign=lease.campaign_id,
                       span=lease.shard_index, lease=lease_id,
                       worker=lease.worker, error=str(error))
            raise
        if index != lease.shard_index:  # pragma: no cover - defensive
            raise MergeError(
                f"lease {lease_id} covers span {lease.shard_index} but the "
                f"document declares shard {index}")
        state.completed.add(index)
        # Cancel whichever lease is currently active on the span — possibly
        # a re-grant to another worker after this one was presumed dead.
        state.leases.pop(index, None)
        # A stolen span may sit back in the queue when its original worker's
        # completion arrives; leaving it there would hand an already-merged
        # span to the next worker (found by the lease-lifecycle property
        # suite).
        if index in state.pending:
            state.pending.remove(index)
            heapq.heapify(state.pending)
        rows = int(document["row_count"])
        state.row_count += rows
        latency = now - lease.granted_at
        self._m_spans.inc()
        self._m_rows.inc(rows)
        self._m_span_latency.observe(latency)
        self._m_lease_age.observe(latency)
        self._refresh_gauges()
        self._emit("complete", campaign=lease.campaign_id, span=index,
                   lease=lease_id, worker=lease.worker, rows=rows,
                   latency=round(latency, 6))
        if state.complete:
            self._finalize(state)
        return True

    def _finalize(self, state: _CampaignState) -> None:
        state.store = state.merge.finalize()
        if state.json_path:
            write_document_json(state.store, state.json_path)
        if state.csv_path:
            write_document_csv(state.store, state.csv_path)
        state.finished_at = self._now()
        self._m_campaigns_done.inc()
        wrote = [path for path in (state.json_path, state.csv_path) if path]
        self._event(f"completed {state.campaign_id} ({state.label}): "
                    f"{state.row_count} row(s) from {state.span_count} "
                    f"span(s), {state.steals} steal(s)"
                    + (f" -> {', '.join(wrote)}" if wrote else ""))
        self._emit("campaign-complete", campaign=state.campaign_id,
                   rows=state.row_count, spans=state.span_count,
                   steals=state.steals)

    def campaign_store(self, campaign_id: str) -> ColumnarStore:
        """The finalized store of a completed campaign."""
        state = self._state(campaign_id)
        if state.store is None:
            raise CoordinatorError(f"campaign {campaign_id} is not complete")
        return state.store

    def _state(self, campaign_id: str) -> _CampaignState:
        state = self._campaigns.get(campaign_id)
        if state is None:
            raise CoordinatorError(f"unknown campaign {campaign_id!r}")
        return state

    # -- observability ------------------------------------------------------
    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        self.tick()
        return self._state(campaign_id).progress()

    def status(self) -> Dict[str, object]:
        """The structured operational status document (versioned).

        Every counter is read back from the metrics registry — the same
        numbers a ``/metrics`` scrape renders — so the CLI status table and
        the exporter cannot disagree.
        """
        self.tick()
        now = self._now()
        uptime = max(now - self._started, 0.0)
        lease_ages = [now - lease.granted_at
                      for state in self._campaigns.values()
                      for lease in state.leases.values()]
        completed_spans = int(self._m_spans.total())
        completed_rows = int(self._m_rows.total())
        return {
            "coordinator_schema_version": COORDINATOR_SCHEMA_VERSION,
            "uptime_seconds": uptime,
            "lease_timeout_seconds": self._lease_timeout,
            "draining": self._draining,
            "workers": {
                name: {"last_seen_seconds": now - seen}
                for name, seen in sorted(self._workers.items())
            },
            "queue_depth": sum(len(state.pending)
                               for state in self._campaigns.values()),
            "active_leases": len(lease_ages),
            "max_lease_age_seconds": max(lease_ages, default=0.0),
            "leases_granted": int(self._m_granted.total()),
            "heartbeats": int(self._m_heartbeats.total()),
            "completed_spans": completed_spans,
            "completed_rows": completed_rows,
            "steals": int(self._m_steals.total()),
            "stale_completions": int(self._m_stale.total()),
            "invalid_documents": int(self._m_invalid.total()),
            "spans_per_second": (completed_spans / uptime
                                 if uptime > 0 else 0.0),
            "rows_per_second": (completed_rows / uptime
                                if uptime > 0 else 0.0),
            "campaigns": [state.progress()
                          for state in self._campaigns.values()],
        }


# -- wire protocol -----------------------------------------------------------
#
# One JSON object per line, one request/response pair per connection:
#
#   {"op": "lease", "worker": W}       -> {"ok": true, "lease": .., "shard": ..}
#                                       | {"ok": true, "idle": true}
#                                       | {"ok": true, "shutdown": true}
#   {"op": "heartbeat", "lease_id": L} -> {"ok": true, "live": bool}
#   {"op": "complete", "lease_id": L,
#    "document": shard_result}         -> {"ok": true, "accepted": bool}
#   {"op": "submit", "jobs": [..],
#    "shards": N, "label"/"json"/
#    "csv"/"store": ..}                -> {"ok": true, "campaign": id}
#   {"op": "campaign", "campaign": id} -> {"ok": true, "progress": {..}}
#   {"op": "status"}                   -> {"ok": true, "status": {..}}
#   {"op": "shutdown"}                 -> {"ok": true}   (server then stops)
#
# Failures answer {"ok": false, "error": msg}.  The per-connection model
# keeps the server handler trivial and lets worker heartbeat threads run
# without sharing a socket with the execution loop.

class _CoordinatorHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        line = self.rfile.readline()
        if not line:
            return
        try:
            request = json.loads(line)
            response = self.server.dispatch(request)  # type: ignore[attr-defined]
        except (ValueError, KeyError, TypeError) as error:
            response = {"ok": False, "error": str(error) or repr(error)}
        self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")


class CoordinatorServer(socketserver.ThreadingTCPServer):
    """Serve a :class:`Coordinator` over localhost TCP (JSONL protocol)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, coordinator: Coordinator,
                 address: Tuple[str, int] = ("127.0.0.1", 0)):
        super().__init__(address, _CoordinatorHandler)
        self.coordinator = coordinator
        self._lock = threading.Lock()

    @property
    def port(self) -> int:
        return self.server_address[1]

    def dispatch(self, request: Mapping[str, object]) -> Dict[str, object]:
        op = request.get("op")
        with self._lock:
            coordinator = self.coordinator
            if op == "lease":
                granted = coordinator.request_lease(str(request["worker"]))
                if granted is None:
                    if coordinator.draining:
                        return {"ok": True, "shutdown": True}
                    return {"ok": True, "idle": True}
                lease, shard = granted
                return {"ok": True, "lease": lease.as_document(),
                        "heartbeat_seconds": coordinator._lease_timeout / 3.0,
                        "shard": shard.as_document()}
            if op == "heartbeat":
                live = coordinator.heartbeat(int(request["lease_id"]))
                return {"ok": True, "live": live}
            if op == "complete":
                accepted = coordinator.complete_lease(
                    int(request["lease_id"]), request["document"])
                return {"ok": True, "accepted": accepted}
            if op == "submit":
                campaign_id = coordinator.submit_job_documents(
                    request["jobs"], int(request["shards"]),
                    label=request.get("label"),
                    json_path=request.get("json"),
                    csv_path=request.get("csv"),
                    store_path=request.get("store"))
                return {"ok": True, "campaign": campaign_id}
            if op == "campaign":
                progress = coordinator.campaign_progress(
                    str(request["campaign"]))
                return {"ok": True, "progress": progress}
            if op == "status":
                return {"ok": True, "status": coordinator.status()}
            if op == "shutdown":
                coordinator.drain()
                # shutdown() blocks until serve_forever returns, so it must
                # not run on this handler thread; closing the listening
                # socket afterwards turns further connects into refusals
                # instead of hangs.
                threading.Thread(target=self._stop, daemon=True).start()
                return {"ok": True}
        raise CoordinatorError(f"unknown op {op!r}")

    def _stop(self) -> None:
        self.shutdown()
        self.server_close()


class CoordinatorClient:
    """Stateless client: one fresh connection per operation.

    Matches :class:`repro.explore.worker.InProcessClient` method for
    method, so workers and the submit CLI run unchanged over TCP or against
    an in-process coordinator (the deterministic test seam).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    def call(self, request: Mapping[str, object]) -> Dict[str, object]:
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as connection:
            connection.sendall(json.dumps(request).encode("utf-8") + b"\n")
            with connection.makefile("rb") as reader:
                line = reader.readline()
        if not line:
            raise ConnectionError("coordinator closed the connection "
                                  "without a response")
        response = json.loads(line)
        if not response.get("ok"):
            raise CoordinatorError(response.get("error", "request failed"))
        return response

    # -- worker plane -------------------------------------------------------
    def request_lease(self, worker: str) -> Dict[str, object]:
        return self.call({"op": "lease", "worker": worker})

    def heartbeat(self, lease_id: int) -> bool:
        return bool(self.call({"op": "heartbeat",
                               "lease_id": lease_id})["live"])

    def complete(self, lease_id: int,
                 document: Mapping[str, object]) -> bool:
        return bool(self.call({"op": "complete", "lease_id": lease_id,
                               "document": document})["accepted"])

    # -- control plane ------------------------------------------------------
    def submit(self, job_documents: Sequence[Mapping[str, object]],
               shards: int, label: Optional[str] = None,
               json_path: Optional[str] = None,
               csv_path: Optional[str] = None,
               store_path: Optional[str] = None) -> str:
        return str(self.call({
            "op": "submit", "jobs": list(job_documents), "shards": shards,
            "label": label, "json": json_path, "csv": csv_path,
            "store": store_path,
        })["campaign"])

    def campaign_progress(self, campaign_id: str) -> Dict[str, object]:
        return self.call({"op": "campaign",
                          "campaign": campaign_id})["progress"]

    def status(self) -> Dict[str, object]:
        return self.call({"op": "status"})["status"]

    def shutdown(self) -> None:
        self.call({"op": "shutdown"})
